//! # dfpc — Discriminative Frequent Pattern Classification
//!
//! A from-scratch Rust reproduction of *"Discriminative Frequent Pattern
//! Analysis for Effective Classification"* (Cheng, Yan, Han, Hsu — ICDE
//! 2007). This facade crate re-exports the whole workspace under one roof:
//!
//! * [`data`] — datasets, discretization, transactions, synthetic UCI
//!   profiles, cross-validation splits;
//! * [`mining`] — FP-growth and FPClose-style closed-itemset mining,
//!   Apriori baseline, per-class pattern generation;
//! * [`nodeset`] — the PPC-tree (Diff)Nodeset mining engine: the fastest
//!   backend on dense data (`DFP_MINER=nodeset` or `MinerKind::Nodeset`);
//! * [`measures`] — information gain, Fisher score, their theoretical
//!   support-dependent upper bounds, and the paper's `min_sup` strategy;
//! * [`select`] — the MMRFS feature-selection algorithm plus baselines and
//!   the feature-space transform;
//! * [`classify`] — linear SVM, RBF-kernel SVM (SMO), C4.5 decision tree,
//!   naive Bayes, k-NN, and the evaluation/cross-validation harness;
//! * [`baselines`] — associative classifiers (CBA-, CMAR- and
//!   HARMONY-style) the paper compares against;
//! * [`core`] — the end-to-end framework: feature generation → feature
//!   selection → model learning, with the paper's experimental variants;
//! * [`model`] — the versioned `DFPM` binary artifact format for saving and
//!   loading fitted classifiers;
//! * [`fault`] — named failpoints (`DFP_FAILPOINTS`) for fault-injection
//!   testing across mining, persistence, and serving;
//! * [`obs`] — structured tracing spans (`DFP_TRACE`), the unified metrics
//!   registry behind `/metrics`, and JSONL event logging (`DFP_LOG`);
//! * [`par`] — the std-only scoped-thread parallel runtime behind mining,
//!   MMRFS, cross-validation, and batch scoring (`DFP_THREADS` to pin);
//! * [`serve`] — a std-only threaded HTTP inference server and batch scorer
//!   over saved artifacts (binaries `dfp-serve` and `dfpc-score`).
//!
//! ## Quickstart
//!
//! ```
//! use dfpc::core::{FrameworkConfig, PatternClassifier};
//! use dfpc::data::synth::profile_by_name;
//! use dfpc::data::split::stratified_holdout;
//!
//! let data = profile_by_name("iris").unwrap().generate();
//! let fold = stratified_holdout(&data.labels, 0.3, 7);
//! let (train, test) = (data.subset(&fold.train), data.subset(&fold.test));
//!
//! let model = PatternClassifier::fit(&train, &FrameworkConfig::pat_fs()).unwrap();
//! let acc = model.accuracy(&test);
//! assert!(acc > 0.5);
//! ```

#![forbid(unsafe_code)]

pub use dfp_baselines as baselines;
pub use dfp_classify as classify;
pub use dfp_core as core;
pub use dfp_data as data;
pub use dfp_fault as fault;
pub use dfp_measures as measures;
pub use dfp_mining as mining;
pub use dfp_model as model;
pub use dfp_nodeset as nodeset;
pub use dfp_obs as obs;
pub use dfp_par as par;
pub use dfp_registry as registry;
pub use dfp_select as select;
pub use dfp_serve as serve;
