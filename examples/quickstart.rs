//! Quickstart: train the paper's headline configuration (`Pat_FS` —
//! closed-pattern features selected by MMRFS, linear SVM) on a small
//! dataset and inspect what the pipeline did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --trace spans.jsonl
//! ```
//!
//! `--trace <path>` (or `DFP_TRACE=<path>`) exports the run's span tree —
//! per-stage fit timings, mining recursion, model save/load — as JSONL for
//! `dfp-trace-check` or chrome://tracing.
//!
//! `--miner <closed|fpgrowth|eclat|apriori|nodeset>` (or `DFP_MINER=<name>`)
//! picks the pattern-mining backend; the flag wins over the environment.

use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::split::stratified_holdout;
use dfpc::data::synth::profile_by_name;
use dfpc::mining::MinerKind;

fn main() {
    let mut trace_path = None;
    let mut save_path = None;
    let mut rows_path = None;
    let mut miner: Option<MinerKind> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace_path = args.next(),
            "--save" => save_path = args.next(),
            "--emit-rows" => rows_path = args.next(),
            "--miner" => {
                let name = args.next().unwrap_or_default();
                match name.parse::<MinerKind>() {
                    Ok(kind) => miner = Some(kind),
                    Err(err) => {
                        eprintln!("--miner: {err}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: quickstart \
                     [--trace <spans.jsonl>] [--save <model.dfpm>] \
                     [--emit-rows <rows.csv>] [--miner <name>]"
                );
                std::process::exit(2);
            }
        }
    }
    let trace = match trace_path {
        Some(path) => Some(dfpc::obs::TraceSession::begin(&path).expect("trace file opens")),
        None => dfpc::obs::TraceSession::from_env().expect("DFP_TRACE file opens"),
    };

    // The `iris` profile replays the UCI iris shape (150 × 4 numeric, 3
    // classes) with planted discriminative patterns — see DESIGN.md §4.
    let data = profile_by_name("iris").expect("catalog profile").generate();
    println!(
        "dataset: {} instances, {} attributes, {} classes",
        data.len(),
        data.schema.n_attributes(),
        data.schema.n_classes()
    );

    let fold = stratified_holdout(&data.labels, 0.3, 7);
    let train = data.subset(&fold.train);
    let test = data.subset(&fold.test);

    // Pat_FS: discretize (MDL) → itemize → mine patterns per class →
    // MMRFS selection → linear SVM on I ∪ Fs. The default backend is the
    // paper's closed miner unless `--miner`/`DFP_MINER` picks another.
    let mut config = FrameworkConfig::pat_fs();
    if let Some(kind) = miner {
        config = config.with_miner(kind);
    }
    let model = PatternClassifier::fit(&train, &config).expect("training succeeds");

    let info = model.info();
    println!("items (single features)     : {}", info.n_items);
    println!("resolved absolute min_sup   : {:?}", info.min_sup_abs);
    println!("closed patterns mined       : {}", info.n_patterns_mined);
    println!("patterns selected by MMRFS  : {}", info.n_selected);
    println!("final feature-space width   : {}", info.n_features);

    // The selected pattern features, in human-readable (attribute=value)
    // form, with their linear-SVM importance.
    let descriptions = model.describe_pattern_features();
    let weights = model.linear_feature_weights().expect("linear model");
    let mut ranked: Vec<(f64, &String)> = descriptions
        .iter()
        .enumerate()
        .map(|(k, d)| (weights[model.info().n_items + k], d))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite weights"));
    println!("top pattern features by |SVM weight|:");
    for (w, d) in ranked.iter().take(3) {
        println!("  {w:>7.3}  {d}");
    }

    println!(
        "train accuracy              : {:.4}",
        model.accuracy(&train)
    );
    println!("test  accuracy              : {:.4}", model.accuracy(&test));

    // Compare against the single-feature baseline on the same split.
    let baseline = PatternClassifier::fit(&train, &FrameworkConfig::item_all())
        .expect("baseline training succeeds");
    println!(
        "Item_All test accuracy      : {:.4}",
        baseline.accuracy(&test)
    );

    // Persist the fitted model as a DFPM artifact and load it back: the
    // loaded model reproduces the in-memory predictions exactly. This is
    // the artifact `dfp-serve` and `dfpc-score` consume.
    let artifact = std::env::temp_dir().join(format!("quickstart-{}.dfpm", std::process::id()));
    dfpc::model::save(&model, &artifact).expect("artifact saves");
    let loaded = dfpc::model::load(&artifact).expect("artifact loads");
    let size = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&artifact).ok();
    assert_eq!(
        loaded.predict(&test).expect("loaded model predicts"),
        model.predict(&test).expect("fitted model predicts"),
        "artifact round-trip must preserve predictions"
    );
    println!("artifact round-trip         : {size} bytes, predictions identical");

    // --save keeps a servable artifact; --emit-rows writes the held-out
    // attribute rows as CSV in the shape `dfp-serve` / `dfpc-score` accept.
    if let Some(path) = save_path {
        dfpc::model::save(&model, &path).expect("artifact saves to --save path");
        println!("artifact saved              : {path}");
    }
    if let Some(path) = rows_path {
        std::fs::write(&path, render_rows_csv(&test)).expect("rows write to --emit-rows path");
        println!("rows emitted                : {} → {path}", test.len());
    }

    if let Some(session) = trace {
        let spans = session.flush().expect("trace flushes");
        println!(
            "trace                       : {spans} spans → {}",
            session.path().display()
        );
    }
}

/// Renders attribute rows (no class column) as the CSV `parse_rows` accepts:
/// categorical cells by value name, numeric cells as plain floats, `?` for
/// missing.
fn render_rows_csv(data: &dfpc::data::dataset::Dataset) -> String {
    use dfpc::data::dataset::Value;
    use dfpc::data::schema::AttributeKind;
    let mut out = String::new();
    for row in &data.rows {
        for (a, cell) in row.iter().enumerate() {
            if a > 0 {
                out.push(',');
            }
            match (cell, &data.schema.attributes[a].kind) {
                (Value::Cat(v), AttributeKind::Categorical { values }) => {
                    out.push_str(&values[*v as usize])
                }
                (Value::Num(x), _) => out.push_str(&format!("{x}")),
                (Value::Missing, _) => out.push('?'),
                (Value::Cat(_), AttributeKind::Numeric) => unreachable!("validated by Dataset"),
            }
        }
        out.push('\n');
    }
    out
}
