//! A miniature of the paper's scalability study (Tables 3–5): sweep
//! `min_sup` on the dense chess-shaped profile and report the number of
//! closed patterns, the mining + selection time, and the accuracy of the
//! resulting SVM — demonstrating that the framework trades a support
//! threshold for tractability without giving up accuracy.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```
//! (The full Table 3/4/5 reproductions live in `dfp-bench`:
//! `cargo run -p dfp-bench --release --bin table3` etc.)

use dfpc::core::{cross_validate_framework, FrameworkConfig};
use dfpc::data::synth::profile_by_name;
use dfpc::measures::MinSupStrategy;
use std::time::Instant;

fn main() {
    let profile = profile_by_name("chess").expect("profile");
    let data = profile.generate();
    println!(
        "chess profile: {} instances, {} items (approx.), 2 classes\n",
        data.len(),
        data.schema.n_items().unwrap_or(0)
    );

    println!(
        "{:<10} {:>10} {:>12} {:>10}",
        "min_sup", "#patterns", "time (s)", "SVM (%)"
    );
    for min_sup in [2400usize, 2600, 2800] {
        // Relative support, so the threshold scales down with the CV folds'
        // training-set size (an absolute count would clamp to 100% there).
        let rel = min_sup as f64 / data.len() as f64;
        let cfg = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Relative(rel));
        let started = Instant::now();
        // 3-fold keeps the example snappy; the bench binaries use 10.
        let cv = cross_validate_framework(&data, &cfg, 3, 7).expect("cv");
        let secs = started.elapsed().as_secs_f64();
        println!(
            "{:<10} {:>10.0} {:>12.3} {:>10.2}",
            min_sup,
            cv.mean_patterns(),
            secs,
            cv.mean() * 100.0
        );
    }
    println!("\n(#patterns grows and time rises as min_sup falls — the paper's Table 3 shape)");
}
