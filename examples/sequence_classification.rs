//! The paper's §6 outlook, realised: "The framework is also applicable to
//! more complex patterns, including sequences." Frequent *subsequences*
//! mined with PrefixSpan become binary features, MMRFS-style relevance
//! ranking picks the discriminative ones, and a linear SVM classifies —
//! order-sensitive signal that no bag-of-symbols representation can see.
//!
//! ```sh
//! cargo run --release --example sequence_classification
//! ```

use dfpc::classify::svm::{LinearSvm, LinearSvmParams};
use dfpc::classify::Classifier;
use dfpc::data::schema::ClassId;
use dfpc::measures::info_gain;
use dfpc::mining::sequence::{prefixspan, SequenceDb};
use dfpc::mining::MineOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two classes over the same symbol multiset: class 0 tends to emit the
/// motif 0→1→2 in order, class 1 emits 2→1→0. Marginal symbol frequencies
/// are identical, so only *sequential* features discriminate.
fn generate(n: usize, seed: u64) -> SequenceDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sequences = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = (i % 2) as u32;
        let motif: &[u32] = if class == 0 { &[0, 1, 2] } else { &[2, 1, 0] };
        let mut seq = Vec::new();
        // noise prefix / infix / suffix from symbols 3..8
        for &m in motif {
            for _ in 0..rng.random_range(0..3) {
                seq.push(rng.random_range(3..8));
            }
            // motif symbol dropped occasionally → imperfect signal
            if rng.random::<f64>() < 0.9 {
                seq.push(m);
            }
        }
        for _ in 0..rng.random_range(0..3) {
            seq.push(rng.random_range(3..8));
        }
        sequences.push(seq);
        labels.push(ClassId(class));
    }
    SequenceDb::new(8, sequences, labels, 2)
}

fn main() {
    let train = generate(300, 1);
    let test = generate(200, 2);

    let patterns = prefixspan(
        &train,
        30, // 10% of training sequences
        &MineOptions::default().with_min_len(2).with_max_len(3),
    )
    .expect("sequence mining");
    println!("frequent subsequences (len 2–3): {}", patterns.len());

    // Rank by information gain and keep the top 40 — a lightweight stand-in
    // for MMRFS in sequence space.
    let class_counts = [150usize, 150];
    let mut ranked: Vec<(f64, usize)> = patterns
        .iter()
        .enumerate()
        .map(|(k, p)| (info_gain(&class_counts, &p.class_supports), k))
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let selected: Vec<_> = ranked
        .iter()
        .take(40)
        .map(|&(_, k)| patterns[k].clone())
        .collect();
    println!(
        "top subsequence by IG: {:?} (IG = {:.3})",
        selected[0].symbols, ranked[0].0
    );

    let train_m = train.transform(&selected);
    let test_m = test.transform(&selected);
    let svm = LinearSvm::fit(&train_m, &LinearSvmParams::default());
    println!("train accuracy: {:.4}", svm.accuracy(&train_m));
    println!("test  accuracy: {:.4}", svm.accuracy(&test_m));
    assert!(
        svm.accuracy(&test_m) > 0.8,
        "sequential features should separate the classes"
    );
}
