//! Chaos drill: run the full fit → save → load → serve → score pipeline
//! with failpoints armed from the environment, and demonstrate that every
//! injected fault degrades gracefully — typed errors, best-so-far mining,
//! healed workers, retried requests — with no panic escaping and no hang.
//!
//! ```sh
//! DFP_FAILPOINTS='model.load=err' cargo run --example fault_drill
//! DFP_FAILPOINTS='serve.worker=2*panic;mining.closed=sleep:25' \
//!     cargo run --example fault_drill
//! ```
//!
//! Exits non-zero only if a failure was *not* handled (a panic aborts the
//! process, which is exactly what CI's fault-injection matrix checks for).

use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::serve::{Client, RetryPolicy, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn planted() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn main() -> ExitCode {
    let spec = std::env::var("DFP_FAILPOINTS").unwrap_or_default();
    println!("chaos drill with DFP_FAILPOINTS='{spec}'");

    // 1. Fit with anytime mining on: mining faults and budgets degrade to a
    //    best-so-far model instead of failing the fit.
    let data = planted();
    let cfg = FrameworkConfig::pat_fs().with_anytime_mining(true);
    let fitted = match PatternClassifier::fit(&data, &cfg) {
        Ok(m) => {
            let report = m.degradation();
            if report.is_degraded() {
                println!("fit degraded gracefully: {:?}", report.mining_stopped_by);
            } else {
                println!("fit complete");
            }
            m
        }
        Err(e) => {
            println!("fit failed with a typed error: {e}");
            return ExitCode::SUCCESS;
        }
    };

    // 2. Persist and reload; a torn or failed write surfaces as a typed
    //    ModelError on the way back in, and we fall back to the in-memory
    //    model rather than serving nothing.
    let path = std::env::temp_dir().join(format!("dfp-fault-drill-{}.dfpm", std::process::id()));
    let served = match dfpc::model::save(&fitted, &path) {
        Err(e) => {
            println!("save failed with a typed error: {e}; serving the in-memory model");
            fitted
        }
        Ok(()) => match dfpc::model::load(&path) {
            Ok(m) => {
                println!("artifact round-trip ok");
                m
            }
            Err(e) => {
                println!("load failed with a typed error: {e}; serving the in-memory model");
                fitted
            }
        },
    };
    std::fs::remove_file(&path).ok();

    // 3. Serve and score through the retrying client: worker panics heal in
    //    place, 5xx and dropped connections are retried with backoff.
    let serve_cfg = ServerConfig::default()
        .with_threads(2)
        .with_request_deadline(Duration::from_secs(10));
    let handle = match dfpc::serve::serve_with_config(served, "127.0.0.1:0", serve_cfg) {
        Ok(h) => h,
        Err(e) => {
            println!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = Client::with_policy(
        handle.addr().to_string(),
        RetryPolicy {
            retries: 4,
            base_backoff: Duration::from_millis(20),
            timeout: Duration::from_secs(5),
        },
    );
    match client.post("/predict", "text/csv", b"v1,v1,v0\nv1,v2,v0\n") {
        Ok(r) if r.status == 200 => print!("prediction ok:\n{}", r.text()),
        Ok(r) => println!("prediction refused with {}: {}", r.status, r.text().trim()),
        Err(e) => println!("prediction failed after retries (typed): {e}"),
    }
    if let Ok(r) = client.get("/metrics") {
        for line in r
            .text()
            .lines()
            .filter(|l| l.starts_with("dfp_serve_") && !l.contains("latency"))
        {
            println!("{line}");
        }
    }
    handle.shutdown();
    println!("drill complete: every injected failure stayed typed and local");
    ExitCode::SUCCESS
}
