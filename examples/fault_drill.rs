//! Chaos drill: run the full fit → save → load → serve → score pipeline
//! with failpoints armed from the environment, and demonstrate that every
//! injected fault degrades gracefully — typed errors, best-so-far mining,
//! healed workers, retried requests — with no panic escaping and no hang.
//!
//! ```sh
//! DFP_FAILPOINTS='model.load=err' cargo run --example fault_drill
//! DFP_FAILPOINTS='serve.worker=2*panic;mining.closed=sleep:25' \
//!     cargo run --example fault_drill
//! ```
//!
//! Exits non-zero only if a failure was *not* handled (a panic aborts the
//! process, which is exactly what CI's fault-injection matrix checks for).

use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::serve::{Client, RetryPolicy, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn planted() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn main() -> ExitCode {
    let spec = std::env::var("DFP_FAILPOINTS").unwrap_or_default();
    println!("chaos drill with DFP_FAILPOINTS='{spec}'");

    // 0. Out-of-core ingestion: stream a synthetic CSV to disk and read it
    //    back through the segmented reader. A truncated or failed segment
    //    read (the `data.ingest` failpoint) surfaces as a typed IngestError
    //    — never a panic — and the drill continues on in-memory data.
    {
        use dfpc::data::ingest::{ingest_csv, IngestOptions};
        use dfpc::data::synth::stream_profile;
        let csv_path =
            std::env::temp_dir().join(format!("dfp-fault-drill-{}.csv", std::process::id()));
        let cfg = stream_profile(500).config(0);
        let mut f = match std::fs::File::create(&csv_path) {
            Ok(f) => f,
            Err(e) => {
                println!("csv create failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = cfg.write_csv_stream(&mut f) {
            println!("csv stream failed: {e}");
            return ExitCode::FAILURE;
        }
        match ingest_csv(&csv_path, &IngestOptions::default()) {
            Ok(ing) => println!(
                "streamed ingest ok: {} rows, {} items",
                ing.transactions.len(),
                ing.transactions.n_items()
            ),
            Err(e) => println!("ingest failed with a typed error: {e}"),
        }
        std::fs::remove_file(&csv_path).ok();
    }

    // 1. Fit with anytime mining on: mining faults and budgets degrade to a
    //    best-so-far model instead of failing the fit.
    let data = planted();
    let cfg = FrameworkConfig::pat_fs().with_anytime_mining(true);
    let fitted = match PatternClassifier::fit(&data, &cfg) {
        Ok(m) => {
            let report = m.degradation();
            if report.is_degraded() {
                println!("fit degraded gracefully: {:?}", report.mining_stopped_by);
            } else {
                println!("fit complete");
            }
            m
        }
        Err(e) => {
            println!("fit failed with a typed error: {e}");
            return ExitCode::SUCCESS;
        }
    };

    // 2. Persist and reload; a torn or failed write surfaces as a typed
    //    ModelError on the way back in, and we fall back to the in-memory
    //    model rather than serving nothing.
    let path = std::env::temp_dir().join(format!("dfp-fault-drill-{}.dfpm", std::process::id()));
    let served = match dfpc::model::save(&fitted, &path) {
        Err(e) => {
            println!("save failed with a typed error: {e}; serving the in-memory model");
            fitted
        }
        Ok(()) => match dfpc::model::load(&path) {
            Ok(m) => {
                println!("artifact round-trip ok");
                m
            }
            Err(e) => {
                println!("load failed with a typed error: {e}; serving the in-memory model");
                fitted
            }
        },
    };
    std::fs::remove_file(&path).ok();

    // 3. Serve and score through the retrying client: worker panics heal in
    //    place, 5xx and dropped connections are retried with backoff.
    let serve_cfg = ServerConfig::default()
        .with_threads(2)
        .with_request_deadline(Duration::from_secs(10));
    let handle = match dfpc::serve::serve_with_config(served, "127.0.0.1:0", serve_cfg) {
        Ok(h) => h,
        Err(e) => {
            println!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = Client::with_policy(
        handle.addr().to_string(),
        RetryPolicy {
            retries: 4,
            base_backoff: Duration::from_millis(20),
            timeout: Duration::from_secs(5),
        },
    );
    match client.post("/predict", "text/csv", b"v1,v1,v0\nv1,v2,v0\n") {
        Ok(r) if r.status == 200 => print!("prediction ok:\n{}", r.text()),
        Ok(r) => println!("prediction refused with {}: {}", r.status, r.text().trim()),
        Err(e) => println!("prediction failed after retries (typed): {e}"),
    }
    if let Ok(r) = client.get("/metrics") {
        for line in r
            .text()
            .lines()
            .filter(|l| l.starts_with("dfp_serve_") && !l.contains("latency"))
        {
            println!("{line}");
        }
    }
    handle.shutdown();

    // 4. Registry hot-swap under fire: publish into a crash-safe registry
    //    and swap it over HTTP while the `registry.*` failpoints are armed.
    //    A failed rename or a rejected/panicking canary rolls back to the
    //    serving version with a typed error; a slow drain just takes longer.
    {
        use dfpc::registry::{ModelRegistry, RegistryConfig};
        let root = std::env::temp_dir().join(format!("dfp-fault-drill-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let registry = match ModelRegistry::open_with_validator(
            RegistryConfig::new(&root),
            Some(dfpc::serve::registry_validator()),
        ) {
            Ok(r) => std::sync::Arc::new(r),
            Err(e) => {
                println!("registry open failed with a typed error: {e}");
                return ExitCode::SUCCESS;
            }
        };
        let refit = match PatternClassifier::fit(&planted(), &FrameworkConfig::pat_fs()) {
            Ok(m) => m,
            Err(e) => {
                println!("registry drill fit failed with a typed error: {e}");
                return ExitCode::SUCCESS;
            }
        };
        match registry.publish_model("drill", &refit, Some("v1,v1,v0")) {
            Ok(report) => println!("registry publish ok: version {}", report.version),
            Err(e) => println!("registry publish failed with a typed error: {e}"),
        }
        let handle = match dfpc::serve::serve_registry_with_config(
            None,
            std::sync::Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig::default().with_threads(2),
        ) {
            Ok(h) => h,
            Err(e) => {
                println!("registry bind failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut client = Client::with_policy(
            handle.addr().to_string(),
            RetryPolicy {
                retries: 4,
                base_backoff: Duration::from_millis(20),
                timeout: Duration::from_secs(5),
            },
        );
        let bytes = dfpc::model::to_bytes(&refit);
        match client.put("/m/drill", "application/octet-stream", &[], &bytes) {
            Ok(r) => println!("hot-swap ok ({}): {}", r.status, r.text().trim()),
            Err(e) => println!("hot-swap refused with a typed error: {e}"),
        }
        match client.post("/m/drill/predict", "text/csv", b"v1,v1,v0\n") {
            Ok(r) if r.status == 200 => println!("registry prediction ok: {}", r.text().trim()),
            Ok(r) => println!(
                "registry prediction refused with {}: {}",
                r.status,
                r.text().trim()
            ),
            Err(e) => println!("registry prediction failed after retries (typed): {e}"),
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    println!("drill complete: every injected failure stayed typed and local");
    ExitCode::SUCCESS
}
