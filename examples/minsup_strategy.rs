//! The paper's `min_sup`-setting strategy (§3.2) in action.
//!
//! For an austral-shaped dataset this prints, for a range of information-gain
//! thresholds `IG0`, the derived support threshold
//! `θ* = argmax { IGub(θ) ≤ IG0 }` (Eq. 8), then demonstrates the safety
//! guarantee: mining at `min_sup = θ*` cannot lose any feature an `IG0`
//! filter would keep, because every pattern with support `≤ θ*` provably has
//! `IG ≤ IG0`.
//!
//! ```sh
//! cargo run --release --example minsup_strategy
//! ```

use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::synth::profile_by_name;
use dfpc::measures::bounds::ig_upper_bound_for;
use dfpc::measures::{info_gain, theta_star, MinSupStrategy};
use dfpc::mining::{mine_features, MiningConfig};

fn main() {
    let data = profile_by_name("austral").expect("profile").generate();
    let (categorical, _) = data.discretize(&dfpc::data::discretize::MdlDiscretizer::new());
    let (ts, _) = categorical.to_transactions();
    let n = ts.len();
    let priors = ts.class_priors();
    println!(
        "austral profile: n = {n}, class priors = [{:.3}, {:.3}]\n",
        priors[0], priors[1]
    );

    println!("IG0      θ* (abs)   θ* (rel)   IGub(θ*)");
    for ig0 in [0.01, 0.02, 0.05, 0.10, 0.20, 0.40] {
        let s = theta_star(ig0, &priors, n);
        let bound = ig_upper_bound_for(s as f64 / n as f64, &priors);
        println!("{ig0:<8} {s:<10} {:<10.4} {bound:.4}", s as f64 / n as f64);
    }

    // Safety check: mine everything at min_sup = 1 (bounded length to stay
    // tractable) and verify that no pattern at support ≤ θ* beats IG0.
    let ig0 = 0.05;
    let star = theta_star(ig0, &priors, n);
    println!("\nverifying Eq. 8 guarantee at IG0 = {ig0} (θ* = {star}) …");
    let cfg = MiningConfig {
        min_sup_rel: 1.0 / n as f64,
        // All frequent sets (not closed): the guarantee is about every
        // feature candidate the IG filter would see.
        miner: dfpc::mining::per_class::MinerKind::Eclat,
        options: dfpc::mining::MineOptions::default()
            .with_max_len(2)
            .with_max_patterns(5_000_000),
        ..MiningConfig::default()
    };
    let all = mine_features(&ts, &cfg).expect("bounded mining");
    let class_counts = ts.class_counts();
    let mut skippable = 0usize;
    let mut violations = 0usize;
    for p in &all {
        if (p.support as usize) <= star {
            skippable += 1;
            if info_gain(&class_counts, &p.class_supports) > ig0 + 1e-9 {
                violations += 1;
            }
        }
    }
    println!(
        "patterns (len ≤ 2) mined: {} | with support ≤ θ*: {skippable} | IG0 violations: {violations}",
        all.len()
    );
    assert_eq!(violations, 0, "Eq. 8 guarantee violated");

    // And the strategy is directly usable in the pipeline:
    let cfg = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::InfoGainThreshold(ig0));
    let model = PatternClassifier::fit(&data, &cfg).expect("pipeline");
    println!(
        "\npipeline with InfoGainThreshold({ig0}): resolved min_sup = {:?}, {} patterns mined, {} selected, train acc {:.4}",
        model.info().min_sup_abs,
        model.info().n_patterns_mined,
        model.info().n_selected,
        model.accuracy(&data)
    );
}
