//! The framework vs associative classification (paper §5).
//!
//! Associative classifiers (CBA / CMAR / HARMONY) predict *directly from
//! rules*; the paper's framework instead re-represents the data over
//! `I ∪ Fs` and hands it to a general learner. This example trains all four
//! on the same splits of two profiles and prints held-out accuracies.
//!
//! ```sh
//! cargo run --release --example associative_vs_framework
//! ```

use dfpc::baselines::cba::{CbaClassifier, CbaParams};
use dfpc::baselines::cmar::{CmarClassifier, CmarParams};
use dfpc::baselines::harmony::{HarmonyClassifier, HarmonyParams};
use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::discretize::MdlDiscretizer;
use dfpc::data::split::stratified_k_fold;
use dfpc::data::synth::profile_by_name;
use dfpc::mining::MiningConfig;

fn main() {
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "Pat_FS", "CBA", "CMAR", "HARMONY"
    );
    for name in ["austral", "breast", "lymph"] {
        let profile = profile_by_name(name).expect("profile");
        let data = profile.generate();
        let folds = stratified_k_fold(&data.labels, 5, 11);
        let mining = MiningConfig::with_min_sup(profile.default_min_sup);

        let mut acc = [0.0f64; 4];
        for fold in &folds {
            let train = data.subset(&fold.train);
            let test = data.subset(&fold.test);

            // Framework path: raw dataset in, discretization inside.
            let model =
                PatternClassifier::fit(&train, &FrameworkConfig::pat_fs()).expect("framework fit");
            acc[0] += model.accuracy(&test);

            // Baselines operate on itemized transactions; fit the
            // discretizer on the training fold and replay it on test.
            let (train_cat, disc) = train.discretize(&MdlDiscretizer::new());
            let test_cat = disc.apply(&test);
            let (train_ts, _) = train_cat.to_transactions();
            let (test_ts, _) = test_cat.to_transactions();

            let cba = CbaClassifier::fit(
                &train_ts,
                &CbaParams {
                    mining: mining.clone(),
                    ..CbaParams::default()
                },
            )
            .expect("cba fit");
            acc[1] += cba.accuracy(&test_ts);

            let cmar = CmarClassifier::fit(
                &train_ts,
                &CmarParams {
                    mining: mining.clone(),
                    ..CmarParams::default()
                },
            )
            .expect("cmar fit");
            acc[2] += cmar.accuracy(&test_ts);

            let harmony = HarmonyClassifier::fit(
                &train_ts,
                &HarmonyParams {
                    mining: mining.clone(),
                    ..HarmonyParams::default()
                },
            )
            .expect("harmony fit");
            acc[3] += harmony.accuracy(&test_ts);
        }
        let k = folds.len() as f64;
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            acc[0] / k * 100.0,
            acc[1] / k * 100.0,
            acc[2] / k * 100.0,
            acc[3] / k * 100.0
        );
    }
    println!("\n(§5's HARMONY comparison at dense scale: cargo run -p dfp-bench --release --bin harmony_comparison)");
}
