//! The paper's §4 protocol end to end: inner cross validation on the
//! training set picks the best configuration, which is then evaluated on
//! held-out data. Also demonstrates swapping MMRFS's relevance measure
//! (Definition 3 allows any) — information gain, Fisher score, χ², and the
//! DDPMine-style support difference.
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use dfpc::classify::svm::LinearSvmParams;
use dfpc::core::{
    fit_with_model_selection, FeatureMode, FrameworkConfig, ModelKind, PatternClassifier,
    SelectionStrategy,
};
use dfpc::data::split::stratified_holdout;
use dfpc::data::synth::profile_by_name;
use dfpc::measures::RelevanceMeasure;
use dfpc::select::MmrfsConfig;

fn main() {
    let data = profile_by_name("heart").expect("profile").generate();
    let fold = stratified_holdout(&data.labels, 0.3, 21);
    let train = data.subset(&fold.train);
    let test = data.subset(&fold.test);

    // Grid: Pat_FS with three SVM regularisation levels plus a C4.5 variant.
    let mut grid: Vec<(String, FrameworkConfig)> = [0.1, 1.0, 10.0]
        .iter()
        .map(|&c| {
            (
                format!("Pat_FS / SVM C={c}"),
                FrameworkConfig::pat_fs()
                    .with_model(ModelKind::LinearSvm(LinearSvmParams::with_c(c))),
            )
        })
        .collect();
    grid.push((
        "Pat_FS / C4.5".to_string(),
        FrameworkConfig::pat_fs().with_c45(),
    ));

    let configs: Vec<FrameworkConfig> = grid.iter().map(|(_, c)| c.clone()).collect();
    let (model, winner) =
        fit_with_model_selection(&train, &configs, 5, 3).expect("model selection");
    println!("inner 5-fold CV chose: {}", grid[winner].0);
    println!("held-out accuracy    : {:.4}\n", model.accuracy(&test));

    // Relevance-measure ablation: same pipeline, different S(α) in MMRFS.
    println!(
        "{:<22} {:>10} {:>10}",
        "relevance measure", "selected", "test acc"
    );
    for measure in [
        RelevanceMeasure::InfoGain,
        RelevanceMeasure::FisherScore,
        RelevanceMeasure::ChiSquare,
        RelevanceMeasure::SupportDifference,
    ] {
        let mut cfg = FrameworkConfig::pat_fs();
        if let FeatureMode::Patterns { selection, .. } = &mut cfg.features {
            *selection = SelectionStrategy::Mmrfs(MmrfsConfig {
                relevance: measure,
                ..MmrfsConfig::default()
            });
        }
        let m = PatternClassifier::fit(&train, &cfg).expect("fit");
        println!(
            "{:<22} {:>10} {:>10.4}",
            measure.to_string(),
            m.info().n_selected,
            m.accuracy(&test)
        );
    }
}
