//! Property tests for the associative-classification baselines: rule
//! generation invariants and classifier totality/consistency.

use dfpc::baselines::cba::CbaClassifier;
use dfpc::baselines::cmar::CmarClassifier;
use dfpc::baselines::harmony::{HarmonyClassifier, HarmonyParams};
use dfpc::baselines::rules::{precedence, rules_from_patterns};
use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::mining::{mine_features, MiningConfig};
use proptest::prelude::*;

fn random_labelled_db() -> impl Strategy<Value = TransactionSet> {
    let n_items = 6usize;
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..n_items as u32, 1..=4),
            0u32..2,
        ),
        6..=20,
    )
    .prop_map(move |rows| {
        let (transactions, labels): (Vec<Vec<Item>>, Vec<ClassId>) = rows
            .into_iter()
            .map(|(set, l)| (set.into_iter().map(Item).collect::<Vec<_>>(), ClassId(l)))
            .unzip();
        TransactionSet::new(n_items, 2, transactions, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated rules respect min_conf, have consistent counts, and come
    /// back in non-increasing precedence order.
    #[test]
    fn rule_generation_invariants(ts in random_labelled_db(), conf in 0.5f64..1.0) {
        let patterns = mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap();
        let rules = rules_from_patterns(&patterns, conf);
        for r in &rules {
            prop_assert!(r.confidence() >= conf - 1e-12);
            prop_assert!(r.class_support <= r.cover);
            prop_assert_eq!(r.cover as usize, ts.support(&r.items));
        }
        for w in rules.windows(2) {
            prop_assert_ne!(
                precedence(&w[0], &w[1]),
                std::cmp::Ordering::Greater,
                "rules out of precedence order"
            );
        }
    }

    /// All three baselines produce total, in-range predictions and beat (or
    /// match) the majority-class rate on their own training data.
    #[test]
    fn baselines_total_and_not_worse_than_majority(ts in random_labelled_db()) {
        let counts = ts.class_counts();
        prop_assume!(counts.iter().all(|&c| c >= 2));
        let majority_rate =
            *counts.iter().max().unwrap() as f64 / ts.len() as f64;

        let cba = CbaClassifier::fit(&ts, &Default::default()).unwrap();
        let cmar = CmarClassifier::fit(&ts, &Default::default()).unwrap();
        let harmony = HarmonyClassifier::fit(&ts, &HarmonyParams::default()).unwrap();

        for t in 0..ts.len() {
            let tx = ts.transaction(t);
            prop_assert!(cba.predict(tx).index() < 2);
            prop_assert!(cmar.predict(tx).index() < 2);
            prop_assert!(harmony.predict(tx).index() < 2);
        }
        // Rule-based training accuracy should never fall below always-majority
        // minus slack (CBA's default class guarantees this for CBA exactly).
        prop_assert!(cba.accuracy(&ts) >= majority_rate - 1e-9,
            "CBA {} < majority {}", cba.accuracy(&ts), majority_rate);
        prop_assert!(harmony.accuracy(&ts) >= majority_rate - 0.25);
        prop_assert!(cmar.accuracy(&ts) >= majority_rate - 0.25);
    }

    /// CBA's first-match semantics: if any selected rule covers the
    /// transaction, the prediction equals the first covering rule's class.
    #[test]
    fn cba_first_match_semantics(ts in random_labelled_db()) {
        let patterns = mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap();
        let rules = rules_from_patterns(&patterns, 0.5);
        let cba = CbaClassifier::from_rules(&ts, rules);
        for t in 0..ts.len() {
            let tx = ts.transaction(t);
            let pred = cba.predict(tx);
            prop_assert!(pred.index() < 2);
        }
        // uncovered transaction falls back to the default class
        prop_assert_eq!(cba.predict(&[]).index() < 2, true);
    }
}
