//! Property tests for the data substrate: bitset algebra, discretizer
//! invariants, stratified splitting, and the dataset → transaction mapping.

use dfpc::data::bitset::Bitset;
use dfpc::data::discretize::{
    DiscretizationModel, Discretizer, EqualFrequency, EqualWidth, MdlDiscretizer,
};
use dfpc::data::schema::ClassId;
use dfpc::data::split::stratified_k_fold;
use proptest::prelude::*;

fn bits(len: usize) -> impl Strategy<Value = Bitset> {
    prop::collection::btree_set(0..len, 0..=len).prop_map(move |s| Bitset::from_indices(len, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_algebra_laws(a in bits(130), b in bits(130), c in bits(130)) {
        // inclusion–exclusion
        prop_assert_eq!(
            a.union_count(&b) + a.intersection_count(&b),
            a.count_ones() + b.count_ones()
        );
        // difference decomposition
        prop_assert_eq!(
            a.difference_count(&b) + a.intersection_count(&b),
            a.count_ones()
        );
        // subset ↔ intersection fixpoint
        let mut ab = a.clone();
        ab.intersect_with(&b);
        prop_assert_eq!(ab.is_subset_of(&a), true);
        prop_assert_eq!(a.is_subset_of(&b), ab == a.clone());
        // associativity of intersection via counts
        let mut ab_c = ab.clone();
        ab_c.intersect_with(&c);
        let mut bc = b.clone();
        bc.intersect_with(&c);
        let mut a_bc = a.clone();
        a_bc.intersect_with(&bc);
        prop_assert_eq!(ab_c, a_bc);
        // iter_ones roundtrip
        let back = Bitset::from_indices(130, a.iter_ones());
        prop_assert_eq!(back, a.clone());
        // jaccard bounds
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn discretizers_produce_valid_cut_points(
        values in prop::collection::vec((-100.0f64..100.0, 0u32..3), 0..60),
        bins in 1usize..6
    ) {
        let labelled: Vec<(f64, ClassId)> =
            values.iter().map(|&(v, l)| (v, ClassId(l))).collect();
        for cuts in [
            EqualWidth::new(bins).cut_points(&labelled, 3),
            EqualFrequency::new(bins).cut_points(&labelled, 3),
            MdlDiscretizer::new().cut_points(&labelled, 3),
        ] {
            // strictly increasing and finite
            for w in cuts.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(cuts.iter().all(|c| c.is_finite()));
            // within the data range (when data exists)
            if let (Some(lo), Some(hi)) = (
                values.iter().map(|&(v, _)| v).min_by(|a, b| a.partial_cmp(b).unwrap()),
                values.iter().map(|&(v, _)| v).max_by(|a, b| a.partial_cmp(b).unwrap()),
            ) {
                prop_assert!(cuts.iter().all(|&c| c >= lo && c <= hi));
            }
        }
    }

    #[test]
    fn binning_is_exhaustive_and_monotone(
        values in prop::collection::vec((-50.0f64..50.0, 0u32..2), 4..40)
    ) {
        use dfpc::data::dataset::{Dataset, Value};
        use dfpc::data::schema::{Attribute, Schema};
        let schema = Schema::new(
            vec![Attribute::numeric("x")],
            vec!["a".into(), "b".into()],
        );
        let d = Dataset::new(
            schema,
            values.iter().map(|&(v, _)| vec![Value::Num(v)]).collect(),
            values.iter().map(|&(_, l)| ClassId(l)).collect(),
        );
        let model = DiscretizationModel::fit(&d, &EqualFrequency::new(4));
        let n_bins = model.n_bins(0).unwrap();
        let mut last_bin = 0usize;
        let mut sorted: Vec<f64> = values.iter().map(|&(v, _)| v).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for v in sorted {
            let bin = model.bin(0, v);
            prop_assert!(bin < n_bins);
            prop_assert!(bin >= last_bin, "bins must be monotone in the value");
            last_bin = bin;
        }
    }

    #[test]
    fn stratified_folds_partition_and_stratify(
        class_sizes in prop::collection::vec(3usize..20, 2..4),
        k in 2usize..4
    ) {
        let labels: Vec<ClassId> = class_sizes
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(ClassId(c as u32), n))
            .collect();
        let folds = stratified_k_fold(&labels, k, 17);
        prop_assert_eq!(folds.len(), k);
        let mut tested = vec![0usize; labels.len()];
        for f in &folds {
            for &t in &f.test {
                tested[t] += 1;
            }
            // stratification: per-class test counts within 1 of each other
            for (c, &size) in class_sizes.iter().enumerate() {
                let in_test = f.test.iter().filter(|&&i| labels[i] == ClassId(c as u32)).count();
                let expect = size / k;
                prop_assert!(in_test >= expect && in_test <= expect + 1);
            }
        }
        prop_assert!(tested.iter().all(|&t| t == 1), "each row tested exactly once");
    }
}
