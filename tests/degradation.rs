//! Graceful-degradation acceptance: anytime mining under a pattern budget
//! or deadline must keep a usable best-so-far model — flagged as degraded,
//! with accuracy within 2 points of the unbudgeted fit on planted data —
//! while strict (non-anytime) mode keeps failing loudly.

use dfpc::core::{FeatureMode, FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::data::split::stratified_holdout;
use dfpc::mining::StopReason;
use std::time::Duration;

/// Planted two-class data: the pair (a0=1, a1=1) marks class 0 and
/// (a0=1, a1=2) marks class 1; a2 is noise. Patterns and items both carry
/// signal, so a truncated pattern set still supports a strong model.
fn planted() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..120u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn with_pattern_budget(mut cfg: FrameworkConfig, budget: u64) -> FrameworkConfig {
    if let FeatureMode::Patterns { mining, .. } = &mut cfg.features {
        mining.options = mining.options.clone().with_max_patterns(budget);
    }
    cfg
}

#[test]
fn budget_stopped_fit_stays_within_two_points() {
    let data = planted();
    let fold = stratified_holdout(&data.labels, 0.3, 7);
    let (train, test) = (data.subset(&fold.train), data.subset(&fold.test));

    let full_cfg = FrameworkConfig::pat_all();
    let full = PatternClassifier::fit(&train, &full_cfg).expect("unbudgeted fit");
    assert!(!full.degradation().is_degraded());
    assert!(full.degradation().mining_stopped_by.is_none());

    // A budget under the full pattern count forces a best-so-far stop.
    let tight = with_pattern_budget(FrameworkConfig::pat_all().with_anytime_mining(true), 2);
    let degraded = PatternClassifier::fit(&train, &tight).expect("anytime fit");
    let report = degraded.degradation();
    assert!(report.is_degraded(), "budget of 2 did not stop mining");
    assert_eq!(report.mining_stopped_by, Some(StopReason::PatternBudget));
    assert!(!report.mining_complete);
    // Best-so-far, not nothing: the truncated mining still yielded patterns.
    assert!(
        degraded.info().n_features > 0,
        "degraded fit produced no features"
    );

    let full_acc = full.accuracy(&test);
    let degraded_acc = degraded.accuracy(&test);
    assert!(
        full_acc - degraded_acc <= 0.02 + 1e-9,
        "degraded accuracy {degraded_acc} fell more than 2 points below {full_acc}"
    );
}

#[test]
fn strict_mode_still_fails_loudly_on_budget() {
    let data = planted();
    // Same tight budget, anytime OFF: the legacy contract holds — error,
    // not a silently truncated model.
    let strict = with_pattern_budget(FrameworkConfig::pat_all(), 2);
    assert!(PatternClassifier::fit(&data, &strict).is_err());
}

#[test]
fn zero_deadline_degrades_instead_of_failing() {
    let data = planted();
    let cfg = FrameworkConfig::pat_all()
        .with_anytime_mining(true)
        .with_mining_time_budget(Duration::ZERO);
    let fitted = PatternClassifier::fit(&data, &cfg).expect("anytime fit under deadline");
    let report = fitted.degradation();
    assert!(report.is_degraded());
    assert_eq!(report.mining_stopped_by, Some(StopReason::Deadline));
    // Items still carry the model: prediction works end to end.
    assert!(fitted.accuracy(&data) > 0.5);

    // Strict mode with the same dead deadline fails loudly.
    let strict = FrameworkConfig::pat_all().with_mining_time_budget(Duration::ZERO);
    assert!(PatternClassifier::fit(&data, &strict).is_err());
}

#[test]
fn nodeset_fault_degrades_anytime_fit_to_partial() {
    let data = planted();
    let cfg = FrameworkConfig::pat_all()
        .with_miner(dfpc::core::MinerKind::Nodeset)
        .with_anytime_mining(true);

    // The failpoint site is registered, so the CI fault matrix can arm it.
    assert!(
        dfpc::fault::REGISTRY
            .iter()
            .any(|(site, _)| *site == "mining.nodeset"),
        "mining.nodeset missing from the failpoint registry"
    );

    dfpc::fault::arm("mining.nodeset", dfpc::fault::Action::Err);
    let fitted = PatternClassifier::fit(&data, &cfg);
    dfpc::fault::disarm("mining.nodeset");

    // Anytime path: the injected fault yields a *partial* mining result
    // (complete = false, stopped_by = Fault), not a failed fit — items
    // still carry the model.
    let fitted = fitted.expect("anytime fit degrades instead of failing");
    let report = fitted.degradation();
    assert!(report.is_degraded());
    assert!(!report.mining_complete);
    assert_eq!(report.mining_stopped_by, Some(StopReason::Fault));
    assert!(fitted.accuracy(&data) > 0.5);

    // Strict mode with the same armed site fails loudly instead.
    dfpc::fault::arm("mining.nodeset", dfpc::fault::Action::Err);
    let strict = PatternClassifier::fit(
        &data,
        &FrameworkConfig::pat_all().with_miner(dfpc::core::MinerKind::Nodeset),
    );
    dfpc::fault::disarm("mining.nodeset");
    assert!(strict.is_err());
}

#[test]
fn degradation_report_is_not_persisted() {
    // The report is a fit-time diagnostic: a round-tripped artifact comes
    // back undegraded (the model itself is already truncated-but-valid).
    let data = planted();
    let tight = with_pattern_budget(FrameworkConfig::pat_all().with_anytime_mining(true), 2);
    let fitted = PatternClassifier::fit(&data, &tight).expect("anytime fit");
    assert!(fitted.degradation().is_degraded());
    let loaded = dfpc::model::from_bytes(&dfpc::model::to_bytes(&fitted)).expect("roundtrip");
    assert!(!loaded.degradation().is_degraded());
    assert_eq!(
        loaded.predict(&data).expect("loaded predict"),
        fitted.predict(&data).expect("fitted predict")
    );
}
