//! Property tests for the paper's theoretical core: every achievable
//! information gain / Fisher score lies below the corresponding
//! support-dependent upper bound (§3.1.2), and the `min_sup` strategy
//! (Eq. 8) is safe — no feature an IG filter would keep can be lost by
//! mining at `θ*`.

use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{contains_sorted, Item, TransactionSet};
use dfpc::measures::bounds::{
    fisher_upper_bound, ig_upper_bound, ig_upper_bound_for, ig_upper_bound_multiclass,
};
use dfpc::measures::minsup::ig_threshold_of;
use dfpc::measures::{binary_entropy, fisher_score, info_gain, theta_star};
use dfpc::mining::{eclat, MineOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// IG(C|X) ≤ IGub(θ) for every binary configuration (n1, n2, s1, s2).
    #[test]
    fn ig_never_exceeds_bound(n1 in 1usize..40, n2 in 1usize..40, f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let s1 = (n1 as f64 * f1).round() as usize;
        let s2 = (n2 as f64 * f2).round() as usize;
        let ig = info_gain(&[n1, n2], &[s1 as u32, s2 as u32]);
        let n = n1 + n2;
        let theta = (s1 + s2) as f64 / n as f64;
        let p = n2 as f64 / n as f64; // bound is symmetric in the class roles
        let bound = ig_upper_bound(theta, p);
        prop_assert!(ig <= bound + 1e-9, "IG {} > IGub {} at θ={} p={}", ig, bound, theta, p);
    }

    /// Fisher score ≤ FRub(θ) for every binary configuration.
    #[test]
    fn fisher_never_exceeds_bound(n1 in 1usize..40, n2 in 1usize..40, f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let s1 = (n1 as f64 * f1).round() as usize;
        let s2 = (n2 as f64 * f2).round() as usize;
        let fr = fisher_score(&[n1, n2], &[s1 as u32, s2 as u32]);
        prop_assume!(fr.is_finite());
        let n = n1 + n2;
        let theta = (s1 + s2) as f64 / n as f64;
        let p = n2 as f64 / n as f64;
        let bound = fisher_upper_bound(theta, p);
        prop_assert!(fr <= bound + 1e-6, "Fr {} > FRub {} at θ={} p={}", fr, bound, theta, p);
    }

    /// Multiclass: IG ≤ min(H(C), H2(θ)).
    #[test]
    fn multiclass_ig_bound(counts in prop::collection::vec(1usize..15, 2..5), seed in 0u64..1000) {
        // Derive per-class supports deterministically from the seed.
        let supports: Vec<u32> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((seed >> (i * 3)) as usize % (c + 1)) as u32)
            .collect();
        let ig = info_gain(&counts, &supports);
        let n: usize = counts.iter().sum();
        let theta = supports.iter().sum::<u32>() as f64 / n as f64;
        let priors: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        let bound = ig_upper_bound_multiclass(theta, &priors);
        prop_assert!(ig <= bound + 1e-9);
    }

    /// The Eq. 8 guarantee: for any pattern with support ≤ θ*, IG ≤ IG0.
    #[test]
    fn theta_star_is_safe(n1 in 2usize..60, n2 in 2usize..60, ig0 in 0.001f64..0.8, f1 in 0.0f64..=1.0, f2 in 0.0f64..=1.0) {
        let n = n1 + n2;
        let priors = [n1 as f64 / n as f64, n2 as f64 / n as f64];
        let star = theta_star(ig0, &priors, n);
        let s1 = (n1 as f64 * f1).round() as usize;
        let s2 = (n2 as f64 * f2).round() as usize;
        if s1 + s2 <= star && s1 + s2 > 0 {
            let ig = info_gain(&[n1, n2], &[s1 as u32, s2 as u32]);
            // A pattern the min_sup threshold would skip must be one the IG
            // filter would also skip (unless IG0 exceeds the max bound and
            // θ* saturated at the peak, where nothing is skipped wrongly).
            let max_bound = binary_entropy(priors[1]);
            if ig0 < max_bound {
                prop_assert!(ig <= ig0 + 1e-9, "skipped pattern has IG {} > IG0 {}", ig, ig0);
            }
        }
    }

    /// θ* is maximal: the bound at θ* stays within IG0 and the implied
    /// threshold mapping is consistent in both directions.
    #[test]
    fn theta_star_maximality(n in 10usize..500, p_frac in 0.05f64..0.95, ig0 in 0.001f64..0.9) {
        let priors = [1.0 - p_frac, p_frac];
        let star = theta_star(ig0, &priors, n);
        prop_assert!(star >= 1 && star <= n);
        let implied = ig_threshold_of(star, &priors, n);
        prop_assert!(implied <= ig0 + 1e-9 || star == 1,
            "IGub(θ*) = {} exceeds IG0 = {}", implied, ig0);
        // Monotone: a looser filter can only raise θ*.
        let star2 = theta_star(ig0 * 1.5, &priors, n);
        prop_assert!(star2 >= star);
    }

    /// The dispatching bound is itself an upper bound of the binary one.
    #[test]
    fn dispatch_consistency(theta in 0.0f64..=1.0, p in 0.01f64..0.99) {
        let tight = ig_upper_bound_for(theta, &[1.0 - p, p]);
        let direct = ig_upper_bound(theta, p);
        prop_assert!((tight - direct).abs() < 1e-12);
        // And never exceeds H(C).
        prop_assert!(tight <= binary_entropy(p) + 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Bounds against *mined* patterns (paper §3.1.2, Figures 3–5): every pattern
// a miner emits at support θ must measure at or below IGub(θ) / FRub(θ).
// The earlier properties cover synthetic (n1, n2, s1, s2) grids; these go
// through the real mining path, so support bookkeeping, per-class counting
// and measure evaluation are all exercised together.
// ---------------------------------------------------------------------------

/// A random labelled database over up to 8 items with `n_classes` classes.
fn random_labeled_db(n_classes: usize) -> impl Strategy<Value = TransactionSet> {
    let n_items = 8usize;
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..n_items as u32, 1..=5),
            0u32..n_classes as u32,
        ),
        4..=16,
    )
    .prop_map(move |rows| {
        let mut transactions = Vec::with_capacity(rows.len());
        let mut labels = Vec::with_capacity(rows.len());
        for (set, label) in rows {
            transactions.push(set.into_iter().map(Item).collect::<Vec<Item>>());
            labels.push(ClassId(label));
        }
        TransactionSet::new(n_items, n_classes, transactions, labels)
    })
}

/// Class-conditional supports of `items`: how many transactions of each
/// class contain the pattern.
fn per_class_supports(ts: &TransactionSet, items: &[Item]) -> Vec<u32> {
    let mut supports = vec![0u32; ts.n_classes()];
    for (t, l) in ts.transactions().iter().zip(ts.labels()) {
        if contains_sorted(t, items) {
            supports[l.index()] += 1;
        }
    }
    supports
}

/// Per-class transaction counts.
fn class_counts(ts: &TransactionSet) -> Vec<usize> {
    let mut counts = vec![0usize; ts.n_classes()];
    for l in ts.labels() {
        counts[l.index()] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary problems: every mined pattern's information gain lies at or
    /// below IGub evaluated at the pattern's own support θ.
    #[test]
    fn mined_patterns_never_beat_the_ig_bound(
        ts in random_labeled_db(2), min_sup in 1usize..4
    ) {
        let counts = class_counts(&ts);
        prop_assume!(counts.iter().all(|&c| c > 0));
        let n = ts.len();
        let p = counts[1] as f64 / n as f64;
        for pat in eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap() {
            let supports = per_class_supports(&ts, &pat.items);
            prop_assert_eq!(supports.iter().sum::<u32>(), pat.support);
            let ig = info_gain(&counts, &supports);
            let theta = pat.support as f64 / n as f64;
            let bound = ig_upper_bound(theta, p);
            prop_assert!(
                ig <= bound + 1e-9,
                "pattern {:?}: IG {} > IGub({}) = {}", pat.items, ig, theta, bound
            );
        }
    }

    /// Binary problems: every mined pattern's Fisher score lies at or
    /// below FRub at the pattern's support (infinite scores only where the
    /// bound is infinite too).
    #[test]
    fn mined_patterns_never_beat_the_fisher_bound(
        ts in random_labeled_db(2), min_sup in 1usize..4
    ) {
        let counts = class_counts(&ts);
        prop_assume!(counts.iter().all(|&c| c > 0));
        let n = ts.len();
        let p = counts[1] as f64 / n as f64;
        for pat in eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap() {
            let supports = per_class_supports(&ts, &pat.items);
            let fr = fisher_score(&counts, &supports);
            let theta = pat.support as f64 / n as f64;
            let bound = fisher_upper_bound(theta, p);
            if fr.is_finite() {
                prop_assert!(
                    fr <= bound + 1e-6,
                    "pattern {:?}: Fr {} > FRub({}) = {}", pat.items, fr, theta, bound
                );
            } else {
                prop_assert!(
                    bound.is_infinite(),
                    "pattern {:?}: infinite Fr but finite bound {}", pat.items, bound
                );
            }
        }
    }

    /// Multiclass problems use the dispatching bound; mined patterns must
    /// respect it too.
    #[test]
    fn mined_patterns_respect_the_multiclass_bound(
        ts in random_labeled_db(3), min_sup in 1usize..4
    ) {
        let counts = class_counts(&ts);
        prop_assume!(counts.iter().all(|&c| c > 0));
        let n = ts.len();
        let priors: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        for pat in eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap() {
            let supports = per_class_supports(&ts, &pat.items);
            let ig = info_gain(&counts, &supports);
            let theta = pat.support as f64 / n as f64;
            let bound = ig_upper_bound_for(theta, &priors);
            prop_assert!(
                ig <= bound + 1e-9,
                "pattern {:?}: IG {} > bound({}) = {}", pat.items, ig, theta, bound
            );
        }
    }
}
