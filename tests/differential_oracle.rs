//! Differential test oracle for the mining stack.
//!
//! An independent brute-force enumerator — bitmask subset enumeration,
//! sharing **no code** with `dfpc::mining` (including its own
//! `reference` module) — computes the exact frequent-itemset collection
//! for small databases. Every production miner must reproduce it
//! verbatim: Apriori, Eclat, FP-growth, the PPC-tree nodeset miner, and
//! the closed-set miner after expanding its output back to the full
//! frequent collection.
//!
//! The expansion check is the sharp one: a closed pattern's support must
//! propagate to every subset as the *maximum* over its closed supersets,
//! so any error in closure computation or support bookkeeping shows up as
//! a support mismatch here.

use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::mining::closed::{expand_frequent, mine_closed};
use dfpc::mining::pattern::{sort_canonical, RawPattern};
use dfpc::mining::{apriori, eclat, fpgrowth, nodeset, MineOptions};
use proptest::prelude::*;

/// Exhaustive oracle: enumerate every non-empty subset of the item
/// universe as a bitmask and count its support by scanning transaction
/// masks. Only valid for universes of at most 16 items; tests stay ≤ 12.
fn oracle_frequent(ts: &TransactionSet, min_sup: usize) -> Vec<RawPattern> {
    let n_items = ts.n_items();
    assert!(n_items <= 16, "oracle is exponential in the item universe");
    let masks: Vec<u16> = ts
        .transactions()
        .iter()
        .map(|t| t.iter().fold(0u16, |m, i| m | (1 << i.0)))
        .collect();
    let mut out = Vec::new();
    for subset in 1u32..(1u32 << n_items) {
        let subset = subset as u16;
        let support = masks.iter().filter(|&&m| m & subset == subset).count();
        if support >= min_sup {
            let items: Vec<Item> = (0..n_items as u32)
                .filter(|i| subset & (1 << i) != 0)
                .map(Item)
                .collect();
            out.push(RawPattern {
                items,
                support: support as u32,
            });
        }
    }
    sort_canonical(&mut out);
    out
}

/// Strategy: a random database of up to 14 transactions over up to 12
/// items (small enough for the exponential oracle, large enough that the
/// miners' pruning and recursion paths are all exercised).
fn random_db() -> impl Strategy<Value = TransactionSet> {
    (
        4usize..13,
        prop::collection::vec(prop::collection::btree_set(0u32..12, 0..=8), 1..=14),
    )
        .prop_map(|(n_items, txs)| {
            let transactions: Vec<Vec<Item>> = txs
                .into_iter()
                .map(|set| {
                    // Fold the fixed 0..12 item draw into the sampled
                    // universe size, re-deduplicating after the fold.
                    let folded: std::collections::BTreeSet<u32> =
                        set.into_iter().map(|i| i % n_items as u32).collect();
                    folded.into_iter().map(Item).collect()
                })
                .collect();
            let n = transactions.len();
            TransactionSet::new(n_items, 1, transactions, vec![ClassId(0); n])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Apriori, Eclat, FP-growth and the nodeset miner each reproduce the
    /// oracle exactly — same itemsets, same supports, same canonical order.
    /// (Nodeset runs in both DiffNodeset and plain-nodeset modes via the
    /// adapter's density-based auto pick plus the explicit entry points.)
    #[test]
    fn every_miner_reproduces_the_oracle(ts in random_db(), min_sup in 1usize..5) {
        let want = oracle_frequent(&ts, min_sup);
        let opts = MineOptions::default();
        for (name, mut got) in [
            ("apriori", apriori::mine(&ts, min_sup, &opts).unwrap()),
            ("eclat", eclat::mine(&ts, min_sup, &opts).unwrap()),
            ("fpgrowth", fpgrowth::mine(&ts, min_sup, &opts).unwrap()),
            ("nodeset", nodeset::mine(&ts, min_sup, &opts).unwrap()),
        ] {
            sort_canonical(&mut got);
            prop_assert_eq!(&got, &want, "{} diverges from the oracle", name);
        }
    }

    /// Both explicit nodeset representations — plain FIN-style nodesets
    /// and dFIN DiffNodesets — match the oracle, independent of the
    /// density heuristic that normally picks between them.
    #[test]
    fn both_nodeset_modes_reproduce_the_oracle(ts in random_db(), min_sup in 1usize..5) {
        let want = oracle_frequent(&ts, min_sup);
        for mode in [dfpc::nodeset::Mode::Plain, dfpc::nodeset::Mode::Diff] {
            let mined = dfpc::nodeset::mine_anytime_in(
                &ts, min_sup, &dfpc::nodeset::Limits::default(), mode);
            prop_assert!(mined.complete);
            let mut got: Vec<RawPattern> = mined.patterns.into_iter()
                .map(|p| RawPattern { items: p.items, support: p.support })
                .collect();
            sort_canonical(&mut got);
            prop_assert_eq!(&got, &want, "{:?} diverges from the oracle", mode);
        }
    }

    /// Expanding the closed-set miner's output reconstructs the complete
    /// frequent collection with exact supports (each subset inherits the
    /// maximum support over its closed supersets).
    #[test]
    fn closed_expansion_reconstructs_the_oracle(ts in random_db(), min_sup in 1usize..5) {
        let closed = mine_closed(&ts, min_sup, &MineOptions::default()).unwrap();
        let expanded = expand_frequent(&closed);
        let want = oracle_frequent(&ts, min_sup);
        prop_assert_eq!(expanded, want);
    }

    /// The closed collection is a subset of the frequent collection, and
    /// expansion never invents patterns below min_sup.
    #[test]
    fn expansion_is_sound(ts in random_db(), min_sup in 1usize..5) {
        let closed = mine_closed(&ts, min_sup, &MineOptions::default()).unwrap();
        let expanded = expand_frequent(&closed);
        for p in &expanded {
            prop_assert!(p.support as usize >= min_sup);
            prop_assert_eq!(p.support as usize, ts.support(&p.items),
                "expanded support wrong for {:?}", p.items);
        }
        // Every closed pattern survives expansion with its own support.
        for c in &closed {
            prop_assert!(
                expanded.iter().any(|p| p.items == c.items && p.support == c.support),
                "closed pattern {:?} lost in expansion", c.items
            );
        }
    }
}

/// A worked fixture where the closed → frequent expansion is easy to
/// verify by hand (the example shape of paper §3.3).
#[test]
fn expansion_golden_example() {
    // Transactions: {0,1,2} ×3, {0,1} ×2, {2} ×1. min_sup = 2.
    let ts = TransactionSet::new(
        3,
        1,
        vec![
            vec![Item(0), Item(1), Item(2)],
            vec![Item(0), Item(1), Item(2)],
            vec![Item(0), Item(1), Item(2)],
            vec![Item(0), Item(1)],
            vec![Item(0), Item(1)],
            vec![Item(2)],
        ],
        vec![ClassId(0); 6],
    );
    let closed = mine_closed(&ts, 2, &MineOptions::default()).unwrap();
    // Closed sets: {0,1} (sup 5), {2} (sup 4), {0,1,2} (sup 3).
    assert_eq!(closed.len(), 3);
    let expanded = expand_frequent(&closed);
    let lookup = |items: &[u32]| -> u32 {
        let items: Vec<Item> = items.iter().copied().map(Item).collect();
        expanded
            .iter()
            .find(|p| p.items == items)
            .unwrap_or_else(|| panic!("{items:?} missing"))
            .support
    };
    assert_eq!(lookup(&[0]), 5);
    assert_eq!(lookup(&[1]), 5);
    assert_eq!(lookup(&[2]), 4);
    assert_eq!(lookup(&[0, 1]), 5);
    assert_eq!(lookup(&[0, 2]), 3);
    assert_eq!(lookup(&[1, 2]), 3);
    assert_eq!(lookup(&[0, 1, 2]), 3);
    assert_eq!(expanded.len(), 7);
}
