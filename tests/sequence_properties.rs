//! Property tests for the PrefixSpan sequential-pattern miner (the §6
//! extension): supports agree with brute-force subsequence counting, and
//! the classic a-priori monotonicity holds for subsequences.

use dfpc::data::schema::ClassId;
use dfpc::mining::sequence::{prefixspan, SeqPattern, SequenceDb};
use dfpc::mining::MineOptions;
use proptest::prelude::*;

fn random_seq_db() -> impl Strategy<Value = SequenceDb> {
    let n_symbols = 4usize;
    prop::collection::vec(
        (
            prop::collection::vec(0u32..n_symbols as u32, 0..=6),
            0u32..2,
        ),
        1..=10,
    )
    .prop_map(move |rows| {
        let (sequences, labels): (Vec<Vec<u32>>, Vec<ClassId>) =
            rows.into_iter().map(|(s, l)| (s, ClassId(l))).unzip();
        SequenceDb::new(n_symbols, sequences, labels, 2)
    })
}

/// Brute-force enumeration of all subsequence patterns up to `max_len` with
/// their supports (exponential; test-sized inputs only).
fn brute_force(db: &SequenceDb, min_sup: usize, max_len: usize) -> Vec<SeqPattern> {
    let mut out = Vec::new();
    let mut prefix: Vec<u32> = Vec::new();
    fn rec(
        db: &SequenceDb,
        min_sup: usize,
        max_len: usize,
        prefix: &mut Vec<u32>,
        out: &mut Vec<SeqPattern>,
    ) {
        if prefix.len() >= max_len {
            return;
        }
        for s in 0..db.n_symbols as u32 {
            prefix.push(s);
            let support = db.support(prefix);
            if support >= min_sup {
                let mut class_supports = vec![0u32; db.n_classes];
                for (seq, l) in db.sequences.iter().zip(&db.labels) {
                    if SequenceDb::is_subsequence(prefix, seq) {
                        class_supports[l.index()] += 1;
                    }
                }
                out.push(SeqPattern {
                    symbols: prefix.clone(),
                    support: support as u32,
                    class_supports,
                });
                rec(db, min_sup, max_len, prefix, out);
            }
            prefix.pop();
        }
    }
    rec(db, min_sup, max_len, &mut prefix, &mut out);
    out.sort_by(|a, b| a.symbols.cmp(&b.symbols));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefixspan_equals_brute_force(db in random_seq_db(), min_sup in 1usize..4) {
        let mut got = prefixspan(&db, min_sup, &MineOptions::default().with_max_len(4)).unwrap();
        got.sort_by(|a, b| a.symbols.cmp(&b.symbols));
        let want = brute_force(&db, min_sup, 4);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn subsequence_support_is_antimonotone(db in random_seq_db()) {
        // every extension of a pattern has support ≤ the pattern's
        let patterns = prefixspan(&db, 1, &MineOptions::default().with_max_len(3)).unwrap();
        use std::collections::HashMap;
        let by_symbols: HashMap<&[u32], u32> =
            patterns.iter().map(|p| (p.symbols.as_slice(), p.support)).collect();
        for p in &patterns {
            if p.symbols.len() >= 2 {
                let parent = &p.symbols[..p.symbols.len() - 1];
                let parent_support = by_symbols.get(parent).copied().unwrap_or(0);
                prop_assert!(p.support <= parent_support,
                    "{:?} support {} > parent {}", p.symbols, p.support, parent_support);
            }
        }
    }

    #[test]
    fn class_supports_partition_support(db in random_seq_db(), min_sup in 1usize..3) {
        for p in prefixspan(&db, min_sup, &MineOptions::default().with_max_len(3)).unwrap() {
            prop_assert_eq!(p.class_supports.iter().sum::<u32>(), p.support);
        }
    }

    #[test]
    fn transform_consistent_with_subsequence_test(db in random_seq_db()) {
        let patterns = prefixspan(&db, 1, &MineOptions::default().with_max_len(2)).unwrap();
        let m = db.transform(&patterns);
        for (t, seq) in db.sequences.iter().enumerate() {
            for (k, p) in patterns.iter().enumerate() {
                prop_assert_eq!(
                    m.get(t, k as u32),
                    SequenceDb::is_subsequence(&p.symbols, seq)
                );
            }
        }
    }
}
