//! Dense vs. compressed row-set equivalence.
//!
//! The adaptive substrate (`RowSet` = dense `Bitset` | roaring-style
//! `CompressedBitmap`) must be a pure representation change: every kernel
//! — intersection, union, difference, the fused pair, subset, membership,
//! iteration — must return bit-identical results across all four
//! dense/compressed operand pairings, on random densities and at the
//! array↔bitmap container boundary (4096 set bits per 2^16-bit chunk).
//! On top of the kernels, Eclat must emit byte-identical pattern streams
//! under `DFP_BITSET=dense`, `compressed`, and `auto`.

use dfpc::data::bitset::{scalar, Bitset};
use dfpc::data::rowset::{set_mode_override, BitsetMode, CompressedBitmap, RowSet, ARRAY_MAX};
use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::mining::{eclat, MineOptions};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global representation mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Universe sizes: well below one chunk, just above one chunk, several
/// chunks (exercising chunk-boundary and tail-word handling).
const LENS: [usize; 3] = [1000, 70_000, 200_000];

fn build(len: usize, raw: &[u64]) -> (Bitset, CompressedBitmap) {
    let mut idx: Vec<usize> = raw.iter().map(|&r| (r as usize) % len).collect();
    idx.sort_unstable();
    idx.dedup();
    let b = Bitset::from_indices(len, idx.iter().copied());
    let c = CompressedBitmap::from_bitset(&b);
    (b, c)
}

/// The four dense/compressed operand pairings of one logical (a, b) pair.
fn pairings(
    a: &Bitset,
    ca: &CompressedBitmap,
    b: &Bitset,
    cb: &CompressedBitmap,
) -> Vec<(String, RowSet, RowSet)> {
    let d = |x: &Bitset| RowSet::Dense(x.clone());
    let c = |x: &CompressedBitmap| RowSet::Compressed(x.clone());
    vec![
        ("dense×dense".into(), d(a), d(b)),
        ("dense×comp".into(), d(a), c(cb)),
        ("comp×dense".into(), c(ca), d(b)),
        ("comp×comp".into(), c(ca), c(cb)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every counting kernel agrees with the scalar dense baseline across
    /// all four representation pairings.
    #[test]
    fn counting_kernels_agree(
        which in 0usize..3,
        raw_a in prop::collection::vec(0u64..u64::MAX, 0..600),
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..600),
    ) {
        let len = LENS[which];
        let (a, ca) = build(len, &raw_a);
        let (b, cb) = build(len, &raw_b);
        prop_assert_eq!(ca.count_ones(), a.count_ones());
        let inter = scalar::intersection_count(&a, &b);
        let union = scalar::union_count(&a, &b);
        let diff = scalar::difference_count(&a, &b);
        for (name, ra, rb) in pairings(&a, &ca, &b, &cb) {
            prop_assert_eq!(ra.intersection_count(&rb), inter, "inter {}", &name);
            prop_assert_eq!(ra.union_count(&rb), union, "union {}", &name);
            prop_assert_eq!(ra.difference_count(&rb), diff, "diff {}", &name);
            prop_assert_eq!(ra.intersection_union_count(&rb), (inter, union),
                "fused {}", &name);
            prop_assert_eq!(ra.is_subset_of(&rb), a.is_subset_of(&b), "subset {}", &name);
        }
    }

    /// Materialising kernels (`and`, `intersect_into`) and the iterators
    /// produce the same sets as dense intersection.
    #[test]
    fn materialising_kernels_agree(
        which in 0usize..3,
        raw_a in prop::collection::vec(0u64..u64::MAX, 0..600),
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..600),
    ) {
        let len = LENS[which];
        let (a, ca) = build(len, &raw_a);
        let (b, cb) = build(len, &raw_b);
        let mut want = a.clone();
        let want_n = want.intersect_with_count(&b);
        let want_ones: Vec<usize> = want.iter_ones().collect();
        for (name, ra, rb) in pairings(&a, &ca, &b, &cb) {
            let anded = ra.and(&rb);
            prop_assert_eq!(anded.count_ones(), want_n, "and count {}", &name);
            prop_assert_eq!(anded.iter_ones().collect::<Vec<_>>(), want_ones.clone(),
                "and ones {}", &name);
            let mut out = RowSet::new_scratch(len);
            prop_assert_eq!(ra.intersect_into(&rb, &mut out), want_n,
                "intersect_into count {}", &name);
            prop_assert_eq!(out.to_bitset(), want.clone(), "intersect_into set {}", &name);
        }
        // Round trips and membership.
        prop_assert_eq!(ca.to_bitset(), a.clone());
        prop_assert_eq!(ca.iter_ones().collect::<Vec<_>>(),
            a.iter_ones().collect::<Vec<_>>());
        for &i in want_ones.iter().take(32) {
            prop_assert!(ca.contains(i));
            prop_assert!(cb.contains(i));
        }
    }

    /// Densities straddling the 4096-set-bit array↔bitmap container
    /// boundary keep every pairing bit-identical: `base` pushes chunk 0's
    /// cardinality right around `ARRAY_MAX` after dedup with the noise.
    #[test]
    fn container_boundary_densities_agree(
        extra in 0usize..64,
        raw_b in prop::collection::vec(0u64..u64::MAX, 0..600),
    ) {
        let len = 3 * (1 << 16);
        let count = ARRAY_MAX - 32 + extra; // spans the flip at 4096
        let idx: Vec<usize> = (0..count).collect();
        let a = Bitset::from_indices(len, idx.iter().copied());
        let ca = CompressedBitmap::from_bitset(&a);
        let (b, cb) = build(len, &raw_b);
        let inter = scalar::intersection_count(&a, &b);
        let union = scalar::union_count(&a, &b);
        for (name, ra, rb) in pairings(&a, &ca, &b, &cb) {
            prop_assert_eq!(ra.intersection_count(&rb), inter, "inter {}", &name);
            prop_assert_eq!(ra.intersection_union_count(&rb), (inter, union),
                "fused {}", &name);
        }
    }
}

/// Chunk 0 at exactly `ARRAY_MAX` stays an array container; one more bit
/// flips it to a bitmap. Both sides of the flip intersect identically.
#[test]
fn container_flip_is_lossless() {
    let len = 1 << 16;
    for count in [ARRAY_MAX, ARRAY_MAX + 1] {
        let a = Bitset::from_indices(len, (0..count).map(|i| i * 2));
        let ca = CompressedBitmap::from_bitset(&a);
        let summary = ca.container_summary();
        assert_eq!(summary.len(), 1);
        let (_, is_bitmap, card) = summary[0];
        assert_eq!(card, count);
        assert_eq!(is_bitmap, count > ARRAY_MAX, "container at {count}");
        assert_eq!(ca.to_bitset(), a);
        let b = Bitset::from_indices(len, (0..len).step_by(3));
        let cb = CompressedBitmap::from_bitset(&b);
        assert_eq!(
            ca.intersection_count(&cb),
            scalar::intersection_count(&a, &b)
        );
        assert_eq!(
            ca.intersection_count_dense(&b),
            scalar::intersection_count(&a, &b)
        );
    }
}

/// A mid-size seeded transaction database (no RNG dependency).
fn synthetic_db(n_rows: usize, n_attrs: usize, arity: u32) -> TransactionSet {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut rows = Vec::with_capacity(n_rows);
    let mut labels = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let row: Vec<Item> = (0..n_attrs)
            .map(|a| Item(a as u32 * arity + (next() % arity as u64) as u32))
            .collect();
        rows.push(row);
        labels.push(ClassId((next() % 2) as u32));
    }
    TransactionSet::new(n_attrs * arity as usize, 2, rows, labels)
}

/// Eclat emits the identical pattern stream — same order, same supports —
/// under all three `DFP_BITSET` modes.
#[test]
fn eclat_identical_across_modes() {
    let _guard = MODE_LOCK.lock().unwrap();
    let ts = synthetic_db(4000, 10, 4);
    let min_sup = ts.len() / 5;
    let mut results = Vec::new();
    for mode in [BitsetMode::Dense, BitsetMode::Compressed, BitsetMode::Auto] {
        set_mode_override(Some(mode));
        results.push(eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap());
    }
    set_mode_override(None);
    assert!(!results[0].is_empty(), "degenerate test: nothing mined");
    assert_eq!(results[0], results[1], "dense vs compressed");
    assert_eq!(results[0], results[2], "dense vs auto");
}

/// Class-support attachment (batched scan) is mode-invariant too.
#[test]
fn class_supports_identical_across_modes() {
    let _guard = MODE_LOCK.lock().unwrap();
    let ts = synthetic_db(3000, 8, 3);
    let min_sup = ts.len() / 4;
    set_mode_override(Some(BitsetMode::Dense));
    let raw = eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap();
    let mut attached = Vec::new();
    for mode in [BitsetMode::Dense, BitsetMode::Compressed, BitsetMode::Auto] {
        set_mode_override(Some(mode));
        attached.push(dfpc::mining::count::attach_class_supports(&ts, &raw));
    }
    set_mode_override(None);
    assert_eq!(attached[0], attached[1], "dense vs compressed");
    assert_eq!(attached[0], attached[2], "dense vs auto");
}
