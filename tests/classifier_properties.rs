//! Property tests for the classifiers: training-set behaviour on separable
//! data, prediction totality, and SVM optimiser sanity.

use dfpc::classify::knn::Knn;
use dfpc::classify::naive_bayes::BernoulliNb;
use dfpc::classify::svm::{Kernel, KernelSvm, KernelSvmParams, LinearSvm, LinearSvmParams};
use dfpc::classify::tree::{C45Params, C45};
use dfpc::classify::Classifier;
use dfpc::data::features::SparseBinaryMatrix;
use dfpc::data::schema::ClassId;
use proptest::prelude::*;

/// Separable-by-marker matrix: class c's rows always contain marker feature
/// c and random noise features above the markers.
fn separable(n_classes: usize) -> impl Strategy<Value = SparseBinaryMatrix> {
    let noise_features = 4u32;
    prop::collection::vec(
        (
            0..n_classes as u32,
            prop::collection::btree_set(0..noise_features, 0..=3),
        ),
        (n_classes * 4)..=40,
    )
    .prop_map(move |rows| {
        let n_features = n_classes + noise_features as usize;
        let (data, labels): (Vec<Vec<u32>>, Vec<ClassId>) = rows
            .into_iter()
            .map(|(c, noise)| {
                let mut row = vec![c];
                row.extend(noise.into_iter().map(|f| n_classes as u32 + f));
                row.sort_unstable();
                (row, ClassId(c))
            })
            .unzip();
        SparseBinaryMatrix::new(n_features, data, labels, n_classes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_models_fit_separable_data(m in separable(3)) {
        // every class must be present for one-vs-rest training to be sane
        let counts = m.class_counts();
        prop_assume!(counts.iter().all(|&c| c >= 2));

        let svm = LinearSvm::fit(&m, &LinearSvmParams::default());
        prop_assert!(svm.accuracy(&m) > 0.95, "linear svm {}", svm.accuracy(&m));

        let tree = C45::fit(&m, &C45Params::default());
        prop_assert!(tree.accuracy(&m) > 0.9, "c45 {}", tree.accuracy(&m));

        let nb = BernoulliNb::fit(&m);
        prop_assert!(nb.accuracy(&m) > 0.9, "nb {}", nb.accuracy(&m));

        let knn = Knn::fit(&m, 1);
        prop_assert_eq!(knn.accuracy(&m), 1.0);

        let rbf = KernelSvm::fit(&m, &KernelSvmParams::rbf(10.0, 0.5));
        prop_assert!(rbf.accuracy(&m) > 0.9, "rbf {}", rbf.accuracy(&m));
    }

    /// Predictions are total and in range for arbitrary rows.
    #[test]
    fn predictions_total(m in separable(2), probe in prop::collection::btree_set(0u32..6, 0..=6)) {
        let counts = m.class_counts();
        prop_assume!(counts.iter().all(|&c| c >= 2));
        let row: Vec<u32> = probe.into_iter().collect();
        for pred in [
            LinearSvm::fit(&m, &LinearSvmParams::default()).predict(&row),
            C45::fit(&m, &C45Params::default()).predict(&row),
            BernoulliNb::fit(&m).predict(&row),
            Knn::fit(&m, 3).predict(&row),
            KernelSvm::fit(&m, &KernelSvmParams { kernel: Kernel::Linear, ..KernelSvmParams::default() }).predict(&row),
        ] {
            prop_assert!(pred.index() < m.n_classes);
        }
    }

    /// Label permutation invariance of accuracy for 1-NN (sanity of the
    /// evaluation plumbing): renaming classes renames predictions.
    #[test]
    fn knn_label_permutation(m in separable(2)) {
        let counts = m.class_counts();
        prop_assume!(counts.iter().all(|&c| c >= 2));
        let swapped = SparseBinaryMatrix::new(
            m.n_features,
            m.rows.clone(),
            m.labels.iter().map(|l| ClassId(1 - l.0)).collect(),
            2,
        );
        let a = Knn::fit(&m, 1);
        let b = Knn::fit(&swapped, 1);
        for row in &m.rows {
            prop_assert_eq!(a.predict(row).0, 1 - b.predict(row).0);
        }
    }
}
