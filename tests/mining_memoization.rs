//! A second fit on an identical dataset must be answered from the mining
//! memoization cache — and memoization must be invisible in the model.

use dfpc::core::{FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::mining::memo;
use dfpc::obs::metrics::dfp::{cache_mining_hits, cache_mining_misses};
use std::sync::{Mutex, MutexGuard};

/// The memo cache and its counters are process-global; tests in this file
/// serialise on this lock so deltas are attributable.
static MEMO_LOCK: Mutex<()> = Mutex::new(());

fn lock_memo() -> MutexGuard<'static, ()> {
    let guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    memo::set_enabled(Some(true));
    memo::clear();
    guard
}

fn small_dataset() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..40u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// The ISSUE acceptance check: fit, fit again on the same data, and the
/// second fit is served from the cache (hit counter moves, miss counter
/// does not move a second time for the same mine call).
#[test]
fn second_fit_on_identical_data_hits_the_mining_cache() {
    let _guard = lock_memo();
    let data = small_dataset();
    let cfg = FrameworkConfig::pat_fs();

    let hits_before = cache_mining_hits().get();
    let misses_before = cache_mining_misses().get();

    let first = PatternClassifier::fit(&data, &cfg).expect("first fit");
    let misses_after_first = cache_mining_misses().get();
    assert!(
        misses_after_first > misses_before,
        "first fit on an empty cache must miss"
    );
    assert_eq!(
        cache_mining_hits().get(),
        hits_before,
        "first fit on an empty cache must not hit"
    );

    let second = PatternClassifier::fit(&data, &cfg).expect("second fit");
    assert!(
        cache_mining_hits().get() > hits_before,
        "second fit on identical data must be answered from the cache"
    );
    assert_eq!(
        cache_mining_misses().get(),
        misses_after_first,
        "second fit must not re-run the miner"
    );

    // Memoization is invisible: same fingerprint, same predictions.
    assert_eq!(first.dataset_fingerprint(), second.dataset_fingerprint());
    let rows: Vec<Vec<u32>> = (0..6).map(|i| vec![1, 1 + (i % 2), i % 3]).collect();
    assert_eq!(first.predict_rows(&rows), second.predict_rows(&rows));
}

/// Disabling the cache really disables it: two fits, zero hits.
#[test]
fn disabled_cache_never_hits() {
    let _guard = lock_memo();
    memo::set_enabled(Some(false));
    let data = small_dataset();
    let cfg = FrameworkConfig::pat_fs();

    let hits_before = cache_mining_hits().get();
    let first = PatternClassifier::fit(&data, &cfg).expect("first fit");
    let second = PatternClassifier::fit(&data, &cfg).expect("second fit");
    assert_eq!(
        cache_mining_hits().get(),
        hits_before,
        "disabled cache must never hit"
    );
    let rows: Vec<Vec<u32>> = (0..6).map(|i| vec![1, 1 + (i % 2), i % 3]).collect();
    assert_eq!(first.predict_rows(&rows), second.predict_rows(&rows));
    memo::set_enabled(Some(true));
}

/// Switching the mining backend on identical data must never be answered
/// from another miner's cache entry: the `MinerKind` is part of the memo
/// key, so a backend switch is a miss, not a (stale) hit.
#[test]
fn backend_switch_on_identical_data_misses_the_cache() {
    let _guard = lock_memo();
    let data = small_dataset();
    use dfpc::core::MinerKind;

    let closed_cfg = FrameworkConfig::pat_fs().with_miner(MinerKind::Closed);
    let nodeset_cfg = FrameworkConfig::pat_fs().with_miner(MinerKind::Nodeset);

    let _warm = PatternClassifier::fit(&data, &closed_cfg).expect("closed fit");
    let hits_after_closed = cache_mining_hits().get();
    let misses_after_closed = cache_mining_misses().get();

    let _switched = PatternClassifier::fit(&data, &nodeset_cfg).expect("nodeset fit");
    assert_eq!(
        cache_mining_hits().get(),
        hits_after_closed,
        "a different backend must not reuse the closed miner's entry"
    );
    assert!(
        cache_mining_misses().get() > misses_after_closed,
        "the nodeset fit must mine (and populate its own entry)"
    );

    // Same backend again: now it is a hit, proving the switch above missed
    // because of the miner tag and not some other key component.
    let misses_after_nodeset = cache_mining_misses().get();
    let _again = PatternClassifier::fit(&data, &nodeset_cfg).expect("nodeset refit");
    assert!(
        cache_mining_hits().get() > hits_after_closed,
        "identical backend + data must hit"
    );
    assert_eq!(
        cache_mining_misses().get(),
        misses_after_nodeset,
        "the repeat nodeset fit must not re-mine"
    );
}

/// Different data means different fingerprints — a changed label flips the
/// cache key, so the cache cannot serve stale patterns.
#[test]
fn changed_data_changes_the_fingerprint() {
    let _guard = lock_memo();
    let a = small_dataset();
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..40u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], if i == 39 { 0 } else { 1 })
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    let b = categorical_dataset(&[3, 3, 3], 2, &borrowed);

    let cfg = FrameworkConfig::pat_fs();
    let fit_a = PatternClassifier::fit(&a, &cfg).expect("fit a");
    let hits_after_a = cache_mining_hits().get();
    let fit_b = PatternClassifier::fit(&b, &cfg).expect("fit b");
    assert_ne!(fit_a.dataset_fingerprint(), fit_b.dataset_fingerprint());
    assert_eq!(
        cache_mining_hits().get(),
        hits_after_a,
        "different data must not hit the cache"
    );
}
