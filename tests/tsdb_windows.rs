//! Windowed math in the in-process TSDB, checked three ways:
//!
//! 1. **Quantile correctness (proptest)** — for random observation sets,
//!    the windowed p50/p90/p99 computed from the difference of ring
//!    snapshots must equal a direct [`dfp_obs::tsdb::bucket_quantile`]
//!    recompute over the exact cumulative buckets, and the windowed
//!    count/sum must match the raw observations exactly.
//! 2. **Burn-rate golden fixtures** — hand-computed error ratios at window
//!    boundaries must produce exactly the burn rates (and firing
//!    transitions) the SLO engine reports.
//! 3. **Ring regressions** — wraparound, retention eviction, counter-reset
//!    handling, and the clamped-window semantics around the oldest retained
//!    point.

use dfp_obs::metrics::Registry;
use dfp_obs::slo::{BurnRule, SloEngine, SloSpec};
use dfp_obs::tsdb::{bucket_quantile, counter_delta, Tsdb, TsdbConfig};
use proptest::prelude::*;
use std::time::Duration;

fn tsdb(interval_ms: u64, retain_ms: u64) -> Tsdb {
    Tsdb::new(
        &TsdbConfig::default()
            .with_interval(Duration::from_millis(interval_ms))
            .with_retain(Duration::from_millis(retain_ms)),
    )
}

const BOUNDS: [f64; 5] = [0.0001, 0.001, 0.01, 0.1, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Windowed quantiles == a direct recompute over the same cumulative
    /// buckets, for any observation set.
    #[test]
    fn windowed_quantiles_match_exact_recompute(
        nanos in prop::collection::vec(1u64..=2_000_000_000, 1..120),
    ) {
        let r = Registry::new();
        let h = r.histogram("tw_lat_seconds", "t", &BOUNDS);
        let store = tsdb(1000, 3_600_000);
        // Empty baseline tick: windowed increases only see observations
        // recorded after the first sample point.
        store.ingest(1_000, r.snapshot());
        for &n in &nanos {
            h.observe_nanos(n);
        }
        store.ingest(2_000, r.snapshot());

        let q = store
            .window_quantiles("tw_lat_seconds", "", 60_000, 2_000)
            .expect("two points retained");
        prop_assert_eq!(q.count, nanos.len() as u64);
        prop_assert_eq!(q.sum_nanos, nanos.iter().sum::<u64>());

        // Exact recompute straight from the live snapshot (the window's
        // base is the all-zero baseline, so the difference IS the
        // snapshot).
        let snap = h.snapshot();
        for (want, got) in [
            (bucket_quantile(&snap.bounds, &snap.cumulative, 0.50), q.p50),
            (bucket_quantile(&snap.bounds, &snap.cumulative, 0.90), q.p90),
            (bucket_quantile(&snap.bounds, &snap.cumulative, 0.99), q.p99),
            (bucket_quantile(&snap.bounds, &snap.cumulative, 0.999), q.p999),
        ] {
            prop_assert!(
                (want - got).abs() <= 1e-12 * want.abs().max(1.0),
                "want {want}, got {got}"
            );
        }
    }

    /// Quantiles are monotone in q and bounded by the largest finite bound.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        nanos in prop::collection::vec(1u64..=3_000_000_000, 1..80),
        qs in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let r = Registry::new();
        let h = r.histogram("twm_lat_seconds", "t", &BOUNDS);
        for &n in &nanos {
            h.observe_nanos(n);
        }
        let snap = h.snapshot();
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let values: Vec<f64> = qs
            .iter()
            .map(|&q| bucket_quantile(&snap.bounds, &snap.cumulative, q))
            .collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {values:?}");
        }
        for v in &values {
            prop_assert!(*v <= BOUNDS[BOUNDS.len() - 1] + 1e-12);
        }
    }
}

/// Hand-computed burn rates at exact window boundaries.
///
/// Objective 0.9 → error budget 0.1. A tick with 50 errors out of 100
/// requests is a ratio of 0.5 → burn 5.0 on both the 1 s and 2 s windows
/// (the long window clamps to the oldest retained point). Factor 4 →
/// firing. The next tick adds 100 clean requests → short-window burn 0 →
/// resolved.
#[test]
fn burn_rate_golden_fixture_fires_and_resolves() {
    let r = Registry::new();
    let total = r.counter("twg_requests_total", "t");
    let errors = r.counter("twg_errors_total", "t");
    let store = tsdb(1000, 3_600_000);

    let spec =
        SloSpec::new("golden", 0.9, "twg_requests_total", "twg_errors_total").with_rules(vec![
            BurnRule {
                severity: "page".to_string(),
                short_ms: 1_000,
                long_ms: 2_000,
                factor: 4.0,
            },
        ]);
    let engine = SloEngine::new(vec![spec], &r);

    store.ingest(1_000, r.snapshot());
    total.add(100);
    errors.add(50);
    store.ingest(2_000, r.snapshot());
    engine.evaluate(&store, 2_000);

    let alerts = engine.alerts();
    assert_eq!(alerts.len(), 1);
    let a = &alerts[0];
    assert!(a.firing, "burn 5.0 > factor 4.0 must fire");
    assert!(
        (a.burn_short - 5.0).abs() < 1e-9,
        "short burn {}",
        a.burn_short
    );
    assert!(
        (a.burn_long - 5.0).abs() < 1e-9,
        "long burn {}",
        a.burn_long
    );
    assert_eq!(engine.firing_count(), 1);

    // Recovery: clean traffic only. The 1 s short window sees 100 new
    // requests and 0 new errors → burn 0 → both-windows rule stops firing.
    total.add(100);
    store.ingest(3_000, r.snapshot());
    engine.evaluate(&store, 3_000);
    let alerts = engine.alerts();
    assert!(
        !alerts[0].firing,
        "clean short window must resolve the alert"
    );
    assert!(alerts[0].burn_short.abs() < 1e-9);
    assert_eq!(engine.firing_count(), 0);
}

/// A burn exactly at the factor does not fire (strictly-greater contract),
/// and one infinitesimally above does.
#[test]
fn burn_rate_threshold_is_strictly_greater() {
    let r = Registry::new();
    let total = r.counter("twt_requests_total", "t");
    let errors = r.counter("twt_errors_total", "t");
    let store = tsdb(1000, 3_600_000);
    // budget 0.5, factor 1.0: ratio 0.5 → burn exactly 1.0.
    let spec =
        SloSpec::new("edge", 0.5, "twt_requests_total", "twt_errors_total").with_rules(vec![
            BurnRule {
                severity: "page".to_string(),
                short_ms: 1_000,
                long_ms: 2_000,
                factor: 1.0,
            },
        ]);
    let engine = SloEngine::new(vec![spec], &r);
    store.ingest(1_000, r.snapshot());
    total.add(100);
    errors.add(50);
    store.ingest(2_000, r.snapshot());
    engine.evaluate(&store, 2_000);
    assert_eq!(engine.firing_count(), 0, "burn == factor must not fire");

    // 25 more requests, all failing: the short window's ratio is 25/25 =
    // 1.0 → burn 2.0 > factor 1.0.
    total.add(25);
    errors.add(25);
    store.ingest(3_000, r.snapshot());
    engine.evaluate(&store, 3_000);
    assert_eq!(engine.firing_count(), 1, "burn 2.0 > 1.0 must fire");
}

/// The per-series ring wraps: capacity = retain/interval + 1, older points
/// fall off, and windows clamp to the oldest retained point.
#[test]
fn ring_wraparound_evicts_and_clamps() {
    let r = Registry::new();
    let c = r.counter("twr_ticks_total", "t");
    // retain 1 s @ 100 ms → capacity 11.
    let store = tsdb(100, 1_000);
    for i in 1..=50u64 {
        c.add(10);
        store.ingest(i * 100, r.snapshot());
    }
    let len = store
        .series_len("twr_ticks_total", "")
        .expect("series exists");
    assert!(len <= 11, "ring must be bounded by capacity, got {len}");

    // The full-retention window clamps to the oldest retained point: 10
    // increments of 10 between the oldest (t=4000, value 400) and newest
    // (t=5000, value 500) retained points.
    let (increase, span_ms) = store
        .counter_increase("twr_ticks_total", "", 3_600_000, 5_000)
        .expect("window answerable");
    assert_eq!(increase, 100);
    assert!(
        span_ms <= 1_000,
        "span must sit inside retention, got {span_ms}"
    );
}

/// Retention eviction is by timestamp, not only by count.
#[test]
fn old_points_evicted_by_retention_horizon() {
    let r = Registry::new();
    let g = r.gauge("twe_level", "t");
    let store = tsdb(100, 1_000);
    g.set(1);
    store.ingest(1_000, r.snapshot());
    g.set(2);
    // A big time jump: the first point is now far past the horizon.
    store.ingest(100_000, r.snapshot());
    assert_eq!(store.series_len("twe_level", ""), Some(1));
    assert_eq!(store.gauge_last("twe_level", ""), Some(2.0));
}

/// Counter resets answer the post-reset value, not a negative delta.
#[test]
fn counter_reset_yields_post_reset_increase() {
    assert_eq!(counter_delta(10, 3), 7);
    assert_eq!(
        counter_delta(3, 10),
        3,
        "reset: increase is the later value"
    );
    assert_eq!(counter_delta(0, 0), 0);
}

/// A single retained point answers `None` — never a fabricated rate.
#[test]
fn single_point_window_is_unanswerable() {
    let r = Registry::new();
    let c = r.counter("tws_one_total", "t");
    let store = tsdb(1000, 3_600_000);
    c.add(5);
    store.ingest(1_000, r.snapshot());
    assert!(store
        .counter_increase("tws_one_total", "", 60_000, 1_000)
        .is_none());
    assert!(store
        .window_quantiles("tws_one_total", "", 60_000, 1_000)
        .is_none());
}
