//! The observability layer's two contracts:
//!
//! 1. **Inertness** — enabling span tracing (and the whole temporal stack:
//!    TSDB collector thread plus tail sampler) never changes a result.
//!    Mined feature sets, MMRFS selections (bit-equal relevance scores),
//!    and CV accuracies must be identical with observability on vs off, at
//!    1 and 4 threads (proptest-enforced).
//! 2. **Well-formedness** — a traced pipeline run emits JSONL where every
//!    line parses, spans carry monotone intervals, parents exist on the
//!    same thread and contain their children, and the global `/metrics`
//!    rendering passes the Prometheus conformance checker.

use dfpc::core::{cross_validate_framework, FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::mining::{mine_features, MiningConfig};
use dfpc::obs::TraceSession;
use dfpc::select::{mmrfs, MmrfsConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Tracing enablement and `DFP_THREADS` are process-global; every test here
/// serialises through this lock (recovered if a holder panicked).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock_env() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with `DFP_THREADS=n`, restoring the previous value after.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("DFP_THREADS").ok();
    std::env::set_var("DFP_THREADS", n.to_string());
    let r = f();
    match saved {
        Some(v) => std::env::set_var("DFP_THREADS", v),
        None => std::env::remove_var("DFP_THREADS"),
    }
    r
}

/// Runs `f` with span tracing exporting to a throwaway file, then disables
/// tracing again (session drop) and removes the file.
fn with_tracing<R>(tag: &str, f: impl FnOnce() -> R) -> R {
    let path = temp_path(tag);
    let session = TraceSession::begin(&path).expect("trace file opens");
    assert!(dfpc::obs::tracing_enabled());
    let r = f();
    drop(session);
    assert!(!dfpc::obs::tracing_enabled());
    std::fs::remove_file(&path).ok();
    r
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dfp-obs-test-{tag}-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn random_labelled_db() -> impl Strategy<Value = TransactionSet> {
    let n_items = 8usize;
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..n_items as u32, 1..=5),
            0u32..3,
        ),
        6..=40,
    )
    .prop_map(move |rows| {
        let (transactions, labels): (Vec<Vec<Item>>, Vec<ClassId>) = rows
            .into_iter()
            .map(|(set, l)| (set.into_iter().map(Item).collect::<Vec<_>>(), ClassId(l)))
            .unzip();
        TransactionSet::new(n_items, 3, transactions, labels)
    })
}

/// The (a0, a1) pair marks the class; singles are weak. Enough structure
/// for mining + selection + CV to all have real work.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mining and MMRFS results are bit-identical with tracing on vs off,
    /// sequential and parallel.
    #[test]
    fn tracing_is_inert_for_mining_and_selection(ts in random_labelled_db()) {
        let _guard = lock_env();
        let mine_cfg = MiningConfig::with_min_sup(0.2);
        let sel_cfg = MmrfsConfig::default();
        for threads in [1usize, 4] {
            let off = with_threads(threads, || {
                let feats = mine_features(&ts, &mine_cfg).unwrap();
                let sel = mmrfs(&ts, &feats, &sel_cfg);
                (feats, sel)
            });
            let on = with_tracing("inert-mine", || {
                with_threads(threads, || {
                    let feats = mine_features(&ts, &mine_cfg).unwrap();
                    let sel = mmrfs(&ts, &feats, &sel_cfg);
                    (feats, sel)
                })
            });
            prop_assert_eq!(&off.0, &on.0, "mined features differ at {} threads", threads);
            prop_assert_eq!(&off.1.selected, &on.1.selected);
            prop_assert_eq!(off.1.fully_covered, on.1.fully_covered);
            let off_bits: Vec<u64> = off.1.relevance.iter().map(|x| x.to_bits()).collect();
            let on_bits: Vec<u64> = on.1.relevance.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(off_bits, on_bits);
        }
    }
}

/// Runs `f` with the whole temporal stack live — a fast-ticking TSDB
/// collector sampling the global registry, and an enabled tail sampler
/// whose capture lifecycle runs around `f` — then tears it all down.
fn with_temporal_stack<R>(f: impl FnOnce() -> R) -> R {
    let tsdb = std::sync::Arc::new(dfpc::obs::Tsdb::new(
        &dfpc::obs::TsdbConfig::default()
            .with_interval(std::time::Duration::from_millis(5))
            .with_retain(std::time::Duration::from_secs(60)),
    ));
    let sources: Vec<dfpc::obs::tsdb::Source> =
        vec![Box::new(|| dfpc::obs::metrics::global().snapshot())];
    let collector =
        dfpc::obs::tsdb::Collector::start(std::sync::Arc::clone(&tsdb), sources, vec![])
            .expect("collector starts");
    let sampler = dfpc::obs::TailSampler::new(8);
    sampler.set_slow_threshold_ns(1); // keep everything: maximum pressure
    let mut capture = sampler.begin().expect("enabled sampler hands out captures");
    let started = std::time::Instant::now();
    let r = f();
    capture.mark_since("work", started);
    sampler.finish(capture, "inert-test", "TEST", "/inert", 200, 0);
    assert_eq!(sampler.traces().len(), 1, "slow-keep must retain the run");
    drop(collector);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full temporal stack (collector thread + tail sampler + span
    /// tracing) is inert: mining and MMRFS results are bit-identical with
    /// the stack running vs absent, sequential and parallel.
    #[test]
    fn temporal_stack_is_inert_for_mining_and_selection(ts in random_labelled_db()) {
        let _guard = lock_env();
        let mine_cfg = MiningConfig::with_min_sup(0.2);
        let sel_cfg = MmrfsConfig::default();
        for threads in [1usize, 4] {
            let off = with_threads(threads, || {
                let feats = mine_features(&ts, &mine_cfg).unwrap();
                let sel = mmrfs(&ts, &feats, &sel_cfg);
                (feats, sel)
            });
            let on = with_temporal_stack(|| {
                with_tracing("inert-tsdb", || {
                    with_threads(threads, || {
                        let feats = mine_features(&ts, &mine_cfg).unwrap();
                        let sel = mmrfs(&ts, &feats, &sel_cfg);
                        (feats, sel)
                    })
                })
            });
            prop_assert_eq!(&off.0, &on.0, "mined features differ at {} threads", threads);
            prop_assert_eq!(&off.1.selected, &on.1.selected);
            prop_assert_eq!(off.1.fully_covered, on.1.fully_covered);
            let off_bits: Vec<u64> = off.1.relevance.iter().map(|x| x.to_bits()).collect();
            let on_bits: Vec<u64> = on.1.relevance.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(off_bits, on_bits);
        }
    }
}

/// Framework CV accuracies are bit-identical with tracing on vs off at 1
/// and 4 threads.
#[test]
fn tracing_is_inert_for_cross_validation() {
    let _guard = lock_env();
    let data = confusable();
    let cfg = FrameworkConfig::pat_fs();
    for threads in [1usize, 4] {
        let off = with_threads(threads, || {
            cross_validate_framework(&data, &cfg, 5, 9).unwrap()
        });
        let on = with_tracing("inert-cv", || {
            with_threads(threads, || {
                cross_validate_framework(&data, &cfg, 5, 9).unwrap()
            })
        });
        let off_bits: Vec<u64> = off.fold_accuracies.iter().map(|x| x.to_bits()).collect();
        let on_bits: Vec<u64> = on.fold_accuracies.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            off_bits, on_bits,
            "CV accuracies differ at {threads} threads"
        );
    }
}

/// A traced fit+predict emits JSONL where every line parses, intervals are
/// monotone, parents exist on the same thread and contain their children,
/// and the expected pipeline spans are present.
#[test]
fn trace_export_round_trips_and_nests() {
    let _guard = lock_env();
    let path = temp_path("roundtrip");
    let session = TraceSession::begin(&path).expect("trace file opens");
    let data = confusable();
    let model = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    let predicted = model.predict(&data).expect("predict");
    assert_eq!(predicted.len(), data.len());
    let written = session.flush().expect("flush");
    assert!(written > 0, "traced run wrote no spans");
    drop(session); // disables tracing, final flush

    struct Span {
        name: String,
        parent: i128,
        tid: i128,
        start: i128,
        end: i128,
    }
    let text = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();
    let mut spans: HashMap<i128, Span> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let v = dfpc::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: bad JSON ({e:?}): {line}", i + 1));
        let name = v.get("name").and_then(|n| n.as_str()).expect("name");
        assert!(!name.is_empty());
        let id = v.get("id").and_then(|n| n.as_int()).expect("id");
        let parent = v.get("parent").and_then(|n| n.as_int()).expect("parent");
        let tid = v.get("tid").and_then(|n| n.as_int()).expect("tid");
        let start = v.get("start_ns").and_then(|n| n.as_int()).expect("start");
        let end = v.get("end_ns").and_then(|n| n.as_int()).expect("end");
        assert!(id > 0 && end >= start, "line {}: bad interval", i + 1);
        let prev = spans.insert(
            id,
            Span {
                name: name.to_string(),
                parent,
                tid,
                start,
                end,
            },
        );
        assert!(prev.is_none(), "duplicate span id {id}");
    }
    for s in spans.values() {
        if s.parent != 0 {
            let p = spans
                .get(&s.parent)
                .unwrap_or_else(|| panic!("span '{}' orphaned (parent {})", s.name, s.parent));
            assert_eq!(p.tid, s.tid, "parent of '{}' on another thread", s.name);
            assert!(
                p.start <= s.start && s.end <= p.end,
                "span '{}' [{}, {}] escapes parent '{}' [{}, {}]",
                s.name,
                s.start,
                s.end,
                p.name,
                p.start,
                p.end
            );
        }
    }
    for expected in ["pipeline.fit", "mine.per_class", "select.mmrfs"] {
        assert!(
            spans.values().any(|s| s.name == expected),
            "span '{expected}' missing from trace"
        );
    }
}

/// The process-wide registry renders valid Prometheus text including the
/// mining, selection, and pipeline-stage families.
#[test]
fn global_metrics_pass_prometheus_conformance() {
    let _guard = lock_env();
    let data = confusable();
    let _ = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    dfpc::obs::metrics::dfp::touch();
    let text = dfpc::obs::metrics::global().render();
    let stats = dfpc::obs::promcheck::check(&text)
        .unwrap_or_else(|errs| panic!("conformance errors: {errs:?}\n{text}"));
    assert!(stats.families >= 10, "{stats:?}");
    for family in [
        "dfp_mine_patterns_emitted_total",
        "dfp_mine_nodes_explored_total",
        "dfp_select_candidates_scanned_total",
        "dfp_pipeline_stage_seconds",
        "dfp_pipeline_degraded",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "family {family} missing:\n{text}"
        );
    }
}
