//! Property tests for MMRFS (Algorithm 1) postconditions and the feature
//! transform, on random labelled databases.

use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::measures::RelevanceMeasure;
use dfpc::mining::{mine_features, MiningConfig};
use dfpc::select::{mmrfs, FeatureSpace, MmrfsConfig};
use proptest::prelude::*;

fn random_labelled_db() -> impl Strategy<Value = TransactionSet> {
    let n_items = 6usize;
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..n_items as u32, 1..=4),
            0u32..2,
        ),
        4..=16,
    )
    .prop_map(move |rows| {
        let (transactions, labels): (Vec<Vec<Item>>, Vec<ClassId>) = rows
            .into_iter()
            .map(|(set, l)| (set.into_iter().map(Item).collect::<Vec<_>>(), ClassId(l)))
            .unzip();
        TransactionSet::new(n_items, 2, transactions, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Selected indices are unique, valid and start with a max-relevance
    /// pattern; every selected pattern correctly covers something.
    #[test]
    fn mmrfs_postconditions(ts in random_labelled_db(), delta in 1u32..4) {
        let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap();
        let cfg = MmrfsConfig { coverage: delta, ..MmrfsConfig::default() };
        let result = mmrfs(&ts, &candidates, &cfg);

        // uniqueness + validity
        let mut seen = std::collections::HashSet::new();
        for &i in &result.selected {
            prop_assert!(i < candidates.len());
            prop_assert!(seen.insert(i), "duplicate selection {}", i);
        }

        if let Some(&first) = result.selected.first() {
            let max_rel = result
                .relevance
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(result.relevance[first] >= max_rel - 1e-12);
        }

        // every selected pattern correctly covers at least one instance
        for &i in &result.selected {
            let p = &candidates[i];
            let covers = (0..ts.len()).any(|t| {
                ts.label(t) == p.majority_class()
                    && dfpc::data::transactions::contains_sorted(ts.transaction(t), &p.items)
            });
            prop_assert!(covers, "selected pattern covers nothing correctly");
        }
    }

    /// Coverage saturation: when candidates can δ-cover everything, the
    /// run reports full coverage; and max_features is always respected.
    #[test]
    fn mmrfs_coverage_and_caps(ts in random_labelled_db(), cap in 1usize..5) {
        let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.1)).unwrap();
        let cfg = MmrfsConfig { max_features: Some(cap), ..MmrfsConfig::default() };
        let result = mmrfs(&ts, &candidates, &cfg);
        prop_assert!(result.selected.len() <= cap);
    }

    /// Transform correctness: pattern features fire exactly on transactions
    /// containing the pattern; single-item features mirror the transaction.
    #[test]
    fn transform_soundness(ts in random_labelled_db()) {
        let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap();
        let fs = FeatureSpace::new(ts.n_items(), ts.n_classes(), &candidates);
        let m = fs.transform(&ts);
        prop_assert_eq!(m.len(), ts.len());
        for (t, row) in m.rows.iter().enumerate() {
            let tx = ts.transaction(t);
            for f in 0..fs.n_features() as u32 {
                let active = row.binary_search(&f).is_ok();
                let expect = if (f as usize) < ts.n_items() {
                    tx.binary_search(&Item(f)).is_ok()
                } else {
                    let p = &fs.patterns[f as usize - ts.n_items()];
                    dfpc::data::transactions::contains_sorted(tx, p)
                };
                prop_assert_eq!(active, expect, "feature {} row {}", f, t);
            }
        }
    }

    /// Relevance measures agree on ordering extremes: a perfectly
    /// discriminative pattern never ranks below a constant one.
    #[test]
    fn relevance_ordering(ts in random_labelled_db()) {
        let counts = ts.class_counts();
        prop_assume!(counts.iter().all(|&c| c > 0));
        let perfect = dfpc::mining::MinedPattern {
            items: vec![Item(0)],
            support: counts[0] as u32,
            class_supports: vec![counts[0] as u32, 0],
        };
        let flat = dfpc::mining::MinedPattern {
            items: vec![Item(1)],
            support: ts.len() as u32,
            class_supports: counts.iter().map(|&c| c as u32).collect(),
        };
        for m in [RelevanceMeasure::InfoGain, RelevanceMeasure::FisherScore] {
            prop_assert!(m.score(&perfect, &counts) >= m.score(&flat, &counts));
        }
    }
}
