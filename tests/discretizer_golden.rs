//! Golden tests for the discretizers: hand-computed Fayyad–Irani MDL
//! fixtures (including a must-not-cut case) and boundary off-by-one
//! regressions for equal-width / equal-frequency binning.

use dfpc::data::discretize::{
    DiscretizationModel, Discretizer, EqualFrequency, EqualWidth, MdlDiscretizer,
};
use dfpc::data::schema::ClassId;

fn labeled(pairs: &[(f64, u32)]) -> Vec<(f64, ClassId)> {
    pairs.iter().map(|&(v, c)| (v, ClassId(c))).collect()
}

// ---------------------------------------------------------------------------
// Fayyad–Irani MDL, worked by hand.
// ---------------------------------------------------------------------------

/// Values 1..6, labels 000111: the only sensible cut is 3.5.
///
/// Worked numbers: Ent(S) = 1 bit; the 3/3 split leaves two pure halves,
/// so the information gain is exactly 1.0. MDLPC acceptance threshold is
/// (log2(N−1) + Δ)/N with Δ = log2(3^k − 2) − [k·Ent(S) − k1·Ent(S1)
/// − k2·Ent(S2)] = log2(7) − 2 ≈ 0.807, giving (log2(5) + 0.807)/6
/// ≈ 0.522. Gain 1.0 clears it; both halves are pure so recursion stops.
#[test]
fn mdl_clean_split_cuts_at_midpoint() {
    let values = labeled(&[(1.0, 0), (2.0, 0), (3.0, 0), (4.0, 1), (5.0, 1), (6.0, 1)]);
    let cuts = MdlDiscretizer::new().cut_points(&values, 2);
    assert_eq!(cuts, vec![3.5]);
}

/// Values 1,2,3,4 with alternating labels 0,1,0,1: every candidate cut
/// fails the MDL criterion, so the column must stay a single bin.
///
/// Best candidate is 1.5 (or symmetrically 3.5) with gain
/// 1 − (3/4)·H(1/3) ≈ 0.311, while the acceptance threshold is
/// (log2(3) + Δ)/4 with Δ = log2(7) − (2·1 − 2·H(1/3)) ≈ 2.644, i.e.
/// ≈ 1.057. No cut comes close.
#[test]
fn mdl_alternating_labels_refuses_to_cut() {
    let values = labeled(&[(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 1)]);
    let cuts = MdlDiscretizer::new().cut_points(&values, 2);
    assert!(cuts.is_empty(), "expected no cut, got {cuts:?}");
}

/// Tied values [1,1,1,2,2,2] with labels 000111: the only boundary
/// between distinct values is 1↔2, so the cut lands at 1.5 — never
/// inside a run of equal values. Same gain/threshold arithmetic as the
/// clean-split fixture (3/3 pure halves, N = 6).
#[test]
fn mdl_never_cuts_inside_a_tie_run() {
    let values = labeled(&[(1.0, 0), (1.0, 0), (1.0, 0), (2.0, 1), (2.0, 1), (2.0, 1)]);
    let cuts = MdlDiscretizer::new().cut_points(&values, 2);
    assert_eq!(cuts, vec![1.5]);
}

/// A pure column never splits regardless of how values spread.
#[test]
fn mdl_pure_column_single_bin() {
    let values = labeled(&[(1.0, 0), (5.0, 0), (9.0, 0), (13.0, 0)]);
    let cuts = MdlDiscretizer::new().cut_points(&values, 2);
    assert!(cuts.is_empty(), "expected no cut, got {cuts:?}");
}

// ---------------------------------------------------------------------------
// Unsupervised binning: exact boundaries and inclusive-left binning.
// ---------------------------------------------------------------------------

/// Equal-width on [0, 8] with 4 bins puts cuts at exactly 2, 4, 6 — and
/// `bin` treats a value equal to a cut as belonging to the *left* bin
/// (intervals are (prev, cut]), the classic off-by-one to regress.
#[test]
fn equal_width_boundaries_are_inclusive_left() {
    let values = labeled(&[(0.0, 0), (3.0, 0), (5.0, 0), (8.0, 0)]);
    let cuts = EqualWidth::new(4).cut_points(&values, 1);
    assert_eq!(cuts, vec![2.0, 4.0, 6.0]);

    let model = DiscretizationModel::from_cuts(vec![Some(cuts)]);
    assert_eq!(model.n_bins(0), Some(4));
    assert_eq!(model.bin(0, 0.0), 0);
    assert_eq!(model.bin(0, 2.0), 0, "cut value belongs to the left bin");
    assert_eq!(model.bin(0, 2.0001), 1);
    assert_eq!(model.bin(0, 4.0), 1, "cut value belongs to the left bin");
    assert_eq!(model.bin(0, 6.0), 2);
    assert_eq!(model.bin(0, 8.0), 3);
    // Out-of-range values clamp into the edge bins, never panic.
    assert_eq!(model.bin(0, -100.0), 0);
    assert_eq!(model.bin(0, 100.0), 3);
}

/// Equal-frequency quartiles over 1..=8 land midway between neighbours
/// (2.5, 4.5, 6.5), and each successive cut covers exactly one more
/// quarter of the data — the counting regression for the quantile index.
#[test]
fn equal_frequency_quartiles_count_exactly() {
    let data: Vec<f64> = (1..=8).map(|v| v as f64).collect();
    let values: Vec<(f64, ClassId)> = data.iter().map(|&v| (v, ClassId(0))).collect();
    let cuts = EqualFrequency::new(4).cut_points(&values, 1);
    assert_eq!(cuts, vec![2.5, 4.5, 6.5]);
    for (i, cut) in cuts.iter().enumerate() {
        let at_or_below = data.iter().filter(|&&v| v <= *cut).count();
        assert_eq!(at_or_below, 2 * (i + 1), "cut {cut} covers a ragged bin");
    }
}

/// Equal-frequency must not place a cut inside a run of equal values:
/// with half the mass on one value, the 4-quantile cut set degrades
/// gracefully instead of splitting the tie.
#[test]
fn equal_frequency_ties_never_split() {
    let values = labeled(&[
        (1.0, 0),
        (1.0, 0),
        (1.0, 0),
        (1.0, 0),
        (2.0, 0),
        (3.0, 0),
        (4.0, 0),
        (5.0, 0),
    ]);
    let cuts = EqualFrequency::new(4).cut_points(&values, 1);
    // Quartile indices 2, 4, 6 → boundaries 1|1 (tie, skipped), 1|2, 3|4.
    assert_eq!(cuts, vec![1.5, 3.5]);
}
