//! Cross-crate integration tests: the full pipeline on synthetic UCI
//! profiles, variant ordering on planted data, CSV round trips, and
//! baseline interoperability.

use dfpc::baselines::harmony::{HarmonyClassifier, HarmonyParams};
use dfpc::core::{cross_validate_framework, FrameworkConfig, PatternClassifier};
use dfpc::data::csv::{read_dataset, write_dataset};
use dfpc::data::split::stratified_holdout;
use dfpc::data::synth::{profile_by_name, AttrSpec, SynthConfig};
use dfpc::measures::MinSupStrategy;
use dfpc::mining::MiningConfig;

/// An XOR-structured dataset: on attributes (0, 1), class 0 expresses the
/// combinations (0,0)/(1,1) and class 1 expresses (0,1)/(1,0) — each single
/// feature is marginally 50/50 in both classes (zero information gain), but
/// the pairs are decisive. This is exactly the paper's §3.1.1 argument for
/// combined features.
fn pattern_heavy_dataset() -> dfpc::data::Dataset {
    let attrs = vec![
        AttrSpec {
            arity: 2,
            numeric: false
        };
        8
    ];
    let xor_plant = |class: u32, va: u32, vb: u32| dfpc::data::synth::PlantedPattern {
        class,
        attr_values: vec![(0, va), (1, vb)],
        expr_in: 0.7, // P(neither plant fires) = 0.09 → ~4.5% effective label noise
        expr_out: 0.0,
    };
    let planted = vec![
        xor_plant(0, 0, 0),
        xor_plant(0, 1, 1),
        xor_plant(1, 0, 1),
        xor_plant(1, 1, 0),
    ];
    SynthConfig {
        name: "xor".into(),
        n_instances: 400,
        class_priors: vec![0.5, 0.5],
        attrs,
        planted,
        value_concentration: 1.0,
        class_skew: 0.0, // single features carry no background signal
        missing_rate: 0.0,
        numeric_jitter: 0.0,
        seed: 99,
    }
    .generate()
}

#[test]
fn pat_fs_dominates_item_all_on_pattern_heavy_data() {
    let data = pattern_heavy_dataset();
    let item = cross_validate_framework(&data, &FrameworkConfig::item_all(), 5, 3).unwrap();
    let pat = cross_validate_framework(
        &data,
        &FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Relative(0.08)),
        5,
        3,
    )
    .unwrap();
    assert!(
        pat.mean() > item.mean() + 0.03,
        "Pat_FS {:.4} should clearly beat Item_All {:.4} on pattern-heavy data",
        pat.mean(),
        item.mean()
    );
}

#[test]
fn c45_variant_also_benefits_from_patterns() {
    let data = pattern_heavy_dataset();
    let item =
        cross_validate_framework(&data, &FrameworkConfig::item_all().with_c45(), 5, 3).unwrap();
    let pat = cross_validate_framework(
        &data,
        &FrameworkConfig::pat_fs()
            .with_min_sup(MinSupStrategy::Relative(0.08))
            .with_c45(),
        5,
        3,
    )
    .unwrap();
    assert!(
        pat.mean() >= item.mean() - 0.01,
        "Pat_FS/C4.5 {:.4} vs Item_All/C4.5 {:.4}",
        pat.mean(),
        item.mean()
    );
}

#[test]
fn all_five_paper_variants_run_on_profiles() {
    for name in ["labor", "zoo"] {
        let data = profile_by_name(name).unwrap().generate();
        let variants = [
            FrameworkConfig::item_all(),
            FrameworkConfig::item_fs(),
            FrameworkConfig::item_rbf(1.0, 0.3),
            FrameworkConfig::pat_all(),
            FrameworkConfig::pat_fs(),
        ];
        for (i, cfg) in variants.iter().enumerate() {
            let model = PatternClassifier::fit(&data, cfg)
                .unwrap_or_else(|e| panic!("{name} variant {i}: {e}"));
            let acc = model.accuracy(&data);
            assert!(acc > 0.3, "{name} variant {i} train accuracy {acc}");
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let data = profile_by_name("labor").unwrap().generate();
    let fold = stratified_holdout(&data.labels, 0.3, 5);
    let train = data.subset(&fold.train);
    let test = data.subset(&fold.test);
    let a = PatternClassifier::fit(&train, &FrameworkConfig::pat_fs()).unwrap();
    let b = PatternClassifier::fit(&train, &FrameworkConfig::pat_fs()).unwrap();
    assert_eq!(a.predict(&test).unwrap(), b.predict(&test).unwrap());
    assert_eq!(a.info().n_selected, b.info().n_selected);
}

#[test]
fn csv_roundtrip_preserves_pipeline_behaviour() {
    use dfpc::data::schema::AttributeKind;
    use dfpc::data::Value;
    let data = profile_by_name("labor").unwrap().generate();
    let mut buf = Vec::new();
    write_dataset(&data, &mut buf).unwrap();
    let reloaded = read_dataset(buf.as_slice()).unwrap();
    assert_eq!(reloaded.len(), data.len());
    // Class ids are rebuilt in first-appearance order; names must match.
    for (a, b) in data.labels.iter().zip(&reloaded.labels) {
        assert_eq!(
            data.schema.class_names[a.index()],
            reloaded.schema.class_names[b.index()]
        );
    }

    // Cell-level semantic equality. The CSV reader rebuilds categorical
    // dictionaries in first-appearance order (and drops levels absent from
    // the data), so indices may shift — compare value *names* and numbers.
    let name_of = |d: &dfpc::data::Dataset, a: usize, v: u32| -> String {
        match &d.schema.attributes[a].kind {
            AttributeKind::Categorical { values } => values[v as usize].clone(),
            AttributeKind::Numeric => unreachable!(),
        }
    };
    for (r, (row_a, row_b)) in data.rows.iter().zip(&reloaded.rows).enumerate() {
        for a in 0..data.schema.n_attributes() {
            match (&row_a[a], &row_b[a]) {
                (Value::Missing, Value::Missing) => {}
                (Value::Num(x), Value::Num(y)) => {
                    assert_eq!(x, y, "row {r} attr {a}: float not round-tripped")
                }
                (Value::Cat(x), Value::Cat(y)) => assert_eq!(
                    name_of(&data, a, *x),
                    name_of(&reloaded, a, *y),
                    "row {r} attr {a}"
                ),
                (orig, got) => panic!("row {r} attr {a}: {orig:?} became {got:?}"),
            }
        }
    }

    // And the pipeline behaves equivalently on semantically-equal data.
    let m1 = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let m2 = PatternClassifier::fit(&reloaded, &FrameworkConfig::pat_fs()).unwrap();
    assert_eq!(m1.info().n_patterns_mined, m2.info().n_patterns_mined);
    assert!((m1.accuracy(&data) - m2.accuracy(&reloaded)).abs() < 1e-9);
}

#[test]
fn min_sup_strategy_equivalence_in_pipeline() {
    // InfoGainThreshold resolves to an absolute support; running with that
    // absolute support explicitly must give the identical model structure.
    let data = profile_by_name("labor").unwrap().generate();
    let cfg_ig = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::InfoGainThreshold(0.1));
    let m_ig = PatternClassifier::fit(&data, &cfg_ig).unwrap();
    let resolved = m_ig.info().min_sup_abs.unwrap();
    let cfg_abs = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Absolute(resolved));
    let m_abs = PatternClassifier::fit(&data, &cfg_abs).unwrap();
    assert_eq!(m_ig.info().n_patterns_mined, m_abs.info().n_patterns_mined);
    assert_eq!(m_ig.info().n_selected, m_abs.info().n_selected);
}

#[test]
fn framework_beats_or_matches_harmony_on_pattern_heavy_data() {
    // §5's comparison direction: the framework should not lose to the
    // rule-based baseline on data where patterns carry the signal.
    let data = pattern_heavy_dataset();
    let fold = stratified_holdout(&data.labels, 0.3, 9);
    let train = data.subset(&fold.train);
    let test = data.subset(&fold.test);

    let framework = PatternClassifier::fit(
        &train,
        &FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Relative(0.08)),
    )
    .unwrap();
    let f_acc = framework.accuracy(&test);

    let (train_ts, _) = train.to_transactions();
    let (test_ts, _) = test.to_transactions();
    let harmony = HarmonyClassifier::fit(
        &train_ts,
        &HarmonyParams {
            mining: MiningConfig::with_min_sup(0.08),
            ..HarmonyParams::default()
        },
    )
    .unwrap();
    let h_acc = harmony.accuracy(&test_ts);

    assert!(
        f_acc >= h_acc - 0.05,
        "framework {f_acc:.4} should be competitive with HARMONY {h_acc:.4}"
    );
}

#[test]
fn coverage_parameter_controls_feature_count() {
    let data = pattern_heavy_dataset();
    let low = PatternClassifier::fit(
        &data,
        &FrameworkConfig::pat_fs()
            .with_min_sup(MinSupStrategy::Relative(0.08))
            .with_coverage(1),
    )
    .unwrap();
    let high = PatternClassifier::fit(
        &data,
        &FrameworkConfig::pat_fs()
            .with_min_sup(MinSupStrategy::Relative(0.08))
            .with_coverage(10),
    )
    .unwrap();
    assert!(
        high.info().n_selected >= low.info().n_selected,
        "δ=10 selected {} < δ=1 selected {}",
        high.info().n_selected,
        low.info().n_selected
    );
}
