//! Property tests: the five miners agree with each other and with a
//! brute-force reference on random transaction databases, and the closed-set
//! invariants of §3.3 hold.

use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{contains_sorted, Item, TransactionSet};
use dfpc::mining::pattern::sort_canonical;
use dfpc::mining::reference::{mine_brute_force, mine_closed_brute_force};
use dfpc::mining::{apriori, closed, count, eclat, fpgrowth, nodeset, MineOptions};
use proptest::prelude::*;

/// Strategy: a random database of up to 12 transactions over up to 8 items.
fn random_db() -> impl Strategy<Value = TransactionSet> {
    let n_items = 8usize;
    prop::collection::vec(
        prop::collection::btree_set(0u32..n_items as u32, 0..=6),
        1..=12,
    )
    .prop_map(move |txs| {
        let transactions: Vec<Vec<Item>> = txs
            .into_iter()
            .map(|set| set.into_iter().map(Item).collect())
            .collect();
        let n = transactions.len();
        TransactionSet::new(n_items, 1, transactions, vec![ClassId(0); n])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_equal_brute_force(ts in random_db(), min_sup in 1usize..5) {
        let want = mine_brute_force(&ts, min_sup, None);
        let opts = MineOptions::default();
        for (name, got) in [
            ("eclat", eclat::mine(&ts, min_sup, &opts).unwrap()),
            ("fpgrowth", fpgrowth::mine(&ts, min_sup, &opts).unwrap()),
            ("apriori", apriori::mine(&ts, min_sup, &opts).unwrap()),
            ("nodeset", nodeset::mine(&ts, min_sup, &opts).unwrap()),
        ] {
            let mut got = got;
            sort_canonical(&mut got);
            prop_assert_eq!(&got, &want, "{} disagrees with brute force", name);
        }
    }

    #[test]
    fn closed_miner_equals_brute_force(ts in random_db(), min_sup in 1usize..5) {
        let mut got = closed::mine_closed(&ts, min_sup, &MineOptions::default()).unwrap();
        sort_canonical(&mut got);
        let want = mine_closed_brute_force(&ts, min_sup, None);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn every_frequent_set_has_closed_superset_with_equal_support(
        ts in random_db(), min_sup in 1usize..4
    ) {
        let frequent = eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap();
        let closed = closed::mine_closed(&ts, min_sup, &MineOptions::default()).unwrap();
        for f in &frequent {
            prop_assert!(
                closed.iter().any(|c| c.support == f.support
                    && contains_sorted(&c.items, &f.items)),
                "no closed superset for {:?} (support {})", f.items, f.support
            );
        }
    }

    #[test]
    fn closed_sets_are_maximal(ts in random_db(), min_sup in 1usize..4) {
        let closed = closed::mine_closed(&ts, min_sup, &MineOptions::default()).unwrap();
        // No closed set may strictly contain another with equal support.
        for a in &closed {
            for b in &closed {
                if a.support == b.support && a.items.len() < b.items.len() {
                    prop_assert!(
                        !contains_sorted(&b.items, &a.items),
                        "{:?} subsumed by {:?}", a.items, b.items
                    );
                }
            }
        }
    }

    #[test]
    fn counting_matches_materialisation(ts in random_db(), min_sup in 1usize..4) {
        let n = count::count_frequent(&ts, min_sup, u64::MAX).unwrap();
        let full = eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap();
        prop_assert_eq!(n as usize, full.len());
    }

    #[test]
    fn supports_are_exact(ts in random_db(), min_sup in 1usize..4) {
        for p in eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap() {
            prop_assert_eq!(p.support as usize, ts.support(&p.items));
        }
        for p in nodeset::mine(&ts, min_sup, &MineOptions::default()).unwrap() {
            prop_assert_eq!(p.support as usize, ts.support(&p.items));
        }
        for p in closed::mine_closed(&ts, min_sup, &MineOptions::default()).unwrap() {
            prop_assert_eq!(p.support as usize, ts.support(&p.items));
        }
    }

    #[test]
    fn monotonicity_in_min_sup(ts in random_db()) {
        // Raising min_sup can only shrink the frequent set.
        let mut last = usize::MAX;
        for min_sup in 1..=4usize {
            let n = eclat::mine(&ts, min_sup, &MineOptions::default()).unwrap().len();
            prop_assert!(n <= last);
            last = n;
        }
    }
}
