//! The parallel runtime's determinism contract: any `DFP_THREADS` value
//! must produce **bit-identical** results to the sequential path — mined
//! feature sets, MMRFS selections, enumeration counts, cross-validation
//! accuracies, and batch predictions.

use dfpc::classify::cv::cross_validate;
use dfpc::classify::svm::{LinearSvm, LinearSvmParams};
use dfpc::classify::Classifier;
use dfpc::core::{cross_validate_framework, FrameworkConfig, PatternClassifier};
use dfpc::data::dataset::{categorical_dataset, Dataset};
use dfpc::data::features::SparseBinaryMatrix;
use dfpc::data::schema::ClassId;
use dfpc::data::transactions::{Item, TransactionSet};
use dfpc::mining::count::count_frequent;
use dfpc::mining::per_class::MinerKind;
use dfpc::mining::{mine_features, mine_features_anytime, MiningConfig};
use dfpc::select::{mmrfs, MmrfsConfig};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// `DFP_THREADS` is process-global; every test that mutates it serialises
/// through this lock (and recovers it if a holder panicked).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock_env() -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Comparing runs at different thread counts only proves determinism if
    // every run does real work — a memoized second run would trivially
    // match the first. Keep the mining cache off throughout this binary.
    dfpc::mining::memo::set_enabled(Some(false));
    guard
}

/// Runs `f` with `DFP_THREADS=n`, restoring the previous value after.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("DFP_THREADS").ok();
    std::env::set_var("DFP_THREADS", n.to_string());
    let r = f();
    match saved {
        Some(v) => std::env::set_var("DFP_THREADS", v),
        None => std::env::remove_var("DFP_THREADS"),
    }
    r
}

fn random_labelled_db() -> impl Strategy<Value = TransactionSet> {
    let n_items = 8usize;
    prop::collection::vec(
        (
            prop::collection::btree_set(0u32..n_items as u32, 1..=5),
            0u32..3,
        ),
        6..=40,
    )
    .prop_map(move |rows| {
        let (transactions, labels): (Vec<Vec<Item>>, Vec<ClassId>) = rows
            .into_iter()
            .map(|(set, l)| (set.into_iter().map(Item).collect::<Vec<_>>(), ClassId(l)))
            .unzip();
        TransactionSet::new(n_items, 3, transactions, labels)
    })
}

/// The (a0, a1) pair marks the class; singles are weak. Enough structure
/// for mining + selection + CV to all have real work.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every miner yields the same feature set at 1 and 4 threads.
    #[test]
    fn miners_identical_across_thread_counts(ts in random_labelled_db()) {
        let _guard = lock_env();
        for kind in [
            MinerKind::Closed,
            MinerKind::FpGrowth,
            MinerKind::Eclat,
            MinerKind::Apriori,
            MinerKind::Nodeset,
        ] {
            let cfg = MiningConfig {
                miner: kind,
                ..MiningConfig::with_min_sup(0.2)
            };
            let seq = with_threads(1, || mine_features(&ts, &cfg).unwrap());
            let par = with_threads(4, || mine_features(&ts, &cfg).unwrap());
            prop_assert_eq!(seq, par, "{:?}", kind);
        }
    }

    /// MMRFS selects the same features in the same order, with bit-equal
    /// relevance scores, at 1 and 4 threads.
    #[test]
    fn mmrfs_identical_across_thread_counts(
        ts in random_labelled_db(),
        delta in 1u32..4,
    ) {
        let _guard = lock_env();
        let cands =
            with_threads(1, || mine_features(&ts, &MiningConfig::with_min_sup(0.2)).unwrap());
        let cfg = MmrfsConfig {
            coverage: delta,
            ..MmrfsConfig::default()
        };
        let seq = with_threads(1, || mmrfs(&ts, &cands, &cfg));
        let par = with_threads(4, || mmrfs(&ts, &cands, &cfg));
        prop_assert_eq!(&seq.selected, &par.selected);
        prop_assert_eq!(seq.fully_covered, par.fully_covered);
        let seq_bits: Vec<u64> = seq.relevance.iter().map(|x| x.to_bits()).collect();
        let par_bits: Vec<u64> = par.relevance.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(seq_bits, par_bits);
    }

    /// Anytime mining under a pattern budget is deterministic across thread
    /// counts: identical best-so-far feature sets (order included), the same
    /// completeness flag, and the same stop reason at 1 and 4 threads.
    #[test]
    fn anytime_mining_identical_across_thread_counts(
        ts in random_labelled_db(),
        budget in 1u64..40,
    ) {
        let _guard = lock_env();
        for kind in [
            MinerKind::Closed,
            MinerKind::FpGrowth,
            MinerKind::Eclat,
            MinerKind::Apriori,
            MinerKind::Nodeset,
        ] {
            let mut cfg = MiningConfig {
                miner: kind,
                ..MiningConfig::with_min_sup(0.2)
            };
            cfg.options = cfg.options.with_max_patterns(budget);
            let seq = with_threads(1, || mine_features_anytime(&ts, &cfg).unwrap());
            let par = with_threads(4, || mine_features_anytime(&ts, &cfg).unwrap());
            prop_assert_eq!(&seq.patterns, &par.patterns, "{:?}", kind);
            prop_assert_eq!(seq.complete, par.complete, "{:?}", kind);
            prop_assert_eq!(seq.stopped_by, par.stopped_by, "{:?}", kind);
            // A budget stop is honest: over-budget ⇔ flagged incomplete.
            prop_assert_eq!(
                seq.complete,
                seq.stopped_by.is_none(),
                "{:?}", kind
            );
        }
    }

    /// Counting-only enumeration returns the same count — and the same
    /// budget-abort outcome — at 1 and 4 threads.
    #[test]
    fn count_frequent_identical_across_thread_counts(
        ts in random_labelled_db(),
        budget in 1u64..300,
    ) {
        let _guard = lock_env();
        let seq = with_threads(1, || count_frequent(&ts, 1, budget));
        let par = with_threads(4, || count_frequent(&ts, 1, budget));
        prop_assert_eq!(seq, par);
    }
}

#[test]
fn framework_cv_identical_across_thread_counts() {
    let _guard = lock_env();
    let data = confusable();
    let cfg = FrameworkConfig::pat_fs();
    let seq = with_threads(1, || cross_validate_framework(&data, &cfg, 5, 9).unwrap());
    let par = with_threads(4, || cross_validate_framework(&data, &cfg, 5, 9).unwrap());
    let seq_bits: Vec<u64> = seq.fold_accuracies.iter().map(|x| x.to_bits()).collect();
    let par_bits: Vec<u64> = par.fold_accuracies.iter().map(|x| x.to_bits()).collect();
    assert_eq!(seq_bits, par_bits);
}

#[test]
fn inner_cv_identical_across_thread_counts() {
    let _guard = lock_env();
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40usize {
        rows.push(if i % 3 == 0 { vec![0] } else { vec![0, 2] });
        labels.push(ClassId(0));
        rows.push(if i % 3 == 1 { vec![1] } else { vec![1, 2] });
        labels.push(ClassId(1));
    }
    let m = SparseBinaryMatrix::new(3, rows, labels, 2);
    let fit = |train: &SparseBinaryMatrix| LinearSvm::fit(train, &LinearSvmParams::default());
    let seq = with_threads(1, || cross_validate(&m, 5, 7, fit));
    let par = with_threads(4, || cross_validate(&m, 5, 7, fit));
    let seq_bits: Vec<u64> = seq.fold_accuracies.iter().map(|x| x.to_bits()).collect();
    let par_bits: Vec<u64> = par.fold_accuracies.iter().map(|x| x.to_bits()).collect();
    assert_eq!(seq_bits, par_bits);
}

#[test]
fn predict_batch_identical_and_matches_per_row() {
    let _guard = lock_env();
    let data = confusable();
    let model = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let matrix = model.transform(&data).unwrap();
    let seq = with_threads(1, || model.model().predict_batch(&matrix.rows));
    let par = with_threads(4, || model.model().predict_batch(&matrix.rows));
    let per_row: Vec<ClassId> = matrix
        .rows
        .iter()
        .map(|r| model.model().predict(r))
        .collect();
    assert_eq!(seq, par);
    assert_eq!(seq, per_row);
}
