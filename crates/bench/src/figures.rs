//! Figures 1–3: information gain / Fisher score of mined patterns against
//! pattern length (Fig. 1) and support with the theoretical upper bounds
//! (Figs. 2–3), on the paper's three illustration datasets
//! (austral, breast, sonar).

use crate::report::{pct, write_raw_csv, Table};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::synth::profile_by_name;
use dfp_data::transactions::TransactionSet;
use dfp_measures::bounds::{fisher_upper_bound, ig_upper_bound, ig_upper_bound_paper};
use dfp_measures::{fisher_score, info_gain};
use dfp_mining::per_class::MinerKind;
use dfp_mining::{mine_features, MineOptions, MinedPattern, MiningConfig};

/// The three datasets the paper's figures use.
pub const FIGURE_DATASETS: [&str; 3] = ["austral", "breast", "sonar"];

/// Discretizes and mines one figure dataset: **all** frequent patterns
/// (single features included) per class partition at the profile's default
/// support, length-capped at 6 so the spectrum matches the paper's x-axes.
/// (The figures characterise the frequent-pattern population, so the full
/// frequent set — not just the closed one — is the right universe; closure
/// merging would under-represent short lengths.)
pub fn mine_for_figures(name: &str) -> (TransactionSet, Vec<MinedPattern>) {
    let profile = profile_by_name(name).unwrap_or_else(|| panic!("unknown profile {name}"));
    let data = profile.generate();
    let (categorical, _) = data.discretize(&MdlDiscretizer::new());
    let (ts, _) = categorical.to_transactions();
    let cfg = MiningConfig {
        min_sup_rel: profile.default_min_sup,
        miner: MinerKind::Eclat,
        options: MineOptions::default()
            .with_max_len(6)
            .with_max_patterns(2_000_000),
        per_class: true,
    };
    let patterns = mine_features(&ts, &cfg).expect("figure mining");
    (ts, patterns)
}

/// Figure 1: information gain vs pattern length.
pub fn run_figure1() {
    println!("== Figure 1: information gain vs pattern length ==\n");
    for name in FIGURE_DATASETS {
        let (ts, patterns) = mine_for_figures(name);
        let class_counts = ts.class_counts();
        let mut by_len: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
        let mut scatter = Vec::new();
        for p in &patterns {
            let ig = info_gain(&class_counts, &p.class_supports);
            by_len.entry(p.len()).or_default().push(ig);
            scatter.push(format!("{},{:.6}", p.len(), ig));
        }
        let mut table = Table::new(vec!["length", "#patterns", "max IG", "mean IG"]);
        let mut max_single = 0.0f64;
        let mut max_combined = 0.0f64;
        for (len, igs) in &by_len {
            let max = igs.iter().cloned().fold(0.0, f64::max);
            let mean = igs.iter().sum::<f64>() / igs.len() as f64;
            if *len == 1 {
                max_single = max;
            } else {
                max_combined = max_combined.max(max);
            }
            table.row(vec![
                len.to_string(),
                igs.len().to_string(),
                format!("{max:.4}"),
                format!("{mean:.4}"),
            ]);
        }
        println!("--- {name} ({} patterns) ---", patterns.len());
        table.print();
        println!(
            "max IG single features: {max_single:.4} | max IG combined: {max_combined:.4} {}\n",
            if max_combined > max_single {
                "→ some frequent patterns beat every single feature (paper's Fig. 1 claim)"
            } else {
                "(combined max did not exceed singles on this profile)"
            }
        );
        let path =
            write_raw_csv(&format!("figure1_{name}"), "length,info_gain", &scatter).expect("csv");
        println!("scatter written to {}\n", path.display());
    }
}

/// Figure 2: information gain and `IGub` vs absolute support.
pub fn run_figure2() {
    println!("== Figure 2: information gain and theoretical upper bound vs support ==\n");
    for name in FIGURE_DATASETS {
        let (ts, patterns) = mine_for_figures(name);
        let class_counts = ts.class_counts();
        let n = ts.len();
        let p1 = class_counts[1] as f64 / n as f64;

        let mut scatter = Vec::new();
        let mut violations = 0usize;
        for p in &patterns {
            let ig = info_gain(&class_counts, &p.class_supports);
            let theta = p.support as f64 / n as f64;
            let bound = ig_upper_bound(theta, p1);
            if ig > bound + 1e-9 {
                violations += 1;
            }
            scatter.push(format!("{},{:.6},{:.6}", p.support, ig, bound));
        }
        let curve: Vec<String> = (1..=n)
            .map(|s| {
                let theta = s as f64 / n as f64;
                format!(
                    "{s},{:.6},{:.6}",
                    ig_upper_bound_paper(theta, p1),
                    ig_upper_bound(theta, p1)
                )
            })
            .collect();
        write_raw_csv(
            &format!("figure2_{name}_patterns"),
            "support,info_gain,bound_at_support",
            &scatter,
        )
        .expect("csv");
        write_raw_csv(
            &format!("figure2_{name}_bound"),
            "support,igub_paper_branch,igub_tight",
            &curve,
        )
        .expect("csv");

        // Paper's headline observation: the bound at 5% support is tiny.
        let theta5 = 0.05;
        println!(
            "--- {name}: n = {n}, p = {p1:.3} | IGub(5% support) = {:.4} | {} patterns, {} bound violations",
            ig_upper_bound_paper(theta5, p1),
            patterns.len(),
            violations
        );
        assert_eq!(violations, 0, "IG exceeded its upper bound on {name}");
    }
    println!("\n(per-dataset scatter + bound curves in experiments/out/figure2_*.csv)\n");
}

/// Figure 3: Fisher score and `FRub` vs absolute support.
pub fn run_figure3() {
    println!("== Figure 3: Fisher score and theoretical upper bound vs support ==\n");
    for name in FIGURE_DATASETS {
        let (ts, patterns) = mine_for_figures(name);
        let class_counts = ts.class_counts();
        let n = ts.len();
        let p1 = class_counts[1] as f64 / n as f64;

        let mut scatter = Vec::new();
        let mut violations = 0usize;
        let mut finite_max = 0.0f64;
        for p in &patterns {
            let fr = fisher_score(&class_counts, &p.class_supports);
            let theta = p.support as f64 / n as f64;
            let bound = fisher_upper_bound(theta, p1);
            if fr.is_finite() {
                finite_max = finite_max.max(fr);
                if fr > bound + 1e-6 {
                    violations += 1;
                }
            }
            scatter.push(format!(
                "{},{},{}",
                p.support,
                fmt_maybe_inf(fr),
                fmt_maybe_inf(bound)
            ));
        }
        let curve: Vec<String> = (1..=n)
            .map(|s| {
                let theta = s as f64 / n as f64;
                format!("{s},{}", fmt_maybe_inf(fisher_upper_bound(theta, p1)))
            })
            .collect();
        write_raw_csv(
            &format!("figure3_{name}_patterns"),
            "support,fisher,bound_at_support",
            &scatter,
        )
        .expect("csv");
        write_raw_csv(&format!("figure3_{name}_bound"), "support,frub", &curve).expect("csv");
        println!(
            "--- {name}: n = {n}, p = {p1:.3} | FRub(θ→p) → ∞ | max finite Fisher = {finite_max:.3} | {} patterns, {} bound violations",
            patterns.len(),
            violations
        );
        assert_eq!(violations, 0, "Fisher exceeded its upper bound on {name}");
    }
    println!("\n(per-dataset scatter + bound curves in experiments/out/figure3_*.csv)\n");
}

fn fmt_maybe_inf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "inf".to_string()
    }
}

/// Convenience summary used by `run_all`: a one-line claim check per figure.
pub fn claim_summary() -> String {
    let (ts, patterns) = mine_for_figures("austral");
    let class_counts = ts.class_counts();
    let best_single = patterns
        .iter()
        .filter(|p| p.len() == 1)
        .map(|p| info_gain(&class_counts, &p.class_supports))
        .fold(0.0, f64::max);
    let best_combined = patterns
        .iter()
        .filter(|p| p.len() >= 2)
        .map(|p| info_gain(&class_counts, &p.class_supports))
        .fold(0.0, f64::max);
    format!(
        "austral: best single-feature IG {} vs best pattern IG {}",
        pct(best_single),
        pct(best_combined)
    )
}
