//! Thread-scaling benchmark for the parallel runtime (`dfp-par`).
//!
//! Runs the full mine → MMRFS → cross-validation pipeline on a planted
//! 4-class dataset once per requested thread count (via `DFP_THREADS`),
//! asserts the outputs are **bit-identical** across counts — the runtime's
//! determinism contract — and records the per-stage wall clock plus the
//! speedup curve into `experiments/out/BENCH_speedup.json`.

use crate::report::{write_json, Json, Table};
use dfp_classify::cv::cross_validate;
use dfp_classify::svm::{LinearSvm, LinearSvmParams};
use dfp_data::synth::{AttrSpec, PlantedPattern, SynthConfig};
use dfp_data::transactions::TransactionSet;
use dfp_mining::per_class::MinerKind;
use dfp_mining::{mine_features, MineOptions, MinedPattern, MiningConfig};
use dfp_select::{mmrfs, FeatureSpace, MmrfsConfig, SelectionResult};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// The planted 4-class benchmark dataset: 20 000 dense categorical
/// transactions (2 000 under `DFP_FAST=1`) with three-item discriminative
/// plants per class, sized so single-thread mining takes whole seconds.
pub fn speedup_dataset() -> TransactionSet {
    let n_instances = if crate::fast_mode() { 2_000 } else { 20_000 };
    let planted: Vec<PlantedPattern> = (0..4u32)
        .flat_map(|class| {
            let a = class as usize;
            [
                PlantedPattern {
                    class,
                    attr_values: vec![(a, 1), (a + 4, 2), (a + 8, 3)],
                    expr_in: 0.6,
                    expr_out: 0.05,
                },
                PlantedPattern {
                    class,
                    attr_values: vec![(a + 4, 4), (a + 12, 1)],
                    expr_in: 0.5,
                    expr_out: 0.1,
                },
            ]
        })
        .collect();
    let cfg = SynthConfig {
        name: "speedup4".into(),
        n_instances,
        class_priors: vec![1.0; 4],
        attrs: vec![
            AttrSpec {
                arity: 6,
                numeric: false
            };
            16
        ],
        planted,
        value_concentration: 0.45,
        class_skew: 0.25,
        missing_rate: 0.0,
        numeric_jitter: 0.0,
        seed: 77,
    };
    let (ts, _) = cfg.generate().to_transactions();
    ts
}

fn mining_cfg() -> MiningConfig {
    MiningConfig {
        min_sup_rel: 0.05,
        miner: MinerKind::Closed,
        options: MineOptions::default()
            .with_min_len(2)
            .with_max_patterns(2_000_000),
        per_class: true,
    }
}

fn selection_cfg() -> MmrfsConfig {
    MmrfsConfig {
        max_candidates: Some(5_000),
        ..MmrfsConfig::default()
    }
}

/// One sweep point: stage wall-clocks plus the output fingerprint.
pub struct SpeedupRun {
    /// Thread count the run was pinned to (`DFP_THREADS`).
    pub threads: usize,
    /// Mining wall clock (s).
    pub mine_s: f64,
    /// MMRFS wall clock (s).
    pub select_s: f64,
    /// Cross-validation wall clock (s).
    pub cv_s: f64,
    /// Hash over mined patterns, selection, and fold accuracies.
    pub fingerprint: u64,
}

impl SpeedupRun {
    /// Total pipeline wall clock.
    pub fn total_s(&self) -> f64 {
        self.mine_s + self.select_s + self.cv_s
    }
}

fn fingerprint(candidates: &[MinedPattern], sel: &SelectionResult, accs: &[f64]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in candidates {
        p.items.len().hash(&mut h);
        for it in &p.items {
            it.0.hash(&mut h);
        }
        p.support.hash(&mut h);
        p.class_supports.hash(&mut h);
    }
    sel.selected.hash(&mut h);
    for a in accs {
        a.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Runs the pipeline once at the *current* `DFP_THREADS` setting.
pub fn run_once(ts: &TransactionSet, threads: usize) -> SpeedupRun {
    let t0 = Instant::now();
    let candidates = mine_features(ts, &mining_cfg()).expect("mining");
    let mine_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sel = mmrfs(ts, &candidates, &selection_cfg());
    let select_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let selected = sel.patterns(&candidates);
    let fs = FeatureSpace::new(ts.n_items(), ts.n_classes(), &selected);
    let matrix = fs.transform(ts);
    let folds = if crate::fast_mode() { 3 } else { 5 };
    let cv = cross_validate(&matrix, folds, 23, |train| {
        LinearSvm::fit(train, &LinearSvmParams::default())
    });
    let cv_s = t2.elapsed().as_secs_f64();

    SpeedupRun {
        threads,
        mine_s,
        select_s,
        cv_s,
        fingerprint: fingerprint(&candidates, &sel, &cv.fold_accuracies),
    }
}

/// Sweeps the pipeline over `thread_counts`, printing the speedup table and
/// writing `experiments/out/BENCH_speedup.json`.
///
/// # Panics
/// Panics if any thread count produces outputs that are not bit-identical
/// to the single-thread run — that would be a determinism bug in `dfp-par`.
pub fn run_speedup(thread_counts: &[usize]) {
    println!("== Thread-scaling: mine -> MMRFS -> CV ==\n");
    let saved = std::env::var("DFP_THREADS").ok();
    let ts = speedup_dataset();
    println!(
        "speedup4: {} instances, {} items, {} classes; sweeping DFP_THREADS {:?}\n",
        ts.len(),
        ts.n_items(),
        ts.n_classes(),
        thread_counts
    );

    let mut runs: Vec<SpeedupRun> = Vec::new();
    for &t in thread_counts {
        std::env::set_var("DFP_THREADS", t.to_string());
        let run = run_once(&ts, t);
        println!(
            "  DFP_THREADS={t}: mine {:.3}s  select {:.3}s  cv {:.3}s  total {:.3}s",
            run.mine_s,
            run.select_s,
            run.cv_s,
            run.total_s()
        );
        runs.push(run);
    }
    match saved {
        Some(v) => std::env::set_var("DFP_THREADS", v),
        None => std::env::remove_var("DFP_THREADS"),
    }

    let base = runs.first().expect("at least one thread count");
    let base_total = base.total_s();
    let base_fp = base.fingerprint;
    for r in &runs {
        assert_eq!(
            r.fingerprint, base_fp,
            "outputs at {} threads differ from {} threads — determinism bug",
            r.threads, base.threads
        );
    }

    let mut table = Table::new(vec![
        "threads",
        "mine (s)",
        "select (s)",
        "cv (s)",
        "total (s)",
        "speedup",
    ]);
    let mut json_runs = Vec::new();
    for r in &runs {
        let speedup = base_total / r.total_s();
        table.row(vec![
            r.threads.to_string(),
            format!("{:.3}", r.mine_s),
            format!("{:.3}", r.select_s),
            format!("{:.3}", r.cv_s),
            format!("{:.3}", r.total_s()),
            format!("{speedup:.2}x"),
        ]);
        json_runs.push(Json::obj(vec![
            ("threads", Json::Int(r.threads as u64)),
            ("mine_s", Json::Num(r.mine_s)),
            ("select_s", Json::Num(r.select_s)),
            ("cv_s", Json::Num(r.cv_s)),
            ("total_s", Json::Num(r.total_s())),
            ("speedup_vs_first", Json::Num(speedup)),
            ("fingerprint", Json::Int(r.fingerprint)),
        ]));
    }
    println!();
    table.print();

    // Record the host's core count: on a single-core machine the curve is
    // flat by construction, so the report must say what hardware it ran on.
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Json::obj(vec![
        ("dataset", Json::Str("speedup4".into())),
        ("n_instances", Json::Int(ts.len() as u64)),
        ("n_items", Json::Int(ts.n_items() as u64)),
        ("n_classes", Json::Int(ts.n_classes() as u64)),
        ("host_available_parallelism", Json::Int(host_cores as u64)),
        ("bit_identical", Json::Int(1)),
        ("runs", Json::Arr(json_runs)),
    ]);
    let path = write_json("BENCH_speedup", &report).expect("json");
    println!("\njson written to {}\n", path.display());
}

/// Parses a `1,2,4`-style thread list; falls back to `1,2,4,N` (deduped,
/// ascending) where `N` is the machine's available parallelism.
pub fn parse_thread_list(arg: Option<&str>) -> Vec<usize> {
    if let Some(s) = arg {
        let parsed: Vec<usize> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    let n = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 4, n];
    counts.sort_unstable();
    counts.dedup();
    counts
}
