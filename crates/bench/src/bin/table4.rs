//! Regenerates the paper's Table 4 (waveform scalability sweep).
fn main() {
    dfp_bench::scalability::run_table4();
}
