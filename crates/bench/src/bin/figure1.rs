//! Regenerates the paper's Figure 1.
fn main() {
    dfp_bench::figures::run_figure1();
}
