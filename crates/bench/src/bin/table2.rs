//! Regenerates the paper's Table 2 (C4.5 accuracies, 4 variants × 19 datasets).
fn main() {
    dfp_bench::tables::run_table2();
}
