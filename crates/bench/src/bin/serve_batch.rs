//! Micro-batching + caching throughput benchmark: `serve_batch`.
//!
//! Compares single-request dequeue serving (each request parsed,
//! transformed and predicted on its own, no caching) against the batched +
//! cached path: the [`dfp_serve::TransformCache`] answering repeated
//! feature rows and the [`dfp_serve::BatchScheduler`] fusing concurrent
//! requests into one `predict_rows` call. Also times a cold vs warm
//! `PatternClassifier::fit` on identical data to measure the mining
//! memoization cache.
//!
//! Writes `BENCH_serve_batch.json` at the workspace root.

use dfp_bench::report::{self, Json, Table};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_data::schema::{ClassId, Schema};
use dfp_mining::memo;
use dfp_serve::rows::parse_row_line;
use dfp_serve::{BatchScheduler, Metrics, TransformCache};
use std::sync::Arc;
use std::time::{Duration, Instant};

const REQUESTS: usize = 512;
const UNIQUE_ROWS: usize = 16;
const BATCH_MAX: usize = 8;
const CLIENTS: usize = 8;
const N_ATTRS: usize = 64;

/// Decorrelated pseudo-random noise value for cell `(i, a)` — a mixing
/// hash, so no two noise columns co-vary and mining stays tractable (noise
/// pairs land well under min_sup).
fn noise(i: u32, a: u32) -> u32 {
    let mut x = i
        .wrapping_mul(2_654_435_761)
        .wrapping_add(a.wrapping_mul(40_503));
    x ^= x >> 13;
    x = x.wrapping_mul(2_246_822_519);
    x ^= x >> 11;
    x % 4
}

/// The (a0, a1) pair decides the class; the other 62 columns are noise.
/// A wide schema makes per-request parsing and transformation the real
/// cost — exactly what the transform cache exists to amortize.
fn training_data() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..400u32 {
        let mut vals = vec![1, if i % 2 == 0 { 1 } else { 2 }];
        vals.extend((2..N_ATTRS as u32).map(|a| noise(i, a)));
        rows.push((vals, i % 2));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    let mut arities = vec![3usize, 3];
    arities.resize(N_ATTRS, 4);
    categorical_dataset(&arities, 2, &borrowed)
}

/// The request stream: `REQUESTS` single-row bodies cycling through
/// `UNIQUE_ROWS` distinct lines, so a cache sees each line repeatedly.
fn workload() -> Vec<String> {
    (0..REQUESTS)
        .map(|r| {
            let i = (r % UNIQUE_ROWS) as u32;
            let mut fields = vec![format!("v{}", i % 3), format!("v{}", (i / 3) % 3)];
            fields.extend((2..N_ATTRS as u32).map(|a| format!("v{}", noise(i + 1000, a))));
            fields.join(",")
        })
        .collect()
}

/// Parse + transform one CSV line against the fitted model.
fn transform_line(model: &PatternClassifier, schema: &Schema, line: &str) -> Vec<u32> {
    let values = parse_row_line(schema, 0, line).expect("benchmark rows are valid");
    let dataset = Dataset::new(schema.clone(), vec![values], vec![ClassId(0)]);
    let matrix = model.transform(&dataset).expect("transform");
    matrix.rows.into_iter().next().expect("one row")
}

/// The baseline: every request parsed, transformed and predicted on its
/// own, exactly what a batching-off, cache-off worker does.
fn run_single(model: &PatternClassifier, schema: &Schema, lines: &[String]) -> (Duration, u64) {
    let start = Instant::now();
    let mut label_sum = 0u64;
    for line in lines {
        let row = transform_line(model, schema, line);
        let labels = model.predict_rows(&[row]);
        label_sum += u64::from(labels[0].0);
    }
    (start.elapsed(), label_sum)
}

/// The batched + cached path: `CLIENTS` concurrent submitters sharing one
/// transform cache, the scheduler fusing their requests.
fn run_batched(
    model: &Arc<PatternClassifier>,
    schema: &Schema,
    metrics: &Arc<Metrics>,
    lines: &[String],
) -> (Duration, u64) {
    let scheduler = BatchScheduler::start(
        Arc::clone(model),
        Arc::clone(metrics),
        BATCH_MAX,
        Duration::from_micros(100),
    );
    let cache = TransformCache::new(dfp_serve::cache::DEFAULT_CAP);
    let start = Instant::now();
    let chunk = lines.len().div_ceil(CLIENTS);
    let label_sum: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = lines
            .chunks(chunk)
            .map(|mine| {
                let (scheduler, cache, model) = (&scheduler, &cache, model);
                s.spawn(move || {
                    let mut sum = 0u64;
                    for line in mine {
                        let row = match cache.get(line) {
                            Some(row) => {
                                metrics.transform_cache_hits_total.inc();
                                row
                            }
                            None => {
                                metrics.transform_cache_misses_total.inc();
                                let row = transform_line(model, schema, line);
                                cache.insert(line, row.clone());
                                row
                            }
                        };
                        let deadline = Instant::now() + Duration::from_secs(30);
                        let labels = scheduler
                            .submit(vec![row], deadline)
                            .expect("scheduler running")
                            .recv()
                            .expect("scheduler reply");
                        sum += u64::from(labels[0].0);
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    (start.elapsed(), label_sum)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    // --- Cold vs warm fit: the mining memoization cache. ---
    memo::set_enabled(Some(true));
    memo::clear();
    let data = training_data();
    let cfg = FrameworkConfig::pat_fs();
    let hits_before = dfp_obs::metrics::dfp::cache_mining_hits().get();

    let t = Instant::now();
    let model = PatternClassifier::fit(&data, &cfg).expect("cold fit");
    let cold_fit = t.elapsed();
    let t = Instant::now();
    let _warm_model = PatternClassifier::fit(&data, &cfg).expect("warm fit");
    let warm_fit = t.elapsed();
    let fit_cache_hits = dfp_obs::metrics::dfp::cache_mining_hits().get() - hits_before;

    // --- Serving throughput: single dequeue vs batched + cached. ---
    let model = Arc::new(model);
    let schema = model.schema().expect("fitted model has a schema").clone();
    let lines = workload();
    let metrics = Arc::new(Metrics::new());

    // Warm both paths once so lazy initialisation isn't billed to either.
    let _ = run_single(&model, &schema, &lines[..UNIQUE_ROWS.min(lines.len())]);

    let (single_time, single_sum) = run_single(&model, &schema, &lines);
    let (batched_time, batched_sum) = run_batched(&model, &schema, &metrics, &lines);
    assert_eq!(
        single_sum, batched_sum,
        "batching/caching changed predictions"
    );

    let single_rps = REQUESTS as f64 / secs(single_time);
    let batched_rps = REQUESTS as f64 / secs(batched_time);
    let speedup = secs(single_time) / secs(batched_time);
    let fit_speedup = secs(cold_fit) / secs(warm_fit).max(1e-9);

    let mut table = Table::new(vec!["path", "seconds", "req/s"]);
    table.row(vec![
        "single dequeue".to_string(),
        format!("{:.4}", secs(single_time)),
        format!("{single_rps:.0}"),
    ]);
    table.row(vec![
        "batched + cached".to_string(),
        format!("{:.4}", secs(batched_time)),
        format!("{batched_rps:.0}"),
    ]);
    table.print();
    println!("serving speedup: {speedup:.2}x");
    println!(
        "fit: cold {:.4}s, warm {:.4}s ({fit_speedup:.1}x, {fit_cache_hits} mining-cache hits)",
        secs(cold_fit),
        secs(warm_fit)
    );

    let json = Json::obj(vec![
        (
            "workload",
            Json::obj(vec![
                ("requests", Json::Int(REQUESTS as u64)),
                ("unique_rows", Json::Int(UNIQUE_ROWS as u64)),
                ("batch_max", Json::Int(BATCH_MAX as u64)),
                ("clients", Json::Int(CLIENTS as u64)),
            ]),
        ),
        (
            "single",
            Json::obj(vec![
                ("seconds", Json::Num(secs(single_time))),
                ("requests_per_sec", Json::Num(single_rps)),
            ]),
        ),
        (
            "batched",
            Json::obj(vec![
                ("seconds", Json::Num(secs(batched_time))),
                ("requests_per_sec", Json::Num(batched_rps)),
                ("batches", Json::Int(metrics.batches_total.get())),
                (
                    "transform_cache_hits",
                    Json::Int(metrics.transform_cache_hits_total.get()),
                ),
                (
                    "transform_cache_misses",
                    Json::Int(metrics.transform_cache_misses_total.get()),
                ),
            ]),
        ),
        ("speedup", Json::Num(speedup)),
        (
            "fit",
            Json::obj(vec![
                ("cold_seconds", Json::Num(secs(cold_fit))),
                ("warm_seconds", Json::Num(secs(warm_fit))),
                ("warm_speedup", Json::Num(fit_speedup)),
                ("mining_cache_hits", Json::Int(fit_cache_hits)),
            ]),
        ),
    ]);
    let path = report::write_root_json("BENCH_serve_batch", &json).expect("write report");
    println!("wrote {}", path.display());

    // The batched path must beat single dequeue by a clear margin; fail the
    // run loudly if the optimization regresses.
    assert!(
        speedup >= 1.5,
        "batched+cached speedup {speedup:.2}x fell below the 1.5x floor"
    );
}
