//! `data_substrate` — columnar/SIMD substrate benchmark → `BENCH_data_substrate.json`.
//!
//! Three sections:
//!
//! 1. **Kernel micro-bench** on 1 Mi-bit operands at dense / medium / sparse
//!    densities: the word-at-a-time scalar baseline vs. the chunked
//!    (autovectorized 4×u64) kernels vs. the adaptive `RowSet`
//!    representation picked by auto mode, plus the cache-blocked batched
//!    "one probe vs. all class masks" scan. The headline is the best
//!    `intersection_count` speedup over scalar, which must clear 4×.
//! 2. **Out-of-core profile**: a synthetic million-row CSV streamed to disk
//!    row by row, ingested back through the segmented reader, and fitted
//!    end to end (NaiveBayes, relative `min_sup` 0.4) — with peak resident
//!    memory (`VmHWM`) recorded against a fixed budget. The dataset never
//!    exists in memory as a whole.
//! 3. **Miner bit-identity**: Eclat run under `DFP_BITSET=dense`,
//!    `compressed` and `auto` must emit byte-identical pattern streams
//!    (FNV fingerprints compared).
//!
//! `DFP_FAST=1` shrinks operand counts and the profile to CI-smoke size.

use dfp_bench::report::{write_root_json, Json, Table};
use dfp_core::{FrameworkConfig, ModelKind, PatternClassifier};
use dfp_data::bitset::{scalar, Bitset};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::ingest::{ingest_csv, IngestOptions};
use dfp_data::rowset::{set_mode_override, BitsetMode, RowSet};
use dfp_data::synth::{profile_by_name, stream_profile};
use dfp_measures::MinSupStrategy;
use dfp_mining::{eclat, MineOptions, RawPattern};
use std::hint::black_box;
use std::time::Instant;

const MICRO_BITS: usize = 1 << 20;
const DENSITIES: &[f64] = &[0.5, 0.05, 0.001];
const N_MASKS: usize = 8;
const SPEEDUP_TARGET: f64 = 4.0;
/// Resident-memory ceiling for the out-of-core fit, in MiB.
const MEMORY_BUDGET_MB: u64 = 1536;

/// Deterministic xorshift64* stream for operand generation.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn bitset(&mut self, len: usize, density: f64) -> Bitset {
        let threshold = (density * u64::MAX as f64) as u64;
        let mut b = Bitset::new(len);
        for i in 0..len {
            if self.next() < threshold {
                b.set(i);
            }
        }
        b
    }
}

/// Best-of-`iters` average seconds per call over `reps` calls.
fn time_best<F: FnMut() -> usize>(mut f: F, iters: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let mut acc = 0usize;
        for _ in 0..reps {
            acc = acc.wrapping_add(black_box(f()));
        }
        black_box(acc);
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// FNV-1a over the emitted pattern stream (items + supports, in order).
fn pattern_fingerprint(patterns: &[RawPattern]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    };
    for p in patterns {
        mix(p.items.len() as u64);
        for item in &p.items {
            mix(item.0 as u64);
        }
        mix(p.support as u64);
    }
    h
}

/// `VmHWM`/`VmRSS` in MiB from `/proc/self/status` (Linux; 0 elsewhere).
fn proc_status_mb(key: &str) -> u64 {
    let Ok(s) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb / 1024;
        }
    }
    0
}

fn micro_section(fast: bool, table: &mut Table) -> (Vec<Json>, f64) {
    let (iters, reps) = if fast { (3, 20) } else { (5, 100) };
    let mut rows = Vec::new();
    let mut headline: f64 = 0.0;
    for &density in DENSITIES {
        let mut rng = XorShift(0x9e37_79b9 ^ (density * 1e9) as u64);
        let a = rng.bitset(MICRO_BITS, density);
        let b = rng.bitset(MICRO_BITS, density);
        let masks: Vec<Bitset> = (0..N_MASKS)
            .map(|_| rng.bitset(MICRO_BITS, density))
            .collect();
        let ra = RowSet::from_bitset(a.clone());
        let rb = RowSet::from_bitset(b.clone());

        let scalar_s = time_best(|| scalar::intersection_count(&a, &b), iters, reps);
        let chunked_s = time_best(|| a.intersection_count(&b), iters, reps);
        let rowset_s = time_best(|| ra.intersection_count(&rb), iters, reps);
        let batched_scalar_s = time_best(
            || {
                masks
                    .iter()
                    .map(|m| scalar::intersection_count(&a, m))
                    .sum()
            },
            iters,
            reps,
        );
        let batched_s = time_best(
            || a.batch_intersection_counts(&masks).iter().sum(),
            iters,
            reps,
        );

        let chunked_x = scalar_s / chunked_s;
        let rowset_x = scalar_s / rowset_s;
        let batched_x = batched_scalar_s / batched_s;
        headline = headline.max(chunked_x).max(rowset_x);
        for (name, secs, speedup) in [
            ("scalar", scalar_s, 1.0),
            ("chunked", chunked_s, chunked_x),
            ("rowset_auto", rowset_s, rowset_x),
            ("batched", batched_s, batched_x),
        ] {
            table.row(vec![
                format!("{density}"),
                name.to_string(),
                format!("{:.1}", secs * 1e9),
                format!("{speedup:.2}x"),
            ]);
        }
        rows.push(Json::obj(vec![
            ("density", Json::Num(density)),
            ("bits", Json::Int(MICRO_BITS as u64)),
            ("rowset_compressed", Json::Bool(ra.is_compressed())),
            ("scalar_ns", Json::Num(scalar_s * 1e9)),
            ("chunked_ns", Json::Num(chunked_s * 1e9)),
            ("rowset_ns", Json::Num(rowset_s * 1e9)),
            ("chunked_speedup", Json::Num(chunked_x)),
            ("rowset_speedup", Json::Num(rowset_x)),
            ("batched_masks", Json::Int(N_MASKS as u64)),
            ("batched_scalar_ns", Json::Num(batched_scalar_s * 1e9)),
            ("batched_ns", Json::Num(batched_s * 1e9)),
            ("batched_speedup", Json::Num(batched_x)),
        ]));
    }
    (rows, headline)
}

fn out_of_core_section(fast: bool) -> Json {
    let n_rows = if fast { 100_000 } else { 1_000_000 };
    let profile = stream_profile(n_rows);
    let cfg = profile.config(0);
    let csv_path = std::env::temp_dir().join(format!("dfp-substrate-{}.csv", std::process::id()));

    let start = Instant::now();
    let mut f = std::fs::File::create(&csv_path).expect("create stream CSV");
    cfg.write_csv_stream(&mut f).expect("stream CSV");
    drop(f);
    let stream_secs = start.elapsed().as_secs_f64();
    let csv_bytes = std::fs::metadata(&csv_path).map(|m| m.len()).unwrap_or(0);

    let rss_before = proc_status_mb("VmRSS");
    let start = Instant::now();
    let ingested = ingest_csv(&csv_path, &IngestOptions::default()).expect("ingest stream CSV");
    let ingest_secs = start.elapsed().as_secs_f64();

    let fit_cfg = FrameworkConfig::pat_fs()
        .with_min_sup(MinSupStrategy::Relative(0.4))
        .with_model(ModelKind::NaiveBayes);
    let start = Instant::now();
    let fitted =
        PatternClassifier::fit_transactions(&ingested.transactions, &fit_cfg).expect("fit");
    let fit_secs = start.elapsed().as_secs_f64();
    let hwm_mb = proc_status_mb("VmHWM");
    let rss_mb = proc_status_mb("VmRSS");
    std::fs::remove_file(&csv_path).ok();

    let within_budget = hwm_mb > 0 && hwm_mb <= MEMORY_BUDGET_MB;
    eprintln!(
        "out-of-core: {n_rows} rows, stream {stream_secs:.2}s, ingest {ingest_secs:.2}s, \
         fit {fit_secs:.2}s, VmHWM {hwm_mb} MiB (budget {MEMORY_BUDGET_MB} MiB)"
    );
    Json::obj(vec![
        ("rows", Json::Int(n_rows as u64)),
        ("csv_bytes", Json::Int(csv_bytes)),
        ("stream_seconds", Json::Num(stream_secs)),
        ("ingest_seconds", Json::Num(ingest_secs)),
        ("fit_seconds", Json::Num(fit_secs)),
        ("n_items", Json::Int(ingested.transactions.n_items() as u64)),
        ("n_features", Json::Int(fitted.info().n_features as u64)),
        ("vm_rss_before_mb", Json::Int(rss_before)),
        ("vm_rss_after_mb", Json::Int(rss_mb)),
        ("vm_hwm_mb", Json::Int(hwm_mb)),
        ("memory_budget_mb", Json::Int(MEMORY_BUDGET_MB)),
        ("within_budget", Json::Bool(within_budget)),
    ])
}

fn identity_section(fast: bool) -> (Vec<Json>, bool) {
    let names: &[&str] = if fast {
        &["labor", "breast"]
    } else {
        &["breast", "chess", "waveform"]
    };
    let modes = [
        ("dense", BitsetMode::Dense),
        ("compressed", BitsetMode::Compressed),
        ("auto", BitsetMode::Auto),
    ];
    let mut rows = Vec::new();
    let mut all_identical = true;
    for name in names {
        let profile = profile_by_name(name).expect("catalog profile");
        let (cat, _) = profile.generate().discretize(&MdlDiscretizer::new());
        let ts = cat.to_transactions().0;
        let min_sup = profile.default_abs_min_sup();
        let mut prints = Vec::new();
        for (label, mode) in modes {
            set_mode_override(Some(mode));
            let mined = eclat::mine(&ts, min_sup, &MineOptions::default()).expect("mine");
            prints.push((label, pattern_fingerprint(&mined), mined.len()));
        }
        set_mode_override(None);
        let identical = prints.iter().all(|(_, fp, _)| *fp == prints[0].1);
        all_identical &= identical;
        rows.push(Json::obj(vec![
            ("profile", Json::Str((*name).into())),
            ("min_sup_abs", Json::Int(min_sup as u64)),
            ("patterns", Json::Int(prints[0].2 as u64)),
            (
                "fingerprints",
                Json::Obj(
                    prints
                        .iter()
                        .map(|(label, fp, _)| {
                            ((*label).to_string(), Json::Str(format!("{fp:016x}")))
                        })
                        .collect(),
                ),
            ),
            ("identical", Json::Bool(identical)),
        ]));
    }
    (rows, all_identical)
}

fn main() {
    let fast = dfp_bench::fast_mode();

    let mut table = Table::new(vec!["density", "kernel", "ns/op", "speedup"]);
    let (micro, headline) = micro_section(fast, &mut table);
    table.print();
    eprintln!("headline intersection_count speedup vs scalar: {headline:.2}x");

    let (identity, all_identical) = identity_section(fast);
    assert!(
        all_identical,
        "miner output differs across DFP_BITSET modes"
    );

    let out_of_core = out_of_core_section(fast);

    let report = Json::obj(vec![
        ("bench", Json::Str("data_substrate".into())),
        ("fast_mode", Json::Bool(fast)),
        ("micro", Json::Arr(micro)),
        ("headline_speedup", Json::Num(headline)),
        ("speedup_target", Json::Num(SPEEDUP_TARGET)),
        (
            "meets_speedup_target",
            Json::Bool(headline >= SPEEDUP_TARGET),
        ),
        ("miner_identity", Json::Arr(identity)),
        ("out_of_core", out_of_core),
    ]);
    let path = write_root_json("BENCH_data_substrate", &report).expect("write report");
    eprintln!("wrote {}", path.display());
}
