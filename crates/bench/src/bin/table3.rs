//! Regenerates the paper's Table 3 (chess scalability sweep).
fn main() {
    dfp_bench::scalability::run_table3();
}
