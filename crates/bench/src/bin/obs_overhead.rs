//! Hot-path cost of the temporal observability stack: `obs_overhead`.
//!
//! Measures the per-request work the server does (CSV parse → predict →
//! render, on a batch-scoring-shaped body) in two configurations,
//! interleaved round-robin with min-of-rounds timing:
//!
//! * **disabled** — the metrics the server always records (latency
//!   histogram + exemplar), with the tail sampler off: its `begin()` is the
//!   one relaxed atomic load the real disabled path pays.
//! * **enabled** — the full stack: an enabled tail sampler running its
//!   begin/mark/finish lifecycle around every request, plus a live TSDB
//!   collector sampling the same registry every 25 ms from its own thread.
//!
//! Asserts the two guarantees the design document promises: the enabled
//! stack stays within 1% of disabled wall time (min-of-rounds), and the
//! disabled `begin()` fast path performs **zero** heap allocations
//! (counted by a wrapping global allocator — the one place in the
//! workspace that needs `unsafe`, confined to this measurement binary).
//!
//! `DFP_FAST=1` shrinks iteration counts to CI-smoke size (and relaxes the
//! ratio gate to 5% — small samples on shared runners jitter more). Writes
//! `BENCH_obs_overhead.json` at the workspace root.

use dfp_bench::report::{self, Json};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_obs::tsdb::{Collector, Source};
use dfp_obs::{TailSampler, Tsdb, TsdbConfig};
use dfp_serve::rows::{parse_rows, render_labels};
use dfp_serve::Metrics;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every heap allocation so the disabled fast path can be proven
/// allocation-free. Measurement-only `unsafe`: it delegates straight to
/// [`System`] and touches nothing else.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// The server's per-request work: parse the CSV body against the schema,
/// predict, render the label lines. Returns the rendered length so the
/// optimizer cannot discard the work.
fn request_work(model: &PatternClassifier, body: &str) -> usize {
    let schema = model.schema().expect("fitted from a raw dataset");
    let dataset = parse_rows(schema, body).expect("valid rows");
    let labels = model.predict(&dataset).expect("predict");
    render_labels(schema, &labels).len()
}

/// One instrumented request: the always-on metrics (histogram + exemplar)
/// plus whatever the given sampler's lifecycle costs. With a disabled
/// sampler this is exactly the real server's `DFP_TAIL=0` hot path.
fn instrumented_request(
    model: &PatternClassifier,
    body: &str,
    metrics: &Metrics,
    sampler: &TailSampler,
) -> usize {
    let started = Instant::now();
    let mut capture = sampler.begin();
    let len = request_work(model, body);
    if let Some(cap) = capture.as_mut() {
        cap.mark_since("predict", started);
    }
    let elapsed = started.elapsed();
    metrics.requests_total.add(1);
    metrics.observe_latency(elapsed);
    metrics.predict_latency.set_exemplar(
        "request_id",
        "bench-0000",
        elapsed.as_secs_f64(),
        dfp_obs::tsdb::now_unix_ms(),
    );
    if let Some(cap) = capture.take() {
        sampler.finish(cap, "bench-0000", "POST", "/predict", 200, 0);
    }
    len
}

fn time_round(
    model: &PatternClassifier,
    body: &str,
    metrics: &Metrics,
    sampler: &TailSampler,
    iters: usize,
) -> (Duration, usize) {
    let started = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        sink = sink.wrapping_add(instrumented_request(model, body, metrics, sampler));
    }
    (started.elapsed(), sink)
}

fn main() {
    let fast = std::env::var("DFP_FAST").map(|v| v == "1").unwrap_or(false);
    let (rounds, iters) = if fast { (8, 60) } else { (30, 250) };
    let ratio_gate = if fast { 1.05 } else { 1.01 };
    let rows_per_request = 128usize;

    let data = confusable();
    let model = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    let body: String = (0..rows_per_request)
        .map(|i| {
            if i % 2 == 0 {
                "v1,v1,v0\n"
            } else {
                "v1,v2,v1\n"
            }
        })
        .collect();

    // ── Allocation-freeness of the disabled fast path ────────────────────
    // Counted before any collector thread exists, so nothing else
    // allocates concurrently.
    let disabled_sampler = TailSampler::new(0);
    assert!(disabled_sampler.begin().is_none());
    let begin_calls = 100_000u64;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..begin_calls {
        std::hint::black_box(disabled_sampler.begin());
    }
    let begin_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        begin_allocs, 0,
        "disabled TailSampler::begin() must be allocation-free"
    );

    // ── Wall-time ratio, interleaved min-of-rounds ───────────────────────
    let dis_metrics = Metrics::new();
    let en_metrics = Arc::new(Metrics::new());
    let en_sampler = TailSampler::new(64);
    // A sane threshold so finish() walks its normal keep-decision (and
    // almost never copies a trace into the reservoir, like production).
    en_sampler.set_slow_threshold_ns(u64::MAX);

    // The enabled configuration also pays for a live collector sampling a
    // registry snapshot every 25 ms on its own thread.
    let tsdb = Arc::new(Tsdb::new(
        &TsdbConfig::default()
            .with_interval(Duration::from_millis(25))
            .with_retain(Duration::from_secs(60)),
    ));
    let snapshot_source = Arc::clone(&en_metrics);
    let sources: Vec<Source> = vec![Box::new(move || snapshot_source.snapshot())];
    let collector = Collector::start(Arc::clone(&tsdb), sources, vec![]).expect("collector starts");

    // Warm-up: touch every code path once so lazy init is off the clock.
    time_round(&model, &body, &dis_metrics, &disabled_sampler, 10);
    time_round(&model, &body, &en_metrics, &en_sampler, 10);

    let mut min_disabled = Duration::MAX;
    let mut min_enabled = Duration::MAX;
    let mut sink = 0usize;
    for _ in 0..rounds {
        let (d, s1) = time_round(&model, &body, &dis_metrics, &disabled_sampler, iters);
        let (e, s2) = time_round(&model, &body, &en_metrics, &en_sampler, iters);
        min_disabled = min_disabled.min(d);
        min_enabled = min_enabled.min(e);
        sink = sink.wrapping_add(s1).wrapping_add(s2);
    }
    drop(collector);
    std::hint::black_box(sink);

    let ratio = min_enabled.as_secs_f64() / min_disabled.as_secs_f64();
    let overhead_pct = (ratio - 1.0) * 100.0;
    println!(
        "obs_overhead: disabled {:?}, enabled {:?} per {iters}×{rows_per_request}-row round \
         → ratio {ratio:.4} ({overhead_pct:+.2}%), disabled begin(): {begin_allocs} allocs / {begin_calls} calls",
        min_disabled, min_enabled
    );

    let report = Json::obj(vec![
        ("bench", Json::Str("obs_overhead".to_string())),
        ("fast_mode", Json::Bool(fast)),
        ("rounds", Json::Int(rounds as u64)),
        ("iters_per_round", Json::Int(iters as u64)),
        ("rows_per_request", Json::Int(rows_per_request as u64)),
        ("disabled_secs", Json::Num(min_disabled.as_secs_f64())),
        ("enabled_secs", Json::Num(min_enabled.as_secs_f64())),
        ("ratio", Json::Num(ratio)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("ratio_gate", Json::Num(ratio_gate)),
        ("disabled_begin_calls", Json::Int(begin_calls)),
        ("disabled_begin_allocs", Json::Int(begin_allocs)),
    ]);
    let path = report::write_root_json("BENCH_obs_overhead", &report).expect("write report");
    println!("wrote {}", path.display());

    assert!(
        ratio <= ratio_gate,
        "enabled obs stack exceeded the wall-time gate: ratio {ratio:.4} > {ratio_gate}"
    );
}
