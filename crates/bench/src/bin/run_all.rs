//! Runs the full experiment battery: Figures 1-3, Tables 1-5, and the
//! HARMONY comparison. Respects DFP_FAST / DFP_FOLDS.
fn main() {
    dfp_bench::figures::run_figure1();
    dfp_bench::figures::run_figure2();
    dfp_bench::figures::run_figure3();
    dfp_bench::tables::run_table1();
    dfp_bench::tables::run_table2();
    dfp_bench::scalability::run_table3();
    dfp_bench::scalability::run_table4();
    dfp_bench::scalability::run_table5();
    dfp_bench::tables::run_harmony_comparison();
    println!("all experiments complete; CSV artifacts in experiments/out/");
}
