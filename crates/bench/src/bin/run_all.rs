//! Runs the full experiment battery: Figures 1-3, Tables 1-5, and the
//! HARMONY comparison. Respects DFP_FAST / DFP_FOLDS.
//!
//! `run_all [--threads 1,2,4]` additionally sweeps the thread-scaling
//! benchmark over the listed `DFP_THREADS` values, recording the speedup
//! curve in `experiments/out/BENCH_speedup.json`.
fn main() {
    let mut sweep: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                sweep = Some(dfp_bench::speedup::parse_thread_list(
                    args.next().as_deref(),
                ));
            }
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: run_all [--threads 1,2,4]");
                std::process::exit(2);
            }
        }
    }
    dfp_bench::figures::run_figure1();
    dfp_bench::figures::run_figure2();
    dfp_bench::figures::run_figure3();
    dfp_bench::tables::run_table1();
    dfp_bench::tables::run_table2();
    dfp_bench::scalability::run_table3();
    dfp_bench::scalability::run_table4();
    dfp_bench::scalability::run_table5();
    dfp_bench::tables::run_harmony_comparison();
    if let Some(counts) = sweep {
        dfp_bench::speedup::run_speedup(&counts);
    }
    println!("all experiments complete; CSV artifacts in experiments/out/");
}
