//! Thread-scaling benchmark: `speedup [--threads 1,2,4,8]`.
//!
//! Sweeps `DFP_THREADS` over the list (default `1,2,4,N`), asserts the
//! pipeline outputs are bit-identical across counts, and writes the curve
//! to `experiments/out/BENCH_speedup.json`.
fn main() {
    let mut list: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => list = args.next(),
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: speedup [--threads 1,2,4]");
                std::process::exit(2);
            }
        }
    }
    let counts = dfp_bench::speedup::parse_thread_list(list.as_deref());
    dfp_bench::speedup::run_speedup(&counts);
}
