//! Hot-swap latency benchmark: `registry_swap`.
//!
//! Measures `/m/{name}/predict` tail latency through a registry-backed
//! server in two phases — steady state (no swaps) and churn (a background
//! publisher hot-swapping the model continuously) — and asserts the two
//! robustness guarantees of the swap protocol: **zero failed requests**
//! while swaps are in flight, and **p99 inflation under 2×** relative to
//! steady state (in-flight requests hold the old version's `Arc`, so a
//! swap never blocks the serving path).
//!
//! `DFP_FAST=1` shrinks the request count to CI-smoke size. Writes
//! `BENCH_registry_swap.json` at the workspace root.

use dfp_bench::report::{self, Json, Table};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_registry::{ModelRegistry, RegistryConfig, SwapError};
use dfp_serve::ServerConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const MODEL: &str = "bench";

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; `flip` swaps the labels so
/// consecutive swap versions are distinguishable.
fn confusable(flip: bool) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, mut label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        if flip {
            label = 1 - label;
        }
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// One `POST /m/bench/predict`; `Ok` carries the latency, `Err` describes
/// the failure (non-200 status or transport error).
fn predict_once(addr: SocketAddr) -> Result<Duration, String> {
    let body = "v1,v1,v0\n";
    let request = format!(
        "POST /m/{MODEL}/predict HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let elapsed = start.elapsed();
    let status = response
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| format!("no status line in {response:?}"))?;
    if status != "200" {
        return Err(format!("status {status}"));
    }
    let answer = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    // Whatever version served, the answer is one model's — never torn.
    if answer != "c0\n" && answer != "c1\n" {
        return Err(format!("torn answer {answer:?}"));
    }
    Ok(elapsed)
}

/// Drives `requests` predicts from `CLIENTS` threads; returns every latency
/// plus the failures seen.
fn run_load(addr: SocketAddr, requests: usize) -> (Vec<Duration>, Vec<String>) {
    let per_client = requests / CLIENTS;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut failures = Vec::new();
                    for _ in 0..per_client {
                        match predict_once(addr) {
                            Ok(d) => latencies.push(d),
                            Err(e) => failures.push(e),
                        }
                    }
                    (latencies, failures)
                })
            })
            .collect();
        let mut latencies = Vec::new();
        let mut failures = Vec::new();
        for h in handles {
            let (l, f) = h.join().expect("client thread");
            latencies.extend(l);
            failures.extend(f);
        }
        (latencies, failures)
    })
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn phase_json(latencies: &mut [Duration], failures: usize) -> (f64, Json) {
    latencies.sort_unstable();
    let p50 = percentile(latencies, 50.0);
    let p99 = percentile(latencies, 99.0);
    let json = Json::obj(vec![
        ("requests", Json::Int(latencies.len() as u64)),
        ("failures", Json::Int(failures as u64)),
        ("p50_seconds", Json::Num(secs(p50))),
        ("p99_seconds", Json::Num(secs(p99))),
        (
            "max_seconds",
            Json::Num(secs(*latencies.last().expect("nonempty"))),
        ),
    ]);
    (secs(p99), json)
}

fn main() {
    let requests = if dfp_bench::fast_mode() { 400 } else { 2000 };

    let root = std::env::temp_dir().join(format!("dfp-bench-registry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let registry = Arc::new(
        ModelRegistry::open_with_validator(
            RegistryConfig::new(&root),
            Some(dfp_serve::registry_validator()),
        )
        .expect("open registry"),
    );
    let v1 = PatternClassifier::fit(&confusable(false), &FrameworkConfig::pat_fs()).expect("fit");
    let v2 = PatternClassifier::fit(&confusable(true), &FrameworkConfig::pat_fs()).expect("fit");
    registry
        .publish_model(MODEL, &v1, Some("v1,v1,v0"))
        .expect("seed publish");

    let handle = dfp_serve::serve_registry_with_config(
        None,
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_threads(CLIENTS),
    )
    .expect("bind");
    let addr = handle.addr();

    // Warm-up: connection setup, lazy metric registration, page-in.
    let (_, warm_failures) = run_load(addr, CLIENTS * 8);
    assert!(
        warm_failures.is_empty(),
        "warm-up failed: {warm_failures:?}"
    );

    // --- Phase 1: steady state, no swaps. ---
    let (mut steady, steady_failures) = run_load(addr, requests);

    // --- Phase 2: identical load under continuous hot-swaps. ---
    let stop = Arc::new(AtomicBool::new(false));
    let swaps = Arc::new(AtomicU64::new(0));
    let swapper = {
        let registry = Arc::clone(&registry);
        let (stop, swaps) = (Arc::clone(&stop), Arc::clone(&swaps));
        let (b1, b2) = (dfp_model::to_bytes(&v1), dfp_model::to_bytes(&v2));
        std::thread::spawn(move || {
            let mut flip = true;
            while !stop.load(Ordering::Relaxed) {
                let bytes = if flip { &b2 } else { &b1 };
                match registry.publish_bytes(MODEL, bytes, None) {
                    Ok(_) => {
                        swaps.fetch_add(1, Ordering::Relaxed);
                        flip = !flip;
                    }
                    Err(SwapError::Busy) => {}
                    Err(e) => panic!("swap failed mid-benchmark: {e}"),
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let (mut churn, churn_failures) = run_load(addr, requests);
    stop.store(true, Ordering::Relaxed);
    swapper.join().expect("swapper thread");
    let swap_count = swaps.load(Ordering::Relaxed);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    // --- Report. ---
    let (steady_p99, steady_json) = phase_json(&mut steady, steady_failures.len());
    let (churn_p99, churn_json) = phase_json(&mut churn, churn_failures.len());
    // Floor the baseline so sub-millisecond debug-build jitter can't turn
    // the ratio into noise.
    let inflation = churn_p99 / steady_p99.max(200e-6);

    let mut table = Table::new(vec!["phase", "p50 ms", "p99 ms", "failures"]);
    for (name, lat, fails) in [
        ("steady", &steady, &steady_failures),
        ("swap churn", &churn, &churn_failures),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.3}", secs(percentile(lat, 50.0)) * 1e3),
            format!("{:.3}", secs(percentile(lat, 99.0)) * 1e3),
            format!("{}", fails.len()),
        ]);
    }
    table.print();
    println!("hot-swaps completed during churn phase: {swap_count}");
    println!("p99 inflation under churn: {inflation:.2}x");

    let json = Json::obj(vec![
        (
            "workload",
            Json::obj(vec![
                ("requests_per_phase", Json::Int(requests as u64)),
                ("clients", Json::Int(CLIENTS as u64)),
                ("swaps", Json::Int(swap_count)),
            ]),
        ),
        ("steady", steady_json),
        ("churn", churn_json),
        ("p99_inflation", Json::Num(inflation)),
    ]);
    let path = report::write_root_json("BENCH_registry_swap", &json).expect("write report");
    println!("wrote {}", path.display());

    // The two acceptance gates: swaps must be invisible to correctness and
    // nearly invisible to tail latency.
    assert!(
        steady_failures.is_empty() && churn_failures.is_empty(),
        "failed requests — steady: {steady_failures:?}, churn: {churn_failures:?}"
    );
    assert!(swap_count >= 1, "churn phase completed no swaps");
    assert!(
        inflation < 2.0,
        "p99 inflated {inflation:.2}x under hot-swap churn (steady {steady_p99:.6}s, churn {churn_p99:.6}s)"
    );
}
