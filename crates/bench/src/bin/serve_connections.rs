//! Connection-scaling benchmark: `serve_connections`.
//!
//! Measures what the epoll readiness loop buys over the threaded blocking
//! core: the event loop parks thousands of idle keep-alive connections on a
//! slab entry each (no thread, no worker), then answers fresh requests with
//! latency comparable to the threaded core serving at low concurrency.
//!
//! Procedure:
//!   1. threaded baseline — sequential probe requests, p50/p99 per request;
//!   2. event loop — open `CONNS` keep-alive connections (each completes one
//!      request, then parks), confirm `dfp_serve_open_connections` sees them
//!      and record the RSS cost, then run the identical probe with the whole
//!      herd still parked.
//!
//! `DFP_FAST=1` shrinks the herd and the probe to CI-smoke size. The herd's
//! client ends live in a re-exec'd child process (`--herd`), so each side
//! needs only `CONNS` + change file descriptors and the recorded RSS delta
//! is the server process alone.
//!
//! Writes `BENCH_serve_connections.json` at the workspace root.

use dfp_bench::report::{self, Json, Table};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::{ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise. Tiny on
/// purpose: the model must be cheap so the probe times the transport, not
/// the classifier.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn serve(event_loop: bool, max_conns: usize) -> ServerHandle {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    let cfg = ServerConfig::default()
        .with_threads(2)
        .with_event_loop(event_loop)
        .with_max_conns(max_conns);
    dfp_serve::serve_with_config(fitted, "127.0.0.1:0", cfg).expect("bind")
}

/// One full request over a fresh connection (connect → send → read to EOF),
/// i.e. the accept path is billed too — that is where the cores differ.
fn probe_once(addr: SocketAddr) -> Duration {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nHost: b\r\nContent-Length: 9\r\nConnection: close\r\n\r\nv1,v1,v0\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    assert!(response.starts_with("HTTP/1.1 200 "), "{response}");
    assert!(response.ends_with("c0\n"), "{response}");
    start.elapsed()
}

/// Sequential probe; returns per-request latencies.
fn probe(addr: SocketAddr, n: usize) -> Vec<Duration> {
    (0..n).map(|_| probe_once(addr)).collect()
}

/// Reads one Content-Length-framed response without closing the socket.
fn read_keep_alive_response(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let cl: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .trim()
        .parse()
        .expect("numeric Content-Length");
    while buf.len() < head_end + cl {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    head
}

/// Opens `n` keep-alive connections; each completes one `/healthz` exchange
/// and then sits idle. Parallel openers keep wall time reasonable.
fn park_connections(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    const OPENERS: usize = 32;
    let per = n.div_ceil(OPENERS);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..OPENERS)
            .map(|o| {
                let mine = per.min(n.saturating_sub(o * per));
                s.spawn(move || {
                    let mut conns = Vec::with_capacity(mine);
                    for _ in 0..mine {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(30)))
                            .unwrap();
                        stream
                            .write_all(b"GET /healthz HTTP/1.1\r\nHost: b\r\n\r\n")
                            .expect("send");
                        let head = read_keep_alive_response(&mut stream);
                        assert!(head.starts_with("HTTP/1.1 200 "), "{head}");
                        conns.push(stream);
                    }
                    conns
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("opener"))
            .collect()
    })
}

/// Child mode: park the herd against the given address, announce readiness
/// on stdout, and hold every socket open until the parent closes our stdin.
/// A separate process keeps the fd budget per-process and keeps the herd's
/// client-side buffers out of the server's RSS measurement.
fn run_herd(addr: SocketAddr, n: usize) -> ! {
    let parked = park_connections(addr, n);
    println!("READY {}", parked.len());
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink); // blocks until parent closes the pipe
    drop(parked);
    std::process::exit(0);
}

/// Parent side: spawn this same binary in `--herd` mode and wait for it to
/// report all connections parked. Dropping the returned child's stdin (via
/// `release_herd`) lets it exit.
fn spawn_herd(addr: SocketAddr, n: usize) -> std::process::Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .arg("--herd")
        .arg(addr.to_string())
        .arg(n.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn herd child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    std::io::BufRead::read_line(&mut std::io::BufReader::new(stdout), &mut line)
        .expect("read child readiness");
    assert!(
        line.starts_with("READY "),
        "herd child failed before parking: {line:?}"
    );
    let ready: usize = line[6..].trim().parse().expect("herd count");
    assert_eq!(ready, n, "herd parked {ready} of {n} connections");
    child
}

fn release_herd(mut child: std::process::Child) {
    drop(child.stdin.take()); // EOF on the child's stdin releases the herd
    let status = child.wait().expect("herd child exit");
    assert!(status.success(), "herd child exited with {status}");
}

/// Scrapes `/metrics` over a fresh connection and extracts one value.
fn metric(addr: SocketAddr, name: &str) -> i64 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    response
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{name} missing from /metrics"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not numeric"))
}

/// Resident set size of this (server) process in kilobytes, from /proc.
/// The herd's client ends live in the child, so the delta across parking
/// is the server-side cost alone. Zero where /proc is unavailable.
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--herd" {
        let addr: SocketAddr = args[2].parse().expect("herd addr");
        let n: usize = args[3].parse().expect("herd size");
        run_herd(addr, n);
    }

    let fast = std::env::var("DFP_FAST").map(|v| v == "1").unwrap_or(false);
    let conns = if fast { 256 } else { 10_240 };
    let probes = if fast { 40 } else { 400 };

    // --- Threaded baseline: probe latency with no parked herd. ---
    let handle = serve(false, conns + 64);
    let addr = handle.addr();
    let _ = probe(addr, probes / 4); // warm-up, not billed
    let mut threaded = probe(addr, probes);
    handle.shutdown();
    threaded.sort();
    let threaded_p50 = percentile(&threaded, 0.50);
    let threaded_p99 = percentile(&threaded, 0.99);

    // --- Event loop: park the herd, then run the identical probe. ---
    let handle = serve(true, conns + 64);
    let addr = handle.addr();
    let rss_before = vm_rss_kb();
    let open_start = Instant::now();
    let herd = spawn_herd(addr, conns);
    let open_secs = open_start.elapsed().as_secs_f64();
    let rss_after = vm_rss_kb();

    let open_gauge = metric(addr, "dfp_serve_open_connections");
    assert!(
        open_gauge >= conns as i64,
        "gauge {open_gauge} < parked {conns}"
    );

    let _ = probe(addr, probes / 4); // warm-up, not billed
    let mut event = probe(addr, probes);
    event.sort();
    let event_p50 = percentile(&event, 0.50);
    let event_p99 = percentile(&event, 0.99);

    release_herd(herd);
    handle.shutdown();

    let p99_ratio = micros(event_p99) / micros(threaded_p99).max(1e-9);
    let rss_delta_kb = rss_after.saturating_sub(rss_before);
    let kb_per_conn = rss_delta_kb as f64 / conns as f64;

    let mut table = Table::new(vec!["core", "parked conns", "p50 µs", "p99 µs"]);
    table.row(vec![
        "threaded".to_string(),
        "0".to_string(),
        format!("{:.0}", micros(threaded_p50)),
        format!("{:.0}", micros(threaded_p99)),
    ]);
    table.row(vec![
        "event loop".to_string(),
        format!("{conns}"),
        format!("{:.0}", micros(event_p50)),
        format!("{:.0}", micros(event_p99)),
    ]);
    table.print();
    println!(
        "parked {conns} keep-alive connections in {open_secs:.2}s \
         ({rss_delta_kb} kB server RSS, {kb_per_conn:.1} kB/conn)"
    );
    println!("p99 ratio (event with herd / threaded idle): {p99_ratio:.2}x");

    let json = Json::obj(vec![
        (
            "workload",
            Json::obj(vec![
                ("connections", Json::Int(conns as u64)),
                ("probe_requests", Json::Int(probes as u64)),
                ("fast", Json::Int(u64::from(fast))),
            ]),
        ),
        (
            "threaded",
            Json::obj(vec![
                ("p50_us", Json::Num(micros(threaded_p50))),
                ("p99_us", Json::Num(micros(threaded_p99))),
            ]),
        ),
        (
            "event_loop",
            Json::obj(vec![
                ("parked_connections", Json::Int(conns as u64)),
                ("open_connections_gauge", Json::Int(open_gauge as u64)),
                ("open_seconds", Json::Num(open_secs)),
                ("p50_us", Json::Num(micros(event_p50))),
                ("p99_us", Json::Num(micros(event_p99))),
                ("rss_delta_kb", Json::Int(rss_delta_kb)),
                ("kb_per_connection", Json::Num(kb_per_conn)),
            ]),
        ),
        ("p99_ratio", Json::Num(p99_ratio)),
    ]);
    let path = report::write_root_json("BENCH_serve_connections", &json).expect("write report");
    println!("wrote {}", path.display());

    // The readiness loop must hold the full herd AND stay competitive on
    // fresh-request latency. The ratio floor is checked on the full-size
    // run only; smoke herds are too small to smooth scheduler noise.
    if !fast {
        assert!(
            conns >= 10_000,
            "full run must park at least 10k connections"
        );
        assert!(
            p99_ratio <= 1.5,
            "event-loop p99 {:.0}µs is more than 1.5x the threaded baseline {:.0}µs",
            micros(event_p99),
            micros(threaded_p99)
        );
    }
}
