//! Regenerates §5's accuracy comparison against a HARMONY-style baseline.
fn main() {
    dfp_bench::tables::run_harmony_comparison();
}
