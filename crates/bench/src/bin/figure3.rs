//! Regenerates the paper's Figure 3.
fn main() {
    dfp_bench::figures::run_figure3();
}
