//! Regenerates the paper's Table 1 (SVM accuracies, 5 variants × 19 datasets).
fn main() {
    dfp_bench::tables::run_table1();
}
