//! Regenerates the paper's Table 5 (letter-recognition scalability sweep).
fn main() {
    dfp_bench::scalability::run_table5();
}
