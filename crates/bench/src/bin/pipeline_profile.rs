//! `pipeline_profile` — per-stage pipeline timings → `BENCH_pipeline.json`.
//!
//! Fits the full framework pipeline (discretize → itemize → mine → select →
//! transform → train) on a dense synthetic profile, scores the training set,
//! and reads each stage's wall-clock out of the process-wide
//! `dfp_pipeline_stage_seconds` histograms. The per-stage breakdown lands in
//! `BENCH_pipeline.json` at the repo root so the bench trajectory
//! accumulates comparable timings across commits.
//!
//! `DFP_FAST=1` switches to a smaller profile; `DFP_TRACE=<path>` also
//! exports the run's span tree as JSONL.

use dfp_bench::report::{write_root_json, Json, Table};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::synth::profile_by_name;
use std::time::Instant;

fn main() {
    let trace = dfp_obs::TraceSession::from_env().expect("DFP_TRACE file");
    let profile_name = if dfp_bench::fast_mode() {
        "labor"
    } else {
        "austral"
    };
    let data = profile_by_name(profile_name).expect("profile").generate();
    eprintln!(
        "pipeline_profile: {profile_name} ({} instances, {} attributes)",
        data.len(),
        data.schema.n_attributes()
    );

    let start = Instant::now();
    let model = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    let labels = model.predict(&data).expect("predict");
    let total = start.elapsed().as_secs_f64();

    let mut table = Table::new(vec!["stage", "calls", "seconds", "% of total"]);
    let mut stages = Vec::new();
    let mut covered = 0.0;
    for stage in dfp_obs::metrics::dfp::STAGES {
        let h = dfp_obs::metrics::dfp::pipeline_stage(stage);
        let secs = h.sum_nanos() as f64 / 1e9;
        covered += secs;
        table.row(vec![
            stage.to_string(),
            h.count().to_string(),
            format!("{secs:.6}"),
            format!("{:.1}", 100.0 * secs / total.max(f64::MIN_POSITIVE)),
        ]);
        stages.push((
            stage.to_string(),
            Json::obj(vec![
                ("calls", Json::Int(h.count())),
                ("seconds", Json::Num(secs)),
            ]),
        ));
    }
    table.print();
    eprintln!(
        "total {total:.6}s, {:.1}% covered by stage histograms",
        100.0 * covered / total.max(f64::MIN_POSITIVE)
    );

    let report = Json::obj(vec![
        ("profile", Json::Str(profile_name.into())),
        ("instances", Json::Int(data.len() as u64)),
        ("rows_scored", Json::Int(labels.len() as u64)),
        ("total_seconds", Json::Num(total)),
        ("stage_seconds_covered", Json::Num(covered)),
        ("stages", Json::Obj(stages)),
    ]);
    let path = write_root_json("BENCH_pipeline", &report).expect("write BENCH_pipeline.json");
    eprintln!("wrote {}", path.display());

    if let Some(session) = trace {
        let spans = session.flush().expect("trace flush");
        eprintln!("traced {spans} spans to {}", session.path().display());
    }
}
