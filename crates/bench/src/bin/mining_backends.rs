//! `mining_backends` — all five miners over UCI profiles → `BENCH_mining_backends.json`.
//!
//! Sweeps every `MinerKind` backend (closed, FP-growth, Eclat, Apriori,
//! nodeset) over a mix of sparse small-UCI profiles, the paper's dense
//! scalability profiles (chess / waveform / letter), and a synthetic
//! engineered to be extremely dense, mining each at the profile's default
//! relative support. Per profile the report records the PPC-tree density
//! (the statistic the nodeset engine's auto mode switches on), per-miner
//! wall-clock / pattern counts / completeness, and the nodeset-vs-FP-growth
//! speedup — the headline the nodeset backend exists for on dense data.
//!
//! `DFP_FAST=1` shrinks the profile list and iteration count for CI smoke;
//! each run is capped by a deadline so a pathological backend degrades to a
//! partial (flagged incomplete) result instead of hanging the sweep.

use dfp_bench::report::{write_root_json, Json, Table};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::synth::{profile_by_name, UciProfile};
use dfp_data::transactions::TransactionSet;
use dfp_mining::anytime::Mined;
use dfp_mining::{apriori, closed, eclat, fpgrowth, nodeset, MineOptions, MinerKind};
use std::time::{Duration, Instant};

/// A synthetic regime denser than chess: binary attributes with heavily
/// concentrated values, so nearly every item clears `min_sup` and
/// DiffNodesets stay tiny while conditional FP-trees stay bushy.
fn dense_synth() -> UciProfile {
    UciProfile {
        name: "dense-synth",
        n_instances: 2000,
        n_attrs: 18,
        arity: 2,
        numeric_fraction: 0.0,
        n_classes: 2,
        priors: &[0.5, 0.5],
        default_min_sup: 0.55,
        value_concentration: 0.08,
        class_skew: 0.15,
        patterns_per_class: 3,
        pattern_len: (2, 4),
        expr_in: 0.8,
        expr_out: 0.1,
        missing_rate: 0.0,
    }
}

fn itemize(profile: &UciProfile) -> TransactionSet {
    let data = profile.generate();
    let (cat, _) = data.discretize(&MdlDiscretizer::new());
    cat.to_transactions().0
}

fn main() {
    let fast = dfp_bench::fast_mode();
    // Memoization would let the second backend answer from the first
    // backend's timing run; the sweep must measure every engine cold.
    dfp_mining::memo::set_enabled(Some(false));

    let profile_names: &[&str] = if fast {
        &["labor", "breast", "chess"]
    } else {
        &["austral", "breast", "sonar", "chess", "waveform", "letter"]
    };
    let mut profiles: Vec<UciProfile> = profile_names
        .iter()
        .map(|n| profile_by_name(n).expect("catalog profile"))
        .collect();
    profiles.push(dense_synth());

    let iters = if fast { 1 } else { 3 };
    let per_run_deadline = if fast {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(60)
    };

    let miners = [
        MinerKind::Closed,
        MinerKind::FpGrowth,
        MinerKind::Eclat,
        MinerKind::Apriori,
        MinerKind::Nodeset,
    ];

    let mut table = Table::new(vec![
        "profile", "items", "min_sup", "density", "miner", "seconds", "patterns", "complete",
    ]);
    let mut rows = Vec::new();
    for profile in &profiles {
        let ts = itemize(profile);
        let min_sup = ((ts.len() as f64 * profile.default_min_sup).ceil() as usize).max(1);
        let density = dfp_nodeset::tree::PpcTree::build(&ts, min_sup).density();

        let mut per_miner = Vec::new();
        let mut fp_secs = f64::NAN;
        let mut nodeset_secs = f64::NAN;
        for kind in miners {
            // Best-of-N wall clock; patterns/complete are run-invariant.
            let mut best = f64::INFINITY;
            let mut last: Option<Mined> = None;
            for _ in 0..iters {
                let opts = MineOptions::default().with_time_budget(per_run_deadline);
                let start = Instant::now();
                let mined = run(kind, &ts, min_sup, &opts);
                let secs = start.elapsed().as_secs_f64();
                best = best.min(secs);
                last = Some(mined);
            }
            let mined = last.expect("at least one iteration");
            match kind {
                MinerKind::FpGrowth => fp_secs = best,
                MinerKind::Nodeset => nodeset_secs = best,
                _ => {}
            }
            table.row(vec![
                profile.name.to_string(),
                ts.n_items().to_string(),
                min_sup.to_string(),
                format!("{density:.3}"),
                kind.name().to_string(),
                format!("{best:.4}"),
                mined.patterns.len().to_string(),
                mined.complete.to_string(),
            ]);
            per_miner.push((
                kind.name().to_string(),
                Json::obj(vec![
                    ("seconds", Json::Num(best)),
                    ("patterns", Json::Int(mined.patterns.len() as u64)),
                    ("complete", Json::Bool(mined.complete)),
                ]),
            ));
        }

        let speedup = fp_secs / nodeset_secs;
        eprintln!(
            "{}: density {density:.3}, nodeset vs fpgrowth speedup {speedup:.2}x",
            profile.name
        );
        rows.push(Json::obj(vec![
            ("profile", Json::Str(profile.name.into())),
            ("instances", Json::Int(ts.len() as u64)),
            ("items", Json::Int(ts.n_items() as u64)),
            ("min_sup_abs", Json::Int(min_sup as u64)),
            ("ppc_density", Json::Num(density)),
            (
                "dense",
                Json::Bool(density >= dfp_nodeset::mine::DENSE_DIFF_THRESHOLD),
            ),
            ("nodeset_vs_fpgrowth_speedup", Json::Num(speedup)),
            ("miners", Json::Obj(per_miner)),
        ]));
    }
    table.print();

    let report = Json::obj(vec![
        ("bench", Json::Str("mining_backends".into())),
        ("fast_mode", Json::Bool(fast)),
        ("iterations", Json::Int(iters as u64)),
        (
            "deadline_seconds",
            Json::Num(per_run_deadline.as_secs_f64()),
        ),
        ("profiles", Json::Arr(rows)),
    ]);
    let path =
        write_root_json("BENCH_mining_backends", &report).expect("write BENCH_mining_backends");
    eprintln!("wrote {}", path.display());
}

fn run(kind: MinerKind, ts: &TransactionSet, min_sup: usize, opts: &MineOptions) -> Mined {
    match kind {
        MinerKind::Closed => closed::mine_closed_anytime(ts, min_sup, opts),
        MinerKind::FpGrowth => fpgrowth::mine_anytime(ts, min_sup, opts),
        MinerKind::Eclat => eclat::mine_anytime(ts, min_sup, opts),
        MinerKind::Apriori => apriori::mine_anytime(ts, min_sup, opts),
        MinerKind::Nodeset => nodeset::mine_anytime(ts, min_sup, opts),
    }
    .expect("anytime mining succeeds")
}
