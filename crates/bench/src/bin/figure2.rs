//! Regenerates the paper's Figure 2.
fn main() {
    dfp_bench::figures::run_figure2();
}
