//! Tables 1–2: accuracy of the five framework variants across the 19 small
//! UCI profiles, by SVM (Table 1) and by C4.5 (Table 2), plus §5's HARMONY
//! comparison.

use crate::report::{pct, Table};
use dfp_baselines::harmony::{HarmonyClassifier, HarmonyParams};
use dfp_core::{cross_validate_framework, FrameworkConfig, PatternClassifier};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::split::stratified_holdout;
use dfp_data::synth::{profile_by_name, small_uci_profiles, UciProfile};
use dfp_measures::MinSupStrategy;
use dfp_mining::{MineOptions, MiningConfig};
use dfp_select::MmrfsConfig;

/// A tractability valve for the densest profiles: MMRFS only considers this
/// many top-relevance candidates (the selected set is far smaller anyway).
const MAX_CANDIDATES: usize = 20_000;

fn mmrfs_cfg() -> MmrfsConfig {
    MmrfsConfig {
        max_candidates: Some(MAX_CANDIDATES),
        ..MmrfsConfig::default()
    }
}

/// The Table 1 variant configurations for one dataset profile.
fn svm_variants(p: &UciProfile) -> Vec<(&'static str, FrameworkConfig)> {
    let min_sup = MinSupStrategy::Relative(p.default_min_sup);
    vec![
        ("Item_All", FrameworkConfig::item_all()),
        ("Item_FS", {
            let mut c = FrameworkConfig::item_fs();
            if let dfp_core::FeatureMode::ItemsSelected(m) = &mut c.features {
                *m = mmrfs_cfg();
            }
            c
        }),
        ("Item_RBF", FrameworkConfig::item_rbf(1.0, 0.1)),
        (
            "Pat_All",
            FrameworkConfig::pat_all().with_min_sup(min_sup.clone()),
        ),
        ("Pat_FS", pat_fs_cfg(p)),
    ]
}

fn pat_fs_cfg(p: &UciProfile) -> FrameworkConfig {
    let mut c = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Relative(p.default_min_sup));
    if let dfp_core::FeatureMode::Patterns { selection, .. } = &mut c.features {
        *selection = dfp_core::SelectionStrategy::Mmrfs(mmrfs_cfg());
    }
    c
}

/// The Table 2 variants (C4.5 model; the paper's Table 2 omits Item_RBF).
fn c45_variants(p: &UciProfile) -> Vec<(&'static str, FrameworkConfig)> {
    svm_variants(p)
        .into_iter()
        .filter(|(name, _)| *name != "Item_RBF")
        .map(|(name, cfg)| (name, cfg.with_c45()))
        .collect()
}

fn run_accuracy_table(
    title: &str,
    csv_name: &str,
    variants_of: impl Fn(&UciProfile) -> Vec<(&'static str, FrameworkConfig)>,
) {
    let folds = crate::folds();
    let profiles = small_uci_profiles();
    let profiles: Vec<UciProfile> = if crate::fast_mode() {
        profiles.into_iter().take(4).collect()
    } else {
        profiles
    };
    let names: Vec<&str> = variants_of(&profiles[0]).iter().map(|(n, _)| *n).collect();
    println!("== {title} ({folds}-fold cross validation) ==\n");
    let mut header = vec!["dataset".to_string()];
    header.extend(names.iter().map(|s| s.to_string()));
    let mut table = Table::new(header);

    let mut wins = vec![0usize; names.len()];
    for p in &profiles {
        let data = p.generate();
        let mut cells = vec![p.name.to_string()];
        let mut accs = Vec::new();
        for (_, cfg) in variants_of(p) {
            let cv = cross_validate_framework(&data, &cfg, folds, 7)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            accs.push(cv.mean());
            cells.push(pct(cv.mean()));
        }
        let best = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for (i, &a) in accs.iter().enumerate() {
            if (a - best).abs() < 1e-9 {
                wins[i] += 1;
            }
        }
        table.row(cells);
        println!("{}", table.render().lines().last().unwrap_or(""));
    }
    println!();
    table.print();
    let path = table.write_csv(csv_name).expect("csv");
    println!(
        "\nwins per variant (ties counted): {:?}",
        names.iter().zip(&wins).collect::<Vec<_>>()
    );
    println!("csv written to {}\n", path.display());
}

/// Table 1: SVM accuracy on frequent combined features vs single features.
pub fn run_table1() {
    run_accuracy_table(
        "Table 1: accuracy by SVM on frequent combined features vs single features",
        "table1_svm",
        svm_variants,
    );
}

/// Table 2: C4.5 accuracy on frequent combined features vs single features.
pub fn run_table2() {
    run_accuracy_table(
        "Table 2: accuracy by C4.5 on frequent combined features vs single features",
        "table2_c45",
        c45_variants,
    );
}

/// §5's HARMONY comparison on the two dense profiles the paper cites
/// (waveform: "+11.94%", letter: "+3.40%").
pub fn run_harmony_comparison() {
    println!("== §5 comparison: framework (Pat_FS) vs HARMONY ==\n");
    let mut table = Table::new(vec!["dataset", "min_sup", "Pat_FS", "HARMONY", "delta"]);
    let cases = if crate::fast_mode() {
        vec![("waveform", 200usize)]
    } else {
        vec![("waveform", 150usize), ("letter", 3500)]
    };
    for (name, abs_sup) in cases {
        let profile = profile_by_name(name).expect("profile");
        let data = profile.generate();
        let fold = stratified_holdout(&data.labels, 0.3, 13);
        let train = data.subset(&fold.train);
        let test = data.subset(&fold.test);
        let rel = abs_sup as f64 / data.len() as f64;

        let mut cfg = FrameworkConfig::pat_fs().with_min_sup(MinSupStrategy::Relative(rel));
        if let dfp_core::FeatureMode::Patterns { selection, .. } = &mut cfg.features {
            *selection = dfp_core::SelectionStrategy::Mmrfs(MmrfsConfig {
                max_candidates: Some(10_000),
                ..MmrfsConfig::default()
            });
        }
        let model = PatternClassifier::fit(&train, &cfg).expect("framework fit");
        let f_acc = model.accuracy(&test);

        // Baseline on the same itemized split (profiles are categorical).
        let (train_cat, disc) = train.discretize(&MdlDiscretizer::new());
        let test_cat = disc.apply(&test);
        let (train_ts, _) = train_cat.to_transactions();
        let (test_ts, _) = test_cat.to_transactions();
        let harmony = HarmonyClassifier::fit(
            &train_ts,
            &HarmonyParams {
                mining: MiningConfig {
                    min_sup_rel: rel,
                    options: MineOptions::default()
                        .with_min_len(1)
                        .with_max_patterns(2_000_000),
                    ..MiningConfig::default()
                },
                ..HarmonyParams::default()
            },
        )
        .expect("harmony fit");
        let h_acc = harmony.accuracy(&test_ts);

        table.row(vec![
            name.to_string(),
            abs_sup.to_string(),
            pct(f_acc),
            pct(h_acc),
            format!("{:+.2}", (f_acc - h_acc) * 100.0),
        ]);
    }
    table.print();
    let path = table.write_csv("harmony_comparison").expect("csv");
    println!("\ncsv written to {}\n", path.display());
}
