//! Output helpers: aligned stdout tables, CSV files, and JSON reports under
//! `experiments/out/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A JSON value for benchmark reports — hand-rolled (no external deps),
/// rendered pretty-printed with stable field order.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (rendered via `{:?}`, so round-trippable).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A boolean (rendered as a bare `true`/`false`, not a string).
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj<S: Into<String>>(fields: Vec<(S, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders with two-space indentation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    out.push_str(&format!("\"{k}\": "));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Writes a JSON report to `experiments/out/<name>.json`.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let path = out_path_ext(name, "json");
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", value.render())?;
    Ok(path)
}

/// Writes a JSON report to `<name>.json` at the workspace root — for
/// trajectory files like `BENCH_pipeline.json` that tooling expects to find
/// next to `Cargo.toml` rather than under `experiments/out/`.
pub fn write_root_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let mut path = workspace_root();
    path.push(format!("{name}.json"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", value.render())?;
    Ok(path)
}

/// A simple text table with a header and string rows.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `experiments/out/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let path = out_path(name);
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// `experiments/out/<name>.csv`, creating the directory as needed. Resolves
/// relative to the workspace root when run via `cargo run -p dfp-bench`.
pub fn out_path(name: &str) -> PathBuf {
    out_path_ext(name, "csv")
}

/// `experiments/out/<name>.<ext>`, creating the directory as needed.
pub fn out_path_ext(name: &str, ext: &str) -> PathBuf {
    let mut dir = workspace_root();
    dir.push("experiments");
    dir.push("out");
    let _ = fs::create_dir_all(&dir);
    dir.push(format!("{name}.{ext}"));
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Writes raw CSV lines (for scatter data too wide for `Table`).
pub fn write_raw_csv(name: &str, header: &str, lines: &[String]) -> std::io::Result<PathBuf> {
    let path = out_path(name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for l in lines {
        writeln!(f, "{l}")?;
    }
    Ok(path)
}

/// Formats a ratio as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1.00"]);
        t.row(vec!["long-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.00"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.9145), "91.45");
        assert_eq!(pct(1.0), "100.00");
    }

    #[test]
    fn json_renders_and_escapes() {
        let v = Json::obj(vec![
            ("name", Json::Str("a \"b\"\n".into())),
            ("n", Json::Int(3)),
            ("yes", Json::Bool(true)),
            ("no", Json::Bool(false)),
            ("x", Json::Num(0.5)),
            ("nan", Json::Num(f64::NAN)),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"a \\\"b\\\"\\n\""), "{s}");
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"yes\": true"), "{s}");
        assert!(s.contains("\"no\": false"), "{s}");
        assert!(s.contains("\"x\": 0.5"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn json_written() {
        let v = Json::obj(vec![("k", Json::Int(1))]);
        let path = write_json("report_json_test", &v).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\n  \"k\": 1\n}\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn csv_written() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        let path = t.write_csv("report_test").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_file(path);
    }
}
