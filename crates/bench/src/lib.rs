//! # dfp-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§4), each
//! regenerating the corresponding artifact on the synthetic UCI profiles:
//!
//! | binary                | paper artifact |
//! |-----------------------|----------------|
//! | `figure1`             | Fig. 1 — information gain vs pattern length |
//! | `figure2`             | Fig. 2 — information gain + `IGub` vs support |
//! | `figure3`             | Fig. 3 — Fisher score + `FRub` vs support |
//! | `table1`              | Tab. 1 — SVM accuracy, 5 variants × 19 datasets |
//! | `table2`              | Tab. 2 — C4.5 accuracy, 4 variants × 19 datasets |
//! | `table3`/`table4`/`table5` | Tabs. 3–5 — scalability sweeps on chess / waveform / letter |
//! | `harmony_comparison`  | §5's accuracy comparison against HARMONY |
//! | `run_all`             | the full battery |
//!
//! Every run prints the paper-formatted table to stdout and writes CSV into
//! `experiments/out/`. Environment knobs:
//!
//! * `DFP_FOLDS` — cross-validation folds for Tables 1–2 (default 10);
//! * `DFP_FAST=1` — smaller fold counts and dataset subsets for smoke runs.

#![forbid(unsafe_code)]

pub mod figures;
pub mod report;
pub mod scalability;
pub mod speedup;
pub mod tables;

/// Number of CV folds from the environment (default `10`, `3` under
/// `DFP_FAST=1`).
pub fn folds() -> usize {
    if let Ok(v) = std::env::var("DFP_FOLDS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(2);
        }
    }
    if fast_mode() {
        3
    } else {
        10
    }
}

/// `true` when `DFP_FAST=1` — smoke-test sizing.
pub fn fast_mode() -> bool {
    std::env::var("DFP_FAST").map(|v| v == "1").unwrap_or(false)
}
