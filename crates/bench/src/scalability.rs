//! Tables 3–5: scalability sweeps on the dense profiles. For each
//! `min_sup` the harness reports the number of closed patterns, the pattern
//! mining + feature selection time (the paper's `Time` column), and the
//! accuracy of SVM and C4.5 trained on the selected feature space.
//! The `min_sup = 1` row reproduces the paper's intractability result:
//! counting-only enumeration under a budget either yields the raw frequent
//! count (waveform / letter) or aborts (chess, "could not complete").

use crate::report::{write_json, Json, Table};
use dfp_classify::svm::{LinearSvm, LinearSvmParams};
use dfp_classify::tree::{C45Params, C45};
use dfp_classify::Classifier;
use dfp_data::split::stratified_holdout;
use dfp_data::synth::profile_by_name;
use dfp_data::transactions::TransactionSet;
use dfp_mining::count::count_frequent;
use dfp_mining::per_class::MinerKind;
use dfp_mining::{mine_features, MineOptions, MiningConfig, MiningError};
use dfp_select::{mmrfs, FeatureSpace, MmrfsConfig};
use std::time::Instant;

/// Enumeration budget for the `min_sup = 1` row.
const COUNT_BUDGET: u64 = 25_000_000;
/// MMRFS candidate valve for very low supports.
const MAX_CANDIDATES: usize = 20_000;

fn mining_cfg(rel: f64) -> MiningConfig {
    MiningConfig {
        min_sup_rel: rel,
        miner: MinerKind::Closed,
        options: MineOptions::default()
            .with_min_len(2)
            .with_max_patterns(2_000_000),
        per_class: true,
    }
}

fn selection_cfg() -> MmrfsConfig {
    MmrfsConfig {
        max_candidates: Some(MAX_CANDIDATES),
        ..MmrfsConfig::default()
    }
}

/// One measured scalability row: counts plus per-stage wall-clock seconds.
struct StageRow {
    n_patterns: usize,
    n_selected: usize,
    mine_s: f64,
    select_s: f64,
}

/// Mining + MMRFS on `ts` at an absolute global support, timing each stage.
fn mine_and_select(ts: &TransactionSet, abs_sup: usize) -> Result<StageRow, MiningError> {
    let rel = abs_sup as f64 / ts.len().max(1) as f64;
    let t0 = Instant::now();
    let candidates = mine_features(ts, &mining_cfg(rel))?;
    let mine_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let selected = mmrfs(ts, &candidates, &selection_cfg());
    Ok(StageRow {
        n_patterns: candidates.len(),
        n_selected: selected.selected.len(),
        mine_s,
        select_s: t1.elapsed().as_secs_f64(),
    })
}

/// Holdout accuracies (SVM, C4.5) of the Pat_FS feature space built at an
/// absolute support, plus the model-training wall clock. Mining/selection
/// happen once on the training split and both models share the transformed
/// matrices.
fn holdout_accuracy(ts: &TransactionSet, abs_sup: usize) -> Result<(f64, f64, f64), MiningError> {
    let fold = stratified_holdout(ts.labels(), 0.3, 23);
    let train = ts.subset(&fold.train);
    let test = ts.subset(&fold.test);
    let rel = abs_sup as f64 / ts.len().max(1) as f64;
    let candidates = mine_features(&train, &mining_cfg(rel))?;
    let result = mmrfs(&train, &candidates, &selection_cfg());
    let selected = result.patterns(&candidates);
    let fs = FeatureSpace::new(train.n_items(), train.n_classes(), &selected);
    let train_m = fs.transform(&train);
    let test_m = fs.transform(&test);
    let t0 = Instant::now();
    let svm = LinearSvm::fit(&train_m, &LinearSvmParams::default());
    let tree = C45::fit(&train_m, &C45Params::default());
    let train_s = t0.elapsed().as_secs_f64();
    Ok((svm.accuracy(&test_m), tree.accuracy(&test_m), train_s))
}

/// Runs one scalability table.
pub fn run_scalability(profile_name: &str, min_sups: &[usize], csv_name: &str, title: &str) {
    println!("== {title} ==\n");
    let profile = profile_by_name(profile_name).expect("profile");
    let data = profile.generate();
    let (ts, _) = data.to_transactions();
    println!(
        "{profile_name}: {} instances, {} items, {} classes\n",
        ts.len(),
        ts.n_items(),
        ts.n_classes()
    );

    let mut table = Table::new(vec![
        "min_sup",
        "#Patterns",
        "#Selected",
        "Time (s)",
        "SVM (%)",
        "C4.5 (%)",
    ]);
    let min_sups: Vec<usize> = if crate::fast_mode() {
        min_sups
            .iter()
            .copied()
            .skip(min_sups.len().saturating_sub(2))
            .collect()
    } else {
        min_sups.to_vec()
    };
    let mut json_rows: Vec<Json> = Vec::new();
    for &min_sup in &min_sups {
        if min_sup <= 1 {
            // The paper's intractability row: enumerate (count-only) under a
            // budget; chess cannot complete, waveform/letter yield millions.
            let row = match count_frequent(&ts, 1, COUNT_BUDGET) {
                Ok(n) => vec![
                    "1".to_string(),
                    format!("{n}"),
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                ],
                Err(_) => vec![
                    "1".to_string(),
                    format!("N/A (>{COUNT_BUDGET})"),
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                ],
            };
            table.row(row);
        } else {
            let m = mine_and_select(&ts, min_sup).expect("mining");
            let (svm, c45, train_s) = holdout_accuracy(&ts, min_sup).expect("accuracy");
            table.row(vec![
                min_sup.to_string(),
                m.n_patterns.to_string(),
                m.n_selected.to_string(),
                format!("{:.3}", m.mine_s + m.select_s),
                format!("{:.2}", svm * 100.0),
                format!("{:.2}", c45 * 100.0),
            ]);
            json_rows.push(Json::obj(vec![
                ("min_sup", Json::Int(min_sup as u64)),
                ("n_patterns", Json::Int(m.n_patterns as u64)),
                ("n_selected", Json::Int(m.n_selected as u64)),
                ("mine_s", Json::Num(m.mine_s)),
                ("select_s", Json::Num(m.select_s)),
                ("train_s", Json::Num(train_s)),
                ("svm_acc", Json::Num(svm)),
                ("c45_acc", Json::Num(c45)),
            ]));
        }
        println!("{}", table.render().lines().last().unwrap_or(""));
    }
    println!();
    table.print();
    let path = table.write_csv(csv_name).expect("csv");
    println!("\ncsv written to {}", path.display());
    let report = Json::obj(vec![
        ("profile", Json::Str(profile_name.into())),
        ("threads", Json::Int(dfp_par::worker_threads() as u64)),
        ("rows", Json::Arr(json_rows)),
    ]);
    let jpath = write_json(&format!("BENCH_{csv_name}"), &report).expect("json");
    println!("json written to {}\n", jpath.display());
}

/// Table 3 (chess): paper sweeps min_sup ∈ {1, 2000, 2200, 2500, 2800, 3000}.
pub fn run_table3() {
    run_scalability(
        "chess",
        &[1, 2000, 2200, 2500, 2800, 3000],
        "table3_chess",
        "Table 3: accuracy & time on chess data",
    );
}

/// Table 4 (waveform): paper sweeps min_sup ∈ {1, 80, 100, 150, 200}.
pub fn run_table4() {
    run_scalability(
        "waveform",
        &[1, 80, 100, 150, 200],
        "table4_waveform",
        "Table 4: accuracy & time on waveform data",
    );
}

/// Table 5 (letter): paper sweeps min_sup ∈ {1, 3000, 3500, 4000, 4500}.
pub fn run_table5() {
    run_scalability(
        "letter",
        &[1, 3000, 3500, 4000, 4500],
        "table5_letter",
        "Table 5: accuracy & time on letter recognition data",
    );
}
