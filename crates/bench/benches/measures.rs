//! Criterion micro-benchmarks for the measures crate: bound evaluation,
//! θ* resolution, and batch relevance scoring — the per-candidate costs of
//! the selection loop.

use criterion::{criterion_group, criterion_main, Criterion};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::synth::profile_by_name;
use dfp_measures::bounds::{fisher_upper_bound, ig_upper_bound};
use dfp_measures::{theta_star, RelevanceMeasure};
use dfp_mining::{mine_features, MiningConfig};
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds");
    group.bench_function("ig_upper_bound_sweep_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in 1..=1000 {
                acc += ig_upper_bound(s as f64 / 1000.0, 0.42);
            }
            black_box(acc)
        })
    });
    group.bench_function("fisher_upper_bound_sweep_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in 1..=1000 {
                let v = fisher_upper_bound(s as f64 / 1000.0, 0.42);
                if v.is_finite() {
                    acc += v;
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("theta_star_n5000", |b| {
        b.iter(|| black_box(theta_star(0.05, &[0.58, 0.42], 5000)))
    });
    group.finish();
}

fn bench_relevance_scoring(c: &mut Criterion) {
    let data = profile_by_name("austral").expect("profile").generate();
    let (cat, _) = data.discretize(&MdlDiscretizer::new());
    let (ts, _) = cat.to_transactions();
    let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.15)).expect("mining");
    let counts = ts.class_counts();
    let mut group = c.benchmark_group("relevance_scoring");
    group.bench_function(format!("info_gain_x{}", candidates.len()), |b| {
        b.iter(|| black_box(RelevanceMeasure::InfoGain.score_all(&candidates, &counts)))
    });
    group.bench_function(format!("fisher_x{}", candidates.len()), |b| {
        b.iter(|| black_box(RelevanceMeasure::FisherScore.score_all(&candidates, &counts)))
    });
    group.finish();
}

criterion_group!(benches, bench_bounds, bench_relevance_scoring);
criterion_main!(benches);
