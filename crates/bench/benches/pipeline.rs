//! Criterion micro-benchmarks of the end-to-end pipeline: the five paper
//! variants on one small profile (what one fold of Tables 1–2 costs).

use criterion::{criterion_group, criterion_main, Criterion};
use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::Dataset;
use dfp_data::synth::profile_by_name;
use std::hint::black_box;

fn setup() -> Dataset {
    profile_by_name("labor").expect("profile").generate()
}

fn bench_variants(c: &mut Criterion) {
    let data = setup();
    let mut group = c.benchmark_group("pipeline_fit_labor");
    group.sample_size(10);
    for (name, cfg) in [
        ("item_all", FrameworkConfig::item_all()),
        ("item_fs", FrameworkConfig::item_fs()),
        ("item_rbf", FrameworkConfig::item_rbf(1.0, 0.1)),
        ("pat_all", FrameworkConfig::pat_all()),
        ("pat_fs", FrameworkConfig::pat_fs()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(PatternClassifier::fit(&data, &cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_pat_fs_with_minsup_strategy(c: &mut Criterion) {
    use dfp_measures::MinSupStrategy;
    let data = setup();
    let mut group = c.benchmark_group("pipeline_minsup_strategy_labor");
    group.sample_size(10);
    for (name, strategy) in [
        ("relative_20pct", MinSupStrategy::Relative(0.2)),
        ("ig_threshold_0.05", MinSupStrategy::InfoGainThreshold(0.05)),
        ("ig_threshold_0.20", MinSupStrategy::InfoGainThreshold(0.20)),
    ] {
        let cfg = FrameworkConfig::pat_fs().with_min_sup(strategy);
        group.bench_function(name, |b| {
            b.iter(|| black_box(PatternClassifier::fit(&data, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_pat_fs_with_minsup_strategy);
criterion_main!(benches);
