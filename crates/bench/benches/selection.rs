//! Criterion micro-benchmarks for feature selection: MMRFS vs the top-k
//! ablation, and MMRFS cost as a function of coverage δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::synth::profile_by_name;
use dfp_data::transactions::TransactionSet;
use dfp_measures::RelevanceMeasure;
use dfp_mining::{mine_features, MinedPattern, MiningConfig};
use dfp_select::baseline::top_k_by_relevance;
use dfp_select::{mmrfs, MmrfsConfig};
use std::hint::black_box;

fn setup() -> (TransactionSet, Vec<MinedPattern>) {
    let data = profile_by_name("austral").expect("profile").generate();
    let (cat, _) = data.discretize(&MdlDiscretizer::new());
    let (ts, _) = cat.to_transactions();
    let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.15)).expect("mining");
    (ts, candidates)
}

fn bench_selection_ablation(c: &mut Criterion) {
    let (ts, candidates) = setup();
    let mut group = c.benchmark_group("selection_ablation_austral");
    group.sample_size(10);
    group.bench_function("mmrfs_delta3", |b| {
        b.iter(|| black_box(mmrfs(&ts, &candidates, &MmrfsConfig::default())))
    });
    group.bench_function("top_100_by_ig", |b| {
        b.iter(|| {
            black_box(top_k_by_relevance(
                &ts,
                &candidates,
                RelevanceMeasure::InfoGain,
                100,
            ))
        })
    });
    group.finish();
}

fn bench_mmrfs_coverage(c: &mut Criterion) {
    let (ts, candidates) = setup();
    let mut group = c.benchmark_group("mmrfs_vs_coverage_austral");
    group.sample_size(10);
    for delta in [1u32, 3, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &d| {
            let cfg = MmrfsConfig {
                coverage: d,
                ..MmrfsConfig::default()
            };
            b.iter(|| black_box(mmrfs(&ts, &candidates, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection_ablation, bench_mmrfs_coverage);
criterion_main!(benches);
