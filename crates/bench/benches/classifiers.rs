//! Criterion micro-benchmarks for the classifier substrate: training cost
//! of linear SVM, RBF SVM, C4.5 and naive Bayes on the same feature matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use dfp_classify::naive_bayes::BernoulliNb;
use dfp_classify::svm::{KernelSvm, KernelSvmParams, LinearSvm, LinearSvmParams};
use dfp_classify::tree::{C45Params, C45};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::synth::profile_by_name;
use dfp_mining::{mine_features, MiningConfig};
use dfp_select::{mmrfs, FeatureSpace, MmrfsConfig};
use std::hint::black_box;

fn setup() -> SparseBinaryMatrix {
    let data = profile_by_name("austral").expect("profile").generate();
    let (cat, _) = data.discretize(&MdlDiscretizer::new());
    let (ts, _) = cat.to_transactions();
    let candidates = mine_features(&ts, &MiningConfig::with_min_sup(0.15)).expect("mining");
    let selected = mmrfs(&ts, &candidates, &MmrfsConfig::default()).patterns(&candidates);
    FeatureSpace::new(ts.n_items(), ts.n_classes(), &selected).transform(&ts)
}

fn bench_training(c: &mut Criterion) {
    let m = setup();
    let mut group = c.benchmark_group("classifier_training_austral_patfs_space");
    group.sample_size(10);
    group.bench_function("linear_svm", |b| {
        b.iter(|| black_box(LinearSvm::fit(&m, &LinearSvmParams::default())))
    });
    group.bench_function("rbf_svm", |b| {
        b.iter(|| black_box(KernelSvm::fit(&m, &KernelSvmParams::rbf(1.0, 0.1))))
    });
    group.bench_function("c45", |b| {
        b.iter(|| black_box(C45::fit(&m, &C45Params::default())))
    });
    group.bench_function("naive_bayes", |b| {
        b.iter(|| black_box(BernoulliNb::fit(&m)))
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    use dfp_classify::Classifier;
    let m = setup();
    let svm = LinearSvm::fit(&m, &LinearSvmParams::default());
    let tree = C45::fit(&m, &C45Params::default());
    let mut group = c.benchmark_group("classifier_prediction_austral");
    group.bench_function("linear_svm_predict_all", |b| {
        b.iter(|| black_box(svm.predict_all(&m)))
    });
    group.bench_function("c45_predict_all", |b| {
        b.iter(|| black_box(tree.predict_all(&m)))
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
