//! Criterion micro-benchmarks for the miners: closed vs FP-growth vs Eclat
//! vs Apriori (the feature-generation ablation of DESIGN.md §6.4), and the
//! min_sup sensitivity of closed mining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfp_data::discretize::MdlDiscretizer;
use dfp_data::synth::profile_by_name;
use dfp_data::transactions::TransactionSet;
use dfp_mining::{apriori, closed, eclat, fpgrowth, MineOptions};
use std::hint::black_box;

fn austral_ts() -> TransactionSet {
    let data = profile_by_name("austral").expect("profile").generate();
    let (cat, _) = data.discretize(&MdlDiscretizer::new());
    cat.to_transactions().0
}

fn bench_miner_ablation(c: &mut Criterion) {
    let ts = austral_ts();
    let min_sup = (ts.len() as f64 * 0.2).ceil() as usize;
    let opts = MineOptions::default();
    let mut group = c.benchmark_group("miner_ablation_austral_minsup20pct");
    group.sample_size(10);
    group.bench_function("closed", |b| {
        b.iter(|| black_box(closed::mine_closed(&ts, min_sup, &opts).unwrap()))
    });
    group.bench_function("fpgrowth", |b| {
        b.iter(|| black_box(fpgrowth::mine(&ts, min_sup, &opts).unwrap()))
    });
    group.bench_function("eclat", |b| {
        b.iter(|| black_box(eclat::mine(&ts, min_sup, &opts).unwrap()))
    });
    group.bench_function("apriori", |b| {
        b.iter(|| black_box(apriori::mine(&ts, min_sup, &opts).unwrap()))
    });
    group.finish();
}

fn bench_minsup_sensitivity(c: &mut Criterion) {
    let ts = austral_ts();
    let opts = MineOptions::default();
    let mut group = c.benchmark_group("closed_mining_vs_minsup_austral");
    group.sample_size(10);
    for pct in [30usize, 20, 15, 10] {
        let min_sup = (ts.len() * pct) / 100;
        group.bench_with_input(BenchmarkId::from_parameter(pct), &min_sup, |b, &ms| {
            b.iter(|| black_box(closed::mine_closed(&ts, ms, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miner_ablation, bench_minsup_sensitivity);
criterion_main!(benches);
