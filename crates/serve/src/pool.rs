//! A fixed-size worker thread pool over an `mpsc` channel. Workers pull
//! boxed jobs from a shared receiver; dropping the pool closes the channel
//! and joins every worker, so shutdown is deterministic.
//!
//! The pool is **self-healing**: a job that panics is caught inside the
//! worker loop, the worker keeps serving (counted in
//! [`ThreadPool::respawns`]), and the panic never crosses a thread boundary.
//! An optional pending-work bound turns [`ThreadPool::try_execute`] into a
//! load-shedding admission check.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs accepted but not yet finished (queued + running).
    pending: Arc<AtomicUsize>,
    /// Worker recoveries after a panicking job.
    respawns: Arc<AtomicU64>,
    /// `try_execute` admits a job only below this many pending jobs.
    queue_depth: usize,
}

impl ThreadPool {
    /// Spawns `size` workers (clamped to at least 1) with an unbounded
    /// pending queue.
    pub fn new(size: usize) -> Self {
        Self::bounded(size, usize::MAX)
    }

    /// Spawns `size` workers whose [`Self::try_execute`] sheds load once
    /// `queue_depth` jobs are pending.
    pub fn bounded(size: usize, queue_depth: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let pending = Arc::new(AtomicUsize::new(0));
        let respawns = Arc::new(AtomicU64::new(0));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                let pending = Arc::clone(&pending);
                let respawns = Arc::clone(&respawns);
                std::thread::Builder::new()
                    .name(format!("dfp-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only for the recv keeps handoff
                        // fair. A lock poisoned by a panicking sibling is
                        // still usable: the receiver behind it is intact.
                        let job = receiver
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .recv();
                        match job {
                            Ok(job) => {
                                // A panicking job must not take the worker
                                // down with it — recover in place and count
                                // the respawn.
                                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    respawns.fetch_add(1, Ordering::Relaxed);
                                }
                                pending.fetch_sub(1, Ordering::Relaxed);
                            }
                            Err(_) => break, // channel closed → shut down
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            pending,
            respawns,
            queue_depth,
        }
    }

    /// Spawns one worker per resolved runtime thread — the same
    /// `DFP_THREADS` / `available_parallelism` resolution the parallel
    /// runtime uses, so one knob sizes both the mining/CV combinators and
    /// the serving pool.
    pub fn auto() -> Self {
        Self::new(dfp_par::worker_threads())
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs accepted but not yet finished.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Worker recoveries after panicking jobs so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Queues a job unconditionally; some idle worker will run it.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.pending.fetch_add(1, Ordering::Relaxed);
        if let Some(sender) = &self.sender {
            // Send fails only if all workers died; jobs are then dropped,
            // which closes their connections — an acceptable shutdown race.
            if sender.send(Box::new(job)).is_err() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
            }
        } else {
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Queues a job unless the pending bound is reached; returns `false`
    /// (job dropped) when the pool is saturated — the caller sheds load.
    pub fn try_execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        if self.pending.load(Ordering::Relaxed) >= self.queue_depth {
            return false;
        }
        self.execute(job);
        true
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers → all queued jobs ran
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn size_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).size(), 1);
        assert_eq!(ThreadPool::new(3).size(), 3);
    }

    #[test]
    fn auto_matches_runtime_resolution() {
        assert_eq!(ThreadPool::auto().size(), dfp_par::worker_threads());
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::mpsc::channel;
        let pool = ThreadPool::new(2);
        // Two jobs that can only finish if both run at the same time.
        let (tx_a, rx_a) = channel();
        let (tx_b, rx_b) = channel();
        pool.execute(move || {
            tx_a.send(()).unwrap();
            rx_b.recv().unwrap();
        });
        pool.execute(move || {
            tx_b.send(()).unwrap();
            rx_a.recv().unwrap();
        });
        drop(pool); // would deadlock with a single worker
    }

    #[test]
    fn panicking_job_recovers_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("injected"));
        // The single worker must survive to run this second job.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        let respawns = Arc::clone(&pool.respawns);
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(respawns.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bounded_pool_sheds_past_queue_depth() {
        use std::sync::mpsc::channel;
        let pool = ThreadPool::bounded(1, 2);
        // Park the only worker so pending stays high.
        let (tx, rx) = channel::<()>();
        assert!(pool.try_execute(move || {
            rx.recv().unwrap();
        }));
        assert!(pool.try_execute(|| {})); // queued (pending = 2)
        assert!(!pool.try_execute(|| {})); // shed
        tx.send(()).unwrap();
        drop(pool);
    }

    #[test]
    fn pending_drains_to_zero() {
        let pool = ThreadPool::new(2);
        for _ in 0..10 {
            pool.execute(|| {});
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.pending() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.pending(), 0);
    }
}
