//! A fixed-size worker thread pool over an `mpsc` channel. Workers pull
//! boxed jobs from a shared receiver; dropping the pool closes the channel
//! and joins every worker, so shutdown is deterministic.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `size` workers (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("dfp-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only for the recv keeps handoff fair.
                        let job = receiver.lock().expect("pool receiver poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed → shut down
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Spawns one worker per resolved runtime thread — the same
    /// `DFP_THREADS` / `available_parallelism` resolution the parallel
    /// runtime uses, so one knob sizes both the mining/CV combinators and
    /// the serving pool.
    pub fn auto() -> Self {
        Self::new(dfp_par::worker_threads())
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job; some idle worker will run it.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        if let Some(sender) = &self.sender {
            // Send fails only if all workers died; jobs are then dropped,
            // which closes their connections — an acceptable shutdown race.
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers → all queued jobs ran
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn size_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).size(), 1);
        assert_eq!(ThreadPool::new(3).size(), 3);
    }

    #[test]
    fn auto_matches_runtime_resolution() {
        assert_eq!(ThreadPool::auto().size(), dfp_par::worker_threads());
    }

    #[test]
    fn jobs_run_concurrently() {
        use std::sync::mpsc::channel;
        let pool = ThreadPool::new(2);
        // Two jobs that can only finish if both run at the same time.
        let (tx_a, rx_a) = channel();
        let (tx_b, rx_b) = channel();
        pool.execute(move || {
            tx_a.send(()).unwrap();
            rx_b.recv().unwrap();
        });
        pool.execute(move || {
            tx_b.send(()).unwrap();
            rx_a.recv().unwrap();
        });
        drop(pool); // would deadlock with a single worker
    }
}
