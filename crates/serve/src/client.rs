//! A minimal std-only HTTP client for `dfp-serve` endpoints, with bounded
//! retries.
//!
//! Transient failures — connect refusals, mid-request I/O errors, and `5xx`
//! answers (the server sheds load with `503` when saturated) — are retried
//! with exponential backoff plus jitter, so a fleet of clients hammering a
//! recovering server does not retry in lockstep. `4xx` answers are client
//! errors and are returned immediately: retrying a malformed batch cannot
//! help.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Retry policy for [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 disables retries).
    pub retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n`, jittered.
    pub base_backoff: Duration,
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            base_backoff: Duration::from_millis(100),
            timeout: Duration::from_secs(10),
        }
    }
}

/// A successful HTTP exchange (any status — check [`Response::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8, lossily.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request ultimately failed after all retries.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the final attempt.
    Io(std::io::Error),
    /// The server kept answering `5xx` through every attempt.
    ServerError(Response),
    /// The response could not be parsed as HTTP.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "request failed: {e}"),
            ClientError::ServerError(r) => {
                write!(
                    f,
                    "server error {} after retries: {}",
                    r.status,
                    r.text().trim()
                )
            }
            ClientError::BadResponse(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A retrying HTTP client bound to one `host:port` address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    /// Jitter state; advanced per backoff (xorshift64*).
    seed: u64,
}

impl Client {
    /// A client for `addr` (`host:port`) with the default retry policy.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
            | 1; // xorshift must not start at 0
        Client {
            addr: addr.into(),
            policy,
            seed,
        }
    }

    /// POSTs `body` to `path`, retrying transient failures per the policy.
    /// Returns the first non-`5xx` response (including `4xx` — those are
    /// the caller's bug, not the network's).
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.policy.retries {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt - 1));
            }
            match self.attempt(path, content_type, body) {
                Ok(r) if r.status >= 500 => last = Some(ClientError::ServerError(r)),
                Ok(r) => return Ok(r),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(ClientError::BadResponse("no attempts made")))
    }

    /// GETs `path` once (no body, no retries) — probes like `/readyz`.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        let head = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        self.exchange(head.as_bytes(), &[])
    }

    fn attempt(
        &self,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        // Chaos hook: a simulated transport failure, exercised by the retry
        // loop exactly like a real refused or stalled connection would be.
        if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("client.request") {
            return Err(ClientError::Io(std::io::Error::other(
                "fault injected at failpoint 'client.request'",
            )));
        }
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len()
        );
        self.exchange(head.as_bytes(), body)
    }

    fn exchange(&self, head: &[u8], body: &[u8]) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        let _ = stream.set_read_timeout(Some(self.policy.timeout));
        let _ = stream.set_write_timeout(Some(self.policy.timeout));
        stream.write_all(head).map_err(ClientError::Io)?;
        stream.write_all(body).map_err(ClientError::Io)?;
        // The server closes every connection, so read-to-end frames the
        // response without needing chunked/keep-alive handling.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(ClientError::Io)?;
        parse_response(&raw)
    }

    /// `base * 2^n`, then jittered to 50–100 % so concurrent clients spread
    /// out; capped at 10 s.
    fn backoff(&mut self, exp: u32) -> Duration {
        let base = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << exp.min(16))
            .min(Duration::from_secs(10));
        // xorshift64* step
        let mut x = self.seed;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.seed = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        base.mul_f64(frac)
    }
}

fn parse_response(raw: &[u8]) -> Result<Response, ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(ClientError::BadResponse("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response head"))?;
    let status_line = head
        .split("\r\n")
        .next()
        .ok_or(ClientError::BadResponse("empty head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::BadResponse("bad status line"))?;
    Ok(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nyes";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"yes");
        assert_eq!(r.text(), "yes");
    }

    #[test]
    fn rejects_garbage_response() {
        assert!(matches!(
            parse_response(b"not http at all"),
            Err(ClientError::BadResponse(_))
        ));
    }

    #[test]
    fn backoff_grows_and_jitters_within_bounds() {
        let mut c = Client::with_policy(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 3,
                base_backoff: Duration::from_millis(100),
                timeout: Duration::from_secs(1),
            },
        );
        for exp in 0..4 {
            let base = Duration::from_millis(100 * (1 << exp));
            let d = c.backoff(exp);
            assert!(d >= base.mul_f64(0.5) && d <= base, "exp {exp}: {d:?}");
        }
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Port 1 is never listening in the test environment.
        let mut c = Client::with_policy(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 1,
                base_backoff: Duration::from_millis(1),
                timeout: Duration::from_millis(200),
            },
        );
        assert!(matches!(
            c.post("/predict", "text/csv", b"x"),
            Err(ClientError::Io(_))
        ));
    }
}
