//! A minimal std-only HTTP client for `dfp-serve` endpoints, with bounded
//! retries.
//!
//! Transient failures — connect refusals, mid-request I/O errors, `5xx`
//! answers (the server sheds load with `503` when saturated) and `409`
//! (a concurrent model hot-swap holds the admin lock) — are retried with
//! exponential backoff plus jitter, so a fleet of clients hammering a
//! recovering server does not retry in lockstep. When the server names its
//! own recovery horizon with a `Retry-After` header, that hint replaces the
//! computed backoff for the next attempt: the server knows how loaded it is
//! better than a client-side doubling schedule does. Other `4xx` answers
//! are client errors and are returned immediately: retrying a malformed
//! batch cannot help.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Retry policy for [`Client`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 disables retries).
    pub retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^n`, jittered.
    pub base_backoff: Duration,
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            base_backoff: Duration::from_millis(100),
            timeout: Duration::from_secs(10),
        }
    }
}

/// A successful HTTP exchange (any status — check [`Response::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` header (seconds form), when the server sent
    /// one — its own estimate of when a retry could succeed.
    pub retry_after: Option<Duration>,
}

impl Response {
    /// Body as UTF-8, lossily.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request ultimately failed after all retries.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the final attempt.
    Io(std::io::Error),
    /// The server kept answering `5xx` through every attempt.
    ServerError(Response),
    /// The response could not be parsed as HTTP.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "request failed: {e}"),
            ClientError::ServerError(r) => {
                write!(
                    f,
                    "server error {} after retries: {}",
                    r.status,
                    r.text().trim()
                )
            }
            ClientError::BadResponse(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A retrying HTTP client bound to one `host:port` address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    /// Jitter state; advanced per backoff (xorshift64*).
    seed: u64,
}

impl Client {
    /// A client for `addr` (`host:port`) with the default retry policy.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
            | 1; // xorshift must not start at 0
        Client {
            addr: addr.into(),
            policy,
            seed,
        }
    }

    /// POSTs `body` to `path`, retrying transient failures per the policy.
    /// Returns the first non-retryable response (including `4xx` — those
    /// are the caller's bug, not the network's).
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        self.send_with_retries("POST", path, content_type, &[], body)
    }

    /// PUTs `body` to `path` with extra request headers, retrying transient
    /// failures (including `409` — a concurrent hot-swap that will release
    /// the admin lock shortly) per the policy. This is the admin upload
    /// path: `client.put("/m/iris", "application/octet-stream",
    /// &[("X-Probe-Row", "5.1,3.5,1.4,0.2")], &artifact)`.
    pub fn put(
        &mut self,
        path: &str,
        content_type: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, ClientError> {
        self.send_with_retries("PUT", path, content_type, headers, body)
    }

    /// `503` and `5xx` generally (overload, fault) and `409` (swap lock)
    /// are worth retrying; everything else is final.
    fn retryable(status: u16) -> bool {
        status >= 500 || status == 409
    }

    fn send_with_retries(
        &mut self,
        method: &str,
        path: &str,
        content_type: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut last: Option<ClientError> = None;
        // The server's Retry-After hint (if any) from the previous attempt;
        // it replaces the computed exponential backoff for the next sleep.
        let mut hint: Option<Duration> = None;
        for attempt in 0..=self.policy.retries {
            if attempt > 0 {
                let delay = match hint.take() {
                    Some(h) => h.min(Duration::from_secs(10)),
                    None => self.backoff(attempt - 1),
                };
                std::thread::sleep(delay);
            }
            match self.attempt(method, path, content_type, headers, body) {
                Ok(r) if Self::retryable(r.status) => {
                    hint = r.retry_after;
                    last = Some(ClientError::ServerError(r));
                }
                Ok(r) => return Ok(r),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(ClientError::BadResponse("no attempts made")))
    }

    /// GETs `path` once (no body, no retries) — probes like `/readyz`.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        let head = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        self.exchange(head.as_bytes(), &[])
    }

    fn attempt(
        &self,
        method: &str,
        path: &str,
        content_type: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, ClientError> {
        // Chaos hook: a simulated transport failure, exercised by the retry
        // loop exactly like a real refused or stalled connection would be.
        if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("client.request") {
            return Err(ClientError::Io(std::io::Error::other(
                "fault injected at failpoint 'client.request'",
            )));
        }
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
            self.addr,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        self.exchange(head.as_bytes(), body)
    }

    fn exchange(&self, head: &[u8], body: &[u8]) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        let _ = stream.set_read_timeout(Some(self.policy.timeout));
        let _ = stream.set_write_timeout(Some(self.policy.timeout));
        stream.write_all(head).map_err(ClientError::Io)?;
        stream.write_all(body).map_err(ClientError::Io)?;
        // The server closes every connection, so read-to-end frames the
        // response without needing chunked/keep-alive handling.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(ClientError::Io)?;
        parse_response(&raw)
    }

    /// `base * 2^n`, then jittered to 50–100 % so concurrent clients spread
    /// out; capped at 10 s.
    fn backoff(&mut self, exp: u32) -> Duration {
        let base = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << exp.min(16))
            .min(Duration::from_secs(10));
        // xorshift64* step
        let mut x = self.seed;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.seed = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        base.mul_f64(frac)
    }
}

fn parse_response(raw: &[u8]) -> Result<Response, ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(ClientError::BadResponse("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response head"))?;
    let status_line = head
        .split("\r\n")
        .next()
        .ok_or(ClientError::BadResponse("empty head"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::BadResponse("bad status line"))?;
    // RFC 9110 Retry-After, delay-seconds form only (the date form never
    // comes out of dfp-serve).
    let retry_after = head
        .split("\r\n")
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, value)| value.trim().parse::<u64>().ok())
        .map(Duration::from_secs);
    Ok(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nyes";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"yes");
        assert_eq!(r.text(), "yes");
    }

    #[test]
    fn parses_retry_after_hint() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n\r\nbusy";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.retry_after, Some(Duration::from_secs(2)));
        // Case-insensitive header name, and absent means None.
        let raw = b"HTTP/1.1 409 Conflict\r\nretry-after: 1\r\n\r\nswap";
        assert_eq!(
            parse_response(raw).unwrap().retry_after,
            Some(Duration::from_secs(1))
        );
        assert_eq!(
            parse_response(b"HTTP/1.1 200 OK\r\n\r\nok")
                .unwrap()
                .retry_after,
            None
        );
        // The HTTP-date form is ignored rather than misparsed.
        let raw = b"HTTP/1.1 503 X\r\nRetry-After: Fri, 01 Jan 2027 00:00:00 GMT\r\n\r\n";
        assert_eq!(parse_response(raw).unwrap().retry_after, None);
    }

    #[test]
    fn retryable_statuses() {
        assert!(Client::retryable(500));
        assert!(Client::retryable(503));
        assert!(Client::retryable(409));
        assert!(!Client::retryable(200));
        assert!(!Client::retryable(400));
        assert!(!Client::retryable(422));
    }

    #[test]
    fn rejects_garbage_response() {
        assert!(matches!(
            parse_response(b"not http at all"),
            Err(ClientError::BadResponse(_))
        ));
    }

    #[test]
    fn backoff_grows_and_jitters_within_bounds() {
        let mut c = Client::with_policy(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 3,
                base_backoff: Duration::from_millis(100),
                timeout: Duration::from_secs(1),
            },
        );
        for exp in 0..4 {
            let base = Duration::from_millis(100 * (1 << exp));
            let d = c.backoff(exp);
            assert!(d >= base.mul_f64(0.5) && d <= base, "exp {exp}: {d:?}");
        }
    }

    #[test]
    fn connect_refused_is_io_error() {
        // Port 1 is never listening in the test environment.
        let mut c = Client::with_policy(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 1,
                base_backoff: Duration::from_millis(1),
                timeout: Duration::from_millis(200),
            },
        );
        assert!(matches!(
            c.post("/predict", "text/csv", b"x"),
            Err(ClientError::Io(_))
        ));
    }
}
