//! Parsing inference-request CSV rows against a saved model schema.
//!
//! Each non-empty line is one instance: comma-separated attribute values in
//! schema column order, **without** the class column (that is what the model
//! predicts). `?` or an empty field marks a missing value. Categorical
//! fields must name one of the attribute's known values — an unseen value at
//! serving time is a client error, reported with row and column context.

use dfp_data::dataset::{Dataset, Value};
use dfp_data::schema::{AttributeKind, ClassId, Schema};

/// Parses a CSV payload into a [`Dataset`] with placeholder labels, ready
/// for [`dfp_core::PatternClassifier::predict`].
///
/// Returns a client-facing error message on the first malformed row.
pub fn parse_rows(schema: &Schema, text: &str) -> Result<Dataset, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != schema.n_attributes() {
            return Err(format!(
                "row {}: expected {} fields, got {}",
                lineno + 1,
                schema.n_attributes(),
                fields.len()
            ));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (a, (field, attr)) in fields.iter().zip(&schema.attributes).enumerate() {
            if field.is_empty() || *field == "?" {
                row.push(Value::Missing);
                continue;
            }
            let value = match &attr.kind {
                AttributeKind::Numeric => {
                    let v: f64 = field.parse().map_err(|_| {
                        format!(
                            "row {}: attribute '{}' (column {}) expects a number, got '{field}'",
                            lineno + 1,
                            attr.name,
                            a + 1
                        )
                    })?;
                    Value::Num(v)
                }
                AttributeKind::Categorical { values } => {
                    let idx = values.iter().position(|v| v == field).ok_or_else(|| {
                        format!(
                            "row {}: '{field}' is not a known value of attribute '{}'",
                            lineno + 1,
                            attr.name
                        )
                    })?;
                    Value::Cat(idx as u32)
                }
            };
            row.push(value);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no data rows in request body".to_string());
    }
    let labels = vec![ClassId(0); rows.len()];
    Ok(Dataset::new(schema.clone(), rows, labels))
}

/// Renders predicted class ids as class names, one per line.
pub fn render_labels(schema: &Schema, labels: &[ClassId]) -> String {
    let mut out = String::new();
    for l in labels {
        out.push_str(
            schema
                .class_names
                .get(l.index())
                .map(String::as_str)
                .unwrap_or("?"),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::categorical("color", vec!["red".into(), "blue".into()]),
                Attribute::numeric("size"),
            ],
            vec!["yes".into(), "no".into()],
        )
    }

    #[test]
    fn parses_mixed_rows() {
        let d = parse_rows(&schema(), "red, 1.5\nblue,2\n\n?,?\r\n").unwrap();
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.rows[0], vec![Value::Cat(0), Value::Num(1.5)]);
        assert_eq!(d.rows[1], vec![Value::Cat(1), Value::Num(2.0)]);
        assert_eq!(d.rows[2], vec![Value::Missing, Value::Missing]);
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse_rows(&schema(), "red").unwrap_err();
        assert!(err.contains("expected 2 fields"), "{err}");
    }

    #[test]
    fn rejects_unknown_category_with_context() {
        let err = parse_rows(&schema(), "green,1").unwrap_err();
        assert!(err.contains("green") && err.contains("color"), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse_rows(&schema(), "red,tall").unwrap_err();
        assert!(err.contains("expects a number"), "{err}");
    }

    #[test]
    fn rejects_empty_body() {
        assert!(parse_rows(&schema(), "\n\n").is_err());
    }

    #[test]
    fn labels_render_as_names() {
        let s = schema();
        let out = render_labels(&s, &[ClassId(1), ClassId(0)]);
        assert_eq!(out, "no\nyes\n");
    }
}
