//! Parsing inference-request CSV rows against a saved model schema.
//!
//! Each non-empty line is one instance: comma-separated attribute values in
//! schema column order, **without** the class column (that is what the model
//! predicts). `?` or an empty field marks a missing value. Categorical
//! fields must name one of the attribute's known values — an unseen value at
//! serving time is a client error, reported with row and column context.

use dfp_data::dataset::{Dataset, Value};
use dfp_data::schema::{AttributeKind, ClassId, Schema};

/// Why a CSV payload was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum RowsError {
    /// More data rows than the server's per-batch cap — a `413`, not a `400`.
    TooManyRows {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// A malformed row; client-facing message with row/column context.
    Bad(String),
}

impl RowsError {
    /// The canonical empty-payload rejection. Both the batch CSV parser and
    /// the serving `/predict` route answer with this exact message (tests
    /// assert it verbatim), so it is constructed in one place only.
    pub fn empty_body() -> RowsError {
        RowsError::Bad("no data rows in request body".to_string())
    }
}

impl std::fmt::Display for RowsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowsError::TooManyRows { limit } => {
                write!(f, "batch exceeds the server limit of {limit} rows")
            }
            RowsError::Bad(why) => f.write_str(why),
        }
    }
}

/// Parses a CSV payload into a [`Dataset`] with placeholder labels, ready
/// for [`dfp_core::PatternClassifier::predict`].
///
/// Returns a client-facing error message on the first malformed row.
pub fn parse_rows(schema: &Schema, text: &str) -> Result<Dataset, String> {
    parse_rows_limited(schema, text, usize::MAX).map_err(|e| e.to_string())
}

/// Like [`parse_rows`], but stops at `max_rows` data rows so one oversized
/// batch cannot balloon server memory past the configured bound.
pub fn parse_rows_limited(
    schema: &Schema,
    text: &str,
    max_rows: usize,
) -> Result<Dataset, RowsError> {
    let mut rows = Vec::new();
    for (lineno, line) in data_lines(text) {
        if rows.len() >= max_rows {
            return Err(RowsError::TooManyRows { limit: max_rows });
        }
        rows.push(parse_row_line(schema, lineno, line)?);
    }
    if rows.is_empty() {
        return Err(RowsError::empty_body());
    }
    let labels = vec![ClassId(0); rows.len()];
    Ok(Dataset::new(schema.clone(), rows, labels))
}

/// Iterates the non-blank data lines of a CSV payload as
/// `(zero-based line number, line)` pairs, with trailing `\r` stripped.
/// Line numbers count *all* lines (blank ones included) so error messages
/// match what the client sent.
pub fn data_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(lineno, line)| (lineno, line.trim_end_matches('\r')))
        .filter(|(_, line)| !line.trim().is_empty())
}

/// Parses one non-blank, `\r`-stripped CSV line against the schema.
/// `lineno` is the zero-based line index used in client-facing errors.
pub fn parse_row_line(schema: &Schema, lineno: usize, line: &str) -> Result<Vec<Value>, RowsError> {
    let bad = |why: String| RowsError::Bad(why);
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != schema.n_attributes() {
        return Err(bad(format!(
            "row {}: expected {} fields, got {}",
            lineno + 1,
            schema.n_attributes(),
            fields.len()
        )));
    }
    let mut row = Vec::with_capacity(fields.len());
    for (a, (field, attr)) in fields.iter().zip(&schema.attributes).enumerate() {
        if field.is_empty() || *field == "?" {
            row.push(Value::Missing);
            continue;
        }
        let value = match &attr.kind {
            AttributeKind::Numeric => {
                let v: f64 = field.parse().map_err(|_| {
                    bad(format!(
                        "row {}: attribute '{}' (column {}) expects a number, got '{field}'",
                        lineno + 1,
                        attr.name,
                        a + 1
                    ))
                })?;
                Value::Num(v)
            }
            AttributeKind::Categorical { values } => {
                let idx = values.iter().position(|v| v == field).ok_or_else(|| {
                    bad(format!(
                        "row {}: '{field}' is not a known value of attribute '{}'",
                        lineno + 1,
                        attr.name
                    ))
                })?;
                Value::Cat(idx as u32)
            }
        };
        row.push(value);
    }
    Ok(row)
}

/// Renders predicted class ids as class names, one per line.
pub fn render_labels(schema: &Schema, labels: &[ClassId]) -> String {
    let mut out = String::new();
    for l in labels {
        out.push_str(
            schema
                .class_names
                .get(l.index())
                .map(String::as_str)
                .unwrap_or("?"),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfp_data::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::categorical("color", vec!["red".into(), "blue".into()]),
                Attribute::numeric("size"),
            ],
            vec!["yes".into(), "no".into()],
        )
    }

    #[test]
    fn parses_mixed_rows() {
        let d = parse_rows(&schema(), "red, 1.5\nblue,2\n\n?,?\r\n").unwrap();
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.rows[0], vec![Value::Cat(0), Value::Num(1.5)]);
        assert_eq!(d.rows[1], vec![Value::Cat(1), Value::Num(2.0)]);
        assert_eq!(d.rows[2], vec![Value::Missing, Value::Missing]);
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = parse_rows(&schema(), "red").unwrap_err();
        assert!(err.contains("expected 2 fields"), "{err}");
    }

    #[test]
    fn rejects_unknown_category_with_context() {
        let err = parse_rows(&schema(), "green,1").unwrap_err();
        assert!(err.contains("green") && err.contains("color"), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse_rows(&schema(), "red,tall").unwrap_err();
        assert!(err.contains("expects a number"), "{err}");
    }

    #[test]
    fn rejects_empty_body() {
        let err = parse_rows(&schema(), "\n\n").unwrap_err();
        assert_eq!(err, RowsError::empty_body().to_string());
    }

    #[test]
    fn labels_render_as_names() {
        let s = schema();
        let out = render_labels(&s, &[ClassId(1), ClassId(0)]);
        assert_eq!(out, "no\nyes\n");
    }

    #[test]
    fn row_cap_enforced() {
        let s = schema();
        let err = parse_rows_limited(&s, "red,1\nblue,2\nred,3\n", 2).unwrap_err();
        assert_eq!(err, RowsError::TooManyRows { limit: 2 });
        assert!(parse_rows_limited(&s, "red,1\nblue,2\n", 2).is_ok());
        // blank lines don't count against the cap
        assert!(parse_rows_limited(&s, "\n\nred,1\n\n", 1).is_ok());
    }
}
