//! Lock-free serving metrics: request/prediction/error counters and a
//! fixed-bucket latency histogram, rendered in the Prometheus text
//! exposition format. Everything is `AtomicU64` with relaxed ordering —
//! counters tolerate torn cross-counter reads; each individual value is
//! always consistent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; `+Inf` implied.
pub const LATENCY_BUCKETS: [f64; 8] = [0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5];

/// Shared serving metrics.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests received, any endpoint.
    pub requests_total: AtomicU64,
    /// Rows successfully predicted.
    pub predictions_total: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors_total: AtomicU64,
    /// Worker recoveries after a panicking job (self-healing pool).
    pub worker_respawns_total: AtomicU64,
    /// Requests shed with `503` because the pending queue was full.
    pub shed_total: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    latency_sum_nanos: AtomicU64,
    latency_count: AtomicU64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one `/predict` call's latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let idx = LATENCY_BUCKETS
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of latency observations so far.
    pub fn latency_count(&self) -> u64 {
        self.latency_count.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, help, value) in [
            (
                "dfp_serve_requests_total",
                "Requests received",
                self.requests_total.load(Ordering::Relaxed),
            ),
            (
                "dfp_serve_predictions_total",
                "Rows predicted",
                self.predictions_total.load(Ordering::Relaxed),
            ),
            (
                "dfp_serve_errors_total",
                "Requests answered with an error status",
                self.errors_total.load(Ordering::Relaxed),
            ),
            (
                "dfp_serve_worker_respawns_total",
                "Worker recoveries after a panicking job",
                self.worker_respawns_total.load(Ordering::Relaxed),
            ),
            (
                "dfp_serve_shed_total",
                "Requests shed because the pending queue was full",
                self.shed_total.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        out.push_str("# HELP dfp_serve_predict_latency_seconds Predict call latency\n");
        out.push_str("# TYPE dfp_serve_predict_latency_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, &ub) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "dfp_serve_predict_latency_seconds_bucket{{le=\"{ub}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "dfp_serve_predict_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "dfp_serve_predict_latency_seconds_sum {}\n",
            self.latency_sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!(
            "dfp_serve_predict_latency_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.errors_total.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("dfp_serve_requests_total 3"));
        assert!(text.contains("dfp_serve_errors_total 1"));
        assert!(text.contains("dfp_serve_predictions_total 0"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // ≤ 0.0001
        m.observe_latency(Duration::from_millis(2)); // ≤ 0.005
        m.observe_latency(Duration::from_secs(2)); // +Inf only
        let text = m.render();
        assert!(text.contains("le=\"0.0001\"} 1\n"));
        assert!(text.contains("le=\"0.005\"} 2\n"));
        assert!(text.contains("le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_seconds_count 3\n"));
        assert_eq!(m.latency_count(), 3);
    }
}
