//! Serving metrics on the unified [`dfp_obs`] registry: request/prediction
//! counters, split client/server error counters (with the historical
//! `dfp_serve_errors_total` kept as their sum), a queue-depth gauge and
//! latency + queue-wait histograms, rendered in the Prometheus text
//! exposition format.
//!
//! Each server owns its own [`dfp_obs::Registry`] so concurrent servers in
//! one process (tests, embedded use) report independent counters; the
//! process-wide pipeline/mining families from [`dfp_obs::metrics::global`]
//! are appended to every render so one `/metrics` scrape shows the whole
//! stack.

use dfp_obs::metrics::{Sample, SampleValue};
use dfp_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; `+Inf` implied.
pub const LATENCY_BUCKETS: [f64; 8] = [0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5];

/// Upper bounds (requests) of the batch-size histogram; `+Inf` implied.
pub const BATCH_SIZE_BUCKETS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Shared serving metrics.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Requests received, any endpoint.
    pub requests_total: Arc<Counter>,
    /// Rows successfully predicted.
    pub predictions_total: Arc<Counter>,
    /// Requests answered with a 4xx status.
    pub client_errors_total: Arc<Counter>,
    /// Requests answered with a 5xx status.
    pub server_errors_total: Arc<Counter>,
    /// Worker recoveries after a panicking job (self-healing pool).
    pub worker_respawns_total: Arc<Counter>,
    /// Requests shed with `503` because the pending queue was full.
    pub shed_total: Arc<Counter>,
    /// Jobs queued or running in the worker pool, sampled on accept.
    pub queue_depth: Arc<Gauge>,
    /// `/predict` parse+predict latency (excludes queue wait).
    pub predict_latency: Arc<Histogram>,
    /// Time between accept and a worker picking the connection up.
    pub queue_wait: Arc<Histogram>,
    /// Fused predict calls dispatched by the batch scheduler.
    pub batches_total: Arc<Counter>,
    /// Requests coalesced per fused predict call.
    pub batch_size: Arc<Histogram>,
    /// `/predict` rows answered from the transform cache.
    pub transform_cache_hits_total: Arc<Counter>,
    /// `/predict` rows that had to be parsed and transformed.
    pub transform_cache_misses_total: Arc<Counter>,
    /// `/metrics` render latency (the scrape path observes itself).
    pub scrape_seconds: Arc<Histogram>,
    /// Bytes of the most recent `/metrics` exposition.
    pub scrape_bytes: Arc<Gauge>,
    /// Connections currently open in the readiness loop (idle keep-alive
    /// included); `0` under the threaded core.
    pub open_connections: Arc<Gauge>,
    /// Connections the readiness loop has accepted.
    pub conns_accepted_total: Arc<Counter>,
    /// Connections closed with `408` by the slowloris guard.
    pub head_timeouts_total: Arc<Counter>,
    /// Connections refused with `503` at the `max_conns` ceiling.
    pub conn_limit_rejected_total: Arc<Counter>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics backed by a private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests_total = registry.counter("dfp_serve_requests_total", "Requests received");
        let predictions_total = registry.counter("dfp_serve_predictions_total", "Rows predicted");
        let client_errors_total = registry.counter(
            "dfp_serve_client_errors_total",
            "Requests answered with a 4xx status",
        );
        let server_errors_total = registry.counter(
            "dfp_serve_server_errors_total",
            "Requests answered with a 5xx status",
        );
        let worker_respawns_total = registry.counter(
            "dfp_serve_worker_respawns_total",
            "Worker recoveries after a panicking job",
        );
        let shed_total = registry.counter(
            "dfp_serve_shed_total",
            "Requests shed because the pending queue was full",
        );
        let queue_depth = registry.gauge(
            "dfp_serve_queue_depth",
            "Jobs queued or running in the worker pool, sampled on accept",
        );
        let predict_latency = registry.histogram(
            "dfp_serve_predict_latency_seconds",
            "Predict call latency",
            &LATENCY_BUCKETS,
        );
        let queue_wait = registry.histogram(
            "dfp_serve_queue_wait_seconds",
            "Time between accept and worker pickup",
            &LATENCY_BUCKETS,
        );
        let batches_total = registry.counter(
            "dfp_serve_batches_total",
            "Fused predict calls dispatched by the batch scheduler",
        );
        let batch_size = registry.histogram(
            "dfp_serve_batch_size",
            "Requests coalesced per fused predict call",
            &BATCH_SIZE_BUCKETS,
        );
        let transform_cache_hits_total = registry.counter(
            "dfp_serve_transform_cache_hits_total",
            "Predict rows answered from the transform cache",
        );
        let transform_cache_misses_total = registry.counter(
            "dfp_serve_transform_cache_misses_total",
            "Predict rows parsed and transformed on a cache miss",
        );
        let scrape_seconds = registry.histogram(
            "dfp_scrape_seconds",
            "Time spent rendering the /metrics exposition",
            &LATENCY_BUCKETS,
        );
        let scrape_bytes = registry.gauge(
            "dfp_scrape_bytes",
            "Bytes of the most recent /metrics exposition",
        );
        let open_connections = registry.gauge(
            "dfp_serve_open_connections",
            "Connections currently open in the readiness loop",
        );
        let conns_accepted_total = registry.counter(
            "dfp_serve_conns_accepted_total",
            "Connections accepted by the readiness loop",
        );
        let head_timeouts_total = registry.counter(
            "dfp_serve_head_timeouts_total",
            "Connections closed with 408 by the slowloris guard",
        );
        let conn_limit_rejected_total = registry.counter(
            "dfp_serve_conn_limit_rejected_total",
            "Connections refused at the max_conns ceiling",
        );
        Metrics {
            registry,
            requests_total,
            predictions_total,
            client_errors_total,
            server_errors_total,
            worker_respawns_total,
            shed_total,
            queue_depth,
            predict_latency,
            queue_wait,
            batches_total,
            batch_size,
            transform_cache_hits_total,
            transform_cache_misses_total,
            scrape_seconds,
            scrape_bytes,
            open_connections,
            conns_accepted_total,
            head_timeouts_total,
            conn_limit_rejected_total,
        }
    }

    /// The private registry backing this server's families — the TSDB
    /// collector samples it, and the SLO engine registers its burn-rate
    /// gauges into it so they appear on this server's `/metrics`.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// One collector tick's worth of samples: every family in the private
    /// registry plus the synthetic `dfp_serve_errors_total` sum (kept so
    /// SLO specs can target the historical name).
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut samples = self.registry.snapshot();
        samples.push(Sample {
            name: "dfp_serve_errors_total".to_string(),
            labels: String::new(),
            value: SampleValue::Counter(self.errors_total()),
        });
        samples
    }

    /// Counts one error response, split by status class (4xx vs 5xx).
    pub fn observe_error(&self, status: u16) {
        if (400..500).contains(&status) {
            self.client_errors_total.inc();
        } else if status >= 500 {
            self.server_errors_total.inc();
        }
    }

    /// Total error responses (client + server) — the value rendered under
    /// the historical `dfp_serve_errors_total` name.
    pub fn errors_total(&self) -> u64 {
        self.client_errors_total.get() + self.server_errors_total.get()
    }

    /// Folds the pool's monotonic respawn total into the counter. Called
    /// only from the accept thread, so the read-then-add is race-free.
    pub fn record_respawns(&self, total: u64) {
        let seen = self.worker_respawns_total.get();
        if total > seen {
            self.worker_respawns_total.add(total - seen);
        }
    }

    /// Records one `/predict` call's latency.
    pub fn observe_latency(&self, elapsed: Duration) {
        self.predict_latency.observe(elapsed);
    }

    /// Records one request's accept→worker queue wait.
    pub fn observe_queue_wait(&self, elapsed: Duration) {
        self.queue_wait.observe(elapsed);
    }

    /// Records the number of requests fused into one batch. The histogram
    /// machinery is nanos-backed; scaling by 1e9 stores the exact integer
    /// count in its "seconds" unit, so buckets and sum render precisely.
    pub fn observe_batch_size(&self, requests: usize) {
        self.batch_size
            .observe_nanos((requests as u64) * 1_000_000_000);
    }

    /// Number of latency observations so far.
    pub fn latency_count(&self) -> u64 {
        self.predict_latency.count()
    }

    /// Renders the Prometheus text exposition: this server's families, the
    /// compatibility `dfp_serve_errors_total` sum, then the process-wide
    /// pipeline/mining families.
    pub fn render(&self) -> String {
        let mut out = self.registry.render();
        out.push_str("# HELP dfp_serve_errors_total Requests answered with an error status\n");
        out.push_str("# TYPE dfp_serve_errors_total counter\n");
        out.push_str(&format!("dfp_serve_errors_total {}\n", self.errors_total()));
        // The global registry carries mining/selection/pipeline families;
        // touch() pre-registers the well-known ones so a scrape shows the
        // full schema even before the first fit or predict.
        dfp_obs::metrics::dfp::touch();
        dfp_obs::metrics::global().render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render() {
        let m = Metrics::new();
        m.requests_total.add(3);
        m.observe_error(404);
        let text = m.render();
        assert!(text.contains("dfp_serve_requests_total 3"));
        assert!(text.contains("dfp_serve_client_errors_total 1"));
        assert!(text.contains("dfp_serve_server_errors_total 0"));
        assert!(text.contains("dfp_serve_errors_total 1"));
        assert!(text.contains("dfp_serve_predictions_total 0"));
    }

    #[test]
    fn errors_total_is_the_sum_of_both_classes() {
        let m = Metrics::new();
        m.observe_error(400);
        m.observe_error(413);
        m.observe_error(503);
        assert_eq!(m.client_errors_total.get(), 2);
        assert_eq!(m.server_errors_total.get(), 1);
        assert_eq!(m.errors_total(), 3);
        assert!(m.render().contains("dfp_serve_errors_total 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_micros(50)); // ≤ 0.0001
        m.observe_latency(Duration::from_millis(2)); // ≤ 0.005
        m.observe_latency(Duration::from_secs(2)); // +Inf only
        let text = m.render();
        assert!(text.contains("le=\"0.0001\"} 1\n"));
        assert!(text.contains("le=\"0.005\"} 2\n"));
        assert!(text.contains("dfp_serve_predict_latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dfp_serve_predict_latency_seconds_count 3\n"));
        assert_eq!(m.latency_count(), 3);
    }

    #[test]
    fn histogram_sum_is_exact_decimal() {
        let m = Metrics::new();
        m.observe_latency(Duration::from_nanos(1_500_000_001));
        let text = m.render();
        assert!(
            text.contains("dfp_serve_predict_latency_seconds_sum 1.500000001\n"),
            "{text}"
        );
    }

    #[test]
    fn batch_size_histogram_counts_requests_exactly() {
        let m = Metrics::new();
        m.batches_total.inc();
        m.observe_batch_size(1);
        m.observe_batch_size(8);
        m.observe_batch_size(100); // beyond the last bound → +Inf only
        let text = m.render();
        assert!(
            text.contains("dfp_serve_batch_size_bucket{le=\"1\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("dfp_serve_batch_size_bucket{le=\"8\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("dfp_serve_batch_size_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("dfp_serve_batch_size_sum 109.000000000\n"),
            "{text}"
        );
        assert!(text.contains("dfp_serve_batches_total 1\n"));
    }

    #[test]
    fn connection_families_render() {
        let m = Metrics::new();
        m.open_connections.set(12);
        m.conns_accepted_total.add(40);
        m.head_timeouts_total.inc();
        let text = m.render();
        assert!(text.contains("dfp_serve_open_connections 12"));
        assert!(text.contains("dfp_serve_conns_accepted_total 40"));
        assert!(text.contains("dfp_serve_head_timeouts_total 1"));
        assert!(text.contains("dfp_serve_conn_limit_rejected_total 0"));
    }

    #[test]
    fn cache_counters_render() {
        let m = Metrics::new();
        m.transform_cache_hits_total.add(5);
        m.transform_cache_misses_total.inc();
        let text = m.render();
        assert!(text.contains("dfp_serve_transform_cache_hits_total 5"));
        assert!(text.contains("dfp_serve_transform_cache_misses_total 1"));
    }

    #[test]
    fn respawns_fold_monotonically() {
        let m = Metrics::new();
        m.record_respawns(2);
        m.record_respawns(2); // no change
        m.record_respawns(5);
        assert_eq!(m.worker_respawns_total.get(), 5);
    }

    #[test]
    fn render_passes_conformance_check() {
        let m = Metrics::new();
        m.requests_total.inc();
        m.observe_error(400);
        m.observe_error(500);
        m.observe_latency(Duration::from_millis(3));
        m.observe_queue_wait(Duration::from_micros(40));
        m.queue_depth.set(7);
        let text = m.render();
        let stats = dfp_obs::promcheck::check(&text)
            .unwrap_or_else(|errs| panic!("conformance errors: {errs:?}\n{text}"));
        assert!(stats.families >= 10, "{stats:?}");
    }
}
