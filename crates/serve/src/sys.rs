//! Thin epoll syscall shim for the readiness loop — Linux only, std only.
//!
//! std already links the platform libc, so declaring the four epoll entry
//! points `extern "C"` costs no cargo dependency. This module is the only
//! place in the crate allowed to use `unsafe`; everything above it talks to
//! the safe [`Epoll`] wrapper in terms of raw fds and interest flags.
//!
//! On non-Linux targets [`Epoll::new`] returns an error, and the server
//! falls back to the threaded blocking core.

#![allow(unsafe_code)]

/// Readable readiness (`EPOLLIN`).
pub const EV_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EV_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EV_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested. Both
/// halves are gone (or the connection was reset); nothing useful can be
/// written to such a socket.
pub const EV_HANGUP: u32 = 0x010;

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token registered with the fd.
    pub token: u64,
    /// Bitmask of `EV_*` flags.
    pub flags: u32,
}

impl Ready {
    /// Whether the fd is readable (or the peer hung up, which reads as EOF).
    pub fn readable(&self) -> bool {
        self.flags & (EV_READ | EV_HANGUP | EV_ERROR) != 0
    }

    /// Whether the peer is entirely gone (`EPOLLHUP`).
    pub fn hangup(&self) -> bool {
        self.flags & EV_HANGUP != 0
    }

    /// Whether the fd is writable.
    pub fn writable(&self) -> bool {
        self.flags & (EV_WRITE | EV_ERROR | EV_HANGUP) != 0
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::Ready;
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    /// Kernel ABI for `struct epoll_event`: packed on x86 so the 64-bit
    /// token sits at offset 4. Fields are copied out, never borrowed.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// RAII wrapper over one epoll instance (level-triggered throughout).
    #[derive(Debug)]
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest,
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` for the `EV_*` interest bits under `token`.
        pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Changes the interest set of an already-registered fd.
        pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Removes `fd` from the interest list. Kernel-side removal also
        /// happens automatically when the fd closes.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) and appends ready
        /// tokens to `out`. EINTR retries; returns the notification count.
        pub fn wait(&self, timeout_ms: i32, out: &mut Vec<Ready>) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut events = [EpollEvent { events: 0, data: 0 }; CAP];
            loop {
                // SAFETY: `events` is a valid buffer of CAP entries for the
                // duration of the call.
                let n =
                    unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), CAP as i32, timeout_ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in events.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct field by
                    // field; taking references would be UB on x86.
                    let flags = { ev.events };
                    let token = { ev.data };
                    out.push(Ready { token, flags });
                }
                return Ok(n as usize);
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: we own the fd and close it exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Ready;
    use std::io;

    /// Stub: epoll is unavailable here; the server uses the blocking core.
    #[derive(Debug)]
    pub struct Epoll;

    impl Epoll {
        /// Always fails on non-Linux targets.
        pub fn new() -> io::Result<Epoll> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll readiness loop requires Linux; using the threaded core",
            ))
        }

        /// Unreachable on non-Linux (`new` never succeeds).
        pub fn add(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off Linux")
        }

        /// Unreachable on non-Linux (`new` never succeeds).
        pub fn modify(&self, _fd: i32, _interest: u32, _token: u64) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off Linux")
        }

        /// Unreachable on non-Linux (`new` never succeeds).
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unreachable!("Epoll::new never succeeds off Linux")
        }

        /// Unreachable on non-Linux (`new` never succeeds).
        pub fn wait(&self, _timeout_ms: i32, _out: &mut Vec<Ready>) -> io::Result<usize> {
            unreachable!("Epoll::new never succeeds off Linux")
        }
    }
}

pub use imp::Epoll;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_flows_through_the_wrapper() {
        let ep = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        ep.add(b.as_raw_fd(), EV_READ, 42).expect("add");

        // Nothing readable yet.
        let mut out = Vec::new();
        ep.wait(0, &mut out).expect("wait");
        assert!(out.is_empty());

        a.write_all(b"ping").expect("write");
        ep.wait(1000, &mut out).expect("wait");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable());

        // Level-triggered: still readable until drained.
        out.clear();
        ep.wait(0, &mut out).expect("wait");
        assert_eq!(out.len(), 1);

        ep.delete(b.as_raw_fd()).expect("del");
        out.clear();
        ep.wait(0, &mut out).expect("wait");
        assert!(out.is_empty());

        // Hangup reads as readable (EOF).
        ep.add(b.as_raw_fd(), EV_READ, 7).expect("re-add");
        drop(a);
        out.clear();
        ep.wait(1000, &mut out).expect("wait");
        assert_eq!(out.len(), 1);
        assert!(out[0].readable());
    }
}
