//! The serving loop: a `TcpListener` accept thread feeding a fixed worker
//! pool, four routes, and graceful shutdown.
//!
//! Routes:
//!
//! * `POST /predict` — body is CSV attribute rows (no class column), answer
//!   is one predicted class name per line;
//! * `GET /healthz` — liveness probe, always `ok`;
//! * `GET /readyz` — readiness probe: `200` once the model can serve
//!   predictions (it carries a schema), `503` otherwise;
//! * `GET /metrics` — Prometheus text exposition of the serving counters
//!   (the scrape path observes itself via `dfp_scrape_seconds` /
//!   `dfp_scrape_bytes`);
//! * `GET /alerts` — SLO burn-rate alert states as JSON;
//! * `GET /metrics/history` — the in-process TSDB's retained series,
//!   windowed percentiles and audit events as JSON;
//! * `GET /debug/traces` — tail-sampled slow/5xx request captures as JSON;
//! * `GET /dashboard` — a self-contained HTML operator view (sparklines,
//!   alert states, registry events, kept traces).
//!
//! The last four exist when the TSDB stack is enabled ([`ServerConfig`]
//! `tsdb`, default on) and answer `404` otherwise.
//!
//! Robustness: all limits come from [`ServerConfig`] (env-overridable);
//! the pool recovers panicking workers in place (`worker_respawns_total`);
//! connections beyond the pending-queue depth are shed with `503` +
//! `Retry-After` instead of queueing unboundedly; and each request carries a
//! deadline from accept time so an overloaded server answers `503` rather
//! than holding a worker past its budget.
//!
//! Shutdown: [`ServerHandle::shutdown`] (or dropping the handle) raises a
//! flag and pokes the listener with a loopback connection so the accept
//! loop (blocking `accept` or the epoll wait) observes it; the accept
//! thread then drops the pool, which joins every worker.
//!
//! Two transports, one brain: everything above the socket — routing,
//! limits, metrics, deadline handling, response rendering — lives in
//! [`Engine`]. The historical thread-per-connection core and the
//! [`crate::reactor`] readiness loop (`DFP_SERVE_EVENT_LOOP=1`) are both
//! thin delivery layers over the same `Engine`, so their observable
//! behavior cannot drift.

use crate::batch::BatchScheduler;
use crate::cache::TransformCache;
use crate::config::ServerConfig;
use crate::http::{read_request_limited, render_response, HttpError, Request};
use crate::metrics::Metrics;
use crate::observe::ServeObs;
use crate::pool::ThreadPool;
use crate::rows::{data_lines, parse_row_line, render_labels, RowsError};
use dfp_core::PatternClassifier;
use dfp_data::dataset::{Dataset, Value};
use dfp_data::schema::ClassId;
use dfp_registry::{ModelRegistry, SwapError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The `Retry-After` seconds suggested to shed or deadline-expired clients.
const RETRY_AFTER_SECS: &str = "1";

/// Body of every deadline-exceeded `503`, constructed in one place so the
/// queue-wait check, the parse-stage check and the batch-reply timeout
/// cannot drift apart.
const DEADLINE_EXCEEDED_BODY: &str = "request deadline exceeded\n";

/// Body of the load-shedding `503`.
const SHED_BODY: &[u8] = b"server overloaded, retry later\n";

/// Longest the accept thread spends draining a shed connection so its
/// close is a clean FIN instead of an RST.
const SHED_DRAIN_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(250);

/// Longest propagated `X-Request-Id` accepted verbatim; anything longer (or
/// containing non-printable bytes) is replaced by a generated id.
const MAX_REQUEST_ID: usize = 64;

/// Monotonic per-process sequence for generated request ids.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Generates a process-unique request id (`<pid hex>-<seq hex>`).
fn fresh_request_id() -> String {
    format!(
        "{:x}-{:06x}",
        std::process::id(),
        NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
    )
}

/// The id to tag this request with: the client's `X-Request-Id` when it is
/// short and printable (trace continuity across services), otherwise fresh.
fn request_id_for(request: &Request) -> String {
    match request.header("x-request-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= MAX_REQUEST_ID
                && id.bytes().all(|b| (0x21..=0x7e).contains(&b)) =>
        {
            id.to_string()
        }
        _ => fresh_request_id(),
    }
}

/// A running server. Dropping the handle shuts the server down exactly like
/// [`Self::shutdown`]: stop accepting, drain in-flight work, join threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept_thread: Option<JoinHandle<()>>,
    // Held so the batcher thread outlives every worker; joined when the
    // last Arc drops, after the accept thread (and its pool) are gone.
    scheduler: Option<Arc<BatchScheduler>>,
    // The TSDB/SLO/tail stack; dropping it (after the accept thread and
    // its workers are gone) stops the collector thread.
    obs: Option<Arc<ServeObs>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The observability stack, when the TSDB is enabled.
    pub fn obs(&self) -> Option<&ServeObs> {
        self.obs.as_deref()
    }

    /// Stops accepting, drains in-flight work and joins all threads.
    /// Equivalent to dropping the handle; kept for explicitness at call
    /// sites.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Retire the batcher BEFORE joining the worker pool. Everything
        // already queued is answered, and any worker that submits after
        // this point is refused and predicts inline — so no worker can
        // block on (or spuriously 500 from) a reply channel whose batcher
        // is gone. The old order (pool first) had a window where a drained
        // batch's reply raced the join.
        if let Some(s) = &self.scheduler {
            s.shutdown();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.scheduler.take();
        // Workers are gone; stopping the collector last means every sample
        // they produced is still collected into the final ticks.
        self.obs.take();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `model` on a pool of
/// `threads` workers, with all other limits taken from the environment
/// ([`ServerConfig::from_env`]). Returns once the listener is bound —
/// serving continues on background threads until [`ServerHandle::shutdown`]
/// or the handle is dropped.
pub fn serve(model: PatternClassifier, addr: &str, threads: usize) -> io::Result<ServerHandle> {
    serve_with_config(model, addr, ServerConfig::from_env().with_threads(threads))
}

/// Binds `addr` and serves `model` with explicit [`ServerConfig`] limits.
pub fn serve_with_config(
    model: PatternClassifier,
    addr: &str,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_impl(Some(model), None, addr, cfg)
}

/// Binds `addr` and serves a multi-model [`ModelRegistry`] (routes under
/// `/m/{name}/…` plus the `PUT /m/{name}` admin hot-swap endpoint), with an
/// optional default `model` behind the classic root routes. Without a
/// default model, root `/predict` answers `404` and root `/readyz` reports
/// readiness as "at least one registry model can serve".
pub fn serve_registry_with_config(
    model: Option<PatternClassifier>,
    registry: Arc<ModelRegistry>,
    addr: &str,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_impl(model, Some(registry), addr, cfg)
}

fn serve_impl(
    model: Option<PatternClassifier>,
    registry: Option<Arc<ModelRegistry>>,
    addr: &str,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let threads = cfg.resolved_threads();
    let engine = Arc::new(Engine::new(model, registry, cfg));
    let metrics = Arc::clone(&engine.metrics);
    let scheduler = engine.scheduler.clone();
    let obs = engine.obs.clone();

    // The reactor's fallible plumbing (epoll instance, wake pipe, listener
    // registration) is assembled before the accept thread spawns, so a
    // failure — non-Linux target, fd pressure — degrades to the threaded
    // core instead of a dead server.
    let reactor = if engine.cfg.event_loop {
        match crate::reactor::Reactor::new(&listener) {
            Ok(r) => Some(r),
            Err(e) => {
                let _ = listener.set_nonblocking(false);
                dfp_obs::log::warn(
                    "dfp_serve",
                    "readiness loop unavailable; falling back to the threaded core",
                    &[("why", &e.to_string())],
                );
                None
            }
        }
    } else {
        None
    };

    let accept_thread = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("dfp-serve-accept".into())
            .spawn(move || {
                let pool = ThreadPool::bounded(threads, engine.cfg.queue_depth);
                match reactor {
                    Some(r) => r.run(listener, engine, pool, stop),
                    None => blocking_accept_loop(listener, engine, pool, stop),
                }
                // pool drops here: channel closes, workers drain and join
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        metrics,
        accept_thread: Some(accept_thread),
        scheduler,
        obs,
    })
}

/// The historical thread-per-connection core: blocking accept, shed at the
/// accept thread when the pending queue is full, one pooled worker per
/// connection.
fn blocking_accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    pool: ThreadPool,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Chaos hook: a simulated accept-path failure drops the
        // connection as a flaky network would.
        if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("serve.accept") {
            continue;
        }
        // Surface pool self-healing in /metrics; refreshed on
        // every accept so scrapes observe earlier respawns.
        engine.metrics.record_respawns(pool.respawns());
        engine.metrics.queue_depth.set(pool.pending() as i64);
        // Load shedding: a full pending queue answers 503 right
        // here on the accept thread instead of queueing without
        // bound (the check is approximate under races, which
        // only flexes the bound by the number of accepts in
        // flight — there is exactly one accept thread).
        if pool.pending() >= engine.cfg.queue_depth {
            let _ = stream.set_write_timeout(Some(engine.cfg.io_timeout));
            let _ = io::Write::write_all(&mut stream, &engine.shed_response());
            // The request was never read; closing now would RST
            // the socket and can destroy the 503 still in
            // flight. Signal end-of-response and drain what the
            // client sent so the close is a clean FIN. The read
            // timeout bounds how long a misbehaving client can
            // hold the accept thread.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(SHED_DRAIN_TIMEOUT));
            let mut sink = [0u8; 4096];
            while let Ok(n) = io::Read::read(&mut stream, &mut sink) {
                if n == 0 {
                    break;
                }
            }
            continue;
        }
        let accepted = Instant::now();
        let engine = Arc::clone(&engine);
        pool.execute(move || handle_connection(stream, &engine, accepted));
    }
}

/// One pooled worker serving one blocking connection end to end: read,
/// answer via the shared [`Engine`], write, close.
fn handle_connection(mut stream: TcpStream, engine: &Engine, accepted: Instant) {
    // Chaos hook on the worker path: `panic` exercises pool self-healing,
    // `sleep` exercises queue backpressure and request deadlines.
    dfp_fault::faultpoint!("serve.worker");
    // Accept→worker pickup time is the backpressure signal: it grows before
    // requests start missing deadlines, so it gets its own histogram.
    let queue_wait = accepted.elapsed();
    let _ = stream.set_read_timeout(Some(engine.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(engine.cfg.io_timeout));
    let bytes = match read_request_limited(&mut stream, engine.cfg.max_body_bytes) {
        Ok(request) => engine.respond_to(&request, accepted, queue_wait, false),
        Err(e) => match engine.reject_to(&e, accepted) {
            Some(bytes) => bytes,
            None => return, // peer went away (includes shutdown wake)
        },
    };
    let _ = io::Write::write_all(&mut stream, &bytes);
}

/// Everything both serving cores share above the transport: the model(s),
/// limits, metrics, batch scheduler, transform cache and observability
/// stack, plus the request → response-bytes logic. The blocking worker and
/// the readiness loop are delivery layers over one `Engine`, which is what
/// makes their responses byte-comparable (the equivalence the
/// `tests/conn_fsm.rs` harness asserts).
pub struct Engine {
    model: Option<Arc<PatternClassifier>>,
    registry: Option<Arc<ModelRegistry>>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) cfg: Arc<ServerConfig>,
    pub(crate) scheduler: Option<Arc<BatchScheduler>>,
    cache: Option<Arc<TransformCache>>,
    pub(crate) obs: Option<Arc<ServeObs>>,
}

impl Engine {
    /// Assembles the shared serving brain: metrics, the batch scheduler
    /// (when `batch_max > 1` and a default model exists), the transform
    /// cache and the TSDB stack, per `cfg`.
    pub fn new(
        model: Option<PatternClassifier>,
        registry: Option<Arc<ModelRegistry>>,
        cfg: ServerConfig,
    ) -> Engine {
        let model = model.map(Arc::new);
        let metrics = Arc::new(Metrics::new());
        // batch_max == 1 disables the scheduler entirely: every worker
        // predicts inline, the historical behavior. The scheduler is bound
        // to the default model; registry-routed requests always predict
        // inline against their own version snapshot.
        let scheduler = match &model {
            Some(model) if cfg.batch_max > 1 => Some(Arc::new(BatchScheduler::start(
                Arc::clone(model),
                Arc::clone(&metrics),
                cfg.batch_max,
                cfg.batch_wait,
            ))),
            _ => None,
        };
        let cache = cfg
            .cache
            .then(|| Arc::new(TransformCache::new(crate::cache::DEFAULT_CAP)));
        let obs = cfg
            .tsdb
            .then(|| ServeObs::start(&cfg, &metrics, registry.as_ref()))
            .flatten()
            .map(Arc::new);
        Engine {
            model,
            registry,
            metrics,
            cfg: Arc::new(cfg),
            scheduler,
            cache,
            obs,
        }
    }

    /// Live serving metrics (exposed for the test harness).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Answers a complete request: deadline check, routing, metrics, tail
    /// capture, access log — returns the rendered response bytes.
    /// `queue_wait` is the accept→pickup delay already incurred;
    /// `keep_alive` says whether the transport intends to reuse the
    /// connection (the rendered `Connection` header is the only byte-level
    /// difference it makes).
    pub fn respond_to(
        &self,
        request: &Request,
        accepted: Instant,
        queue_wait: Duration,
        keep_alive: bool,
    ) -> Vec<u8> {
        self.metrics.observe_queue_wait(queue_wait);
        let mut sp = dfp_obs::span("serve.request");
        sp.attr("queue_wait_ns", queue_wait.as_nanos());
        // Tail sampling: every request offers a capture; whether it is kept
        // is decided at the end (5xx, or slower than the live windowed p99).
        let mut capture = self.obs.as_deref().and_then(|o| o.tail().begin());
        let deadline = accepted + self.cfg.request_deadline;
        self.metrics.requests_total.inc();
        let rid = request_id_for(request);
        if sp.is_active() {
            sp.attr("method", &request.method);
            sp.attr("path", &request.path);
            sp.attr("request_id", &rid);
        }
        let (status, reason, body): (u16, &'static str, String) = if Instant::now() > deadline {
            // Queue wait alone exhausted the request budget — answer cheaply.
            (
                503,
                "Service Unavailable",
                DEADLINE_EXCEEDED_BODY.to_string(),
            )
        } else {
            route(
                request,
                self.model.as_deref(),
                self.registry.as_deref(),
                &self.metrics,
                &self.cfg,
                deadline,
                self.scheduler.as_deref(),
                self.cache.as_deref(),
                self.obs.as_deref(),
                &rid,
                capture.as_mut(),
            )
        };
        sp.attr("status", status);
        let bytes = self.render(
            &rid,
            &request.method,
            &request.path,
            status,
            reason,
            &body,
            accepted,
            keep_alive,
        );
        if let (Some(o), Some(capture)) = (self.obs.as_deref(), capture.take()) {
            o.tail().finish(
                capture,
                &rid,
                &request.method,
                &request.path,
                status,
                queue_wait.as_nanos() as u64,
            );
        }
        bytes
    }

    /// The response to a stream that never produced a parseable request:
    /// `413` for limit violations, `400` for malformed bytes, `None` for a
    /// peer that simply went away (close silently). Always
    /// `Connection: close` — the stream is unframed past the error.
    pub fn reject_to(&self, err: &HttpError, accepted: Instant) -> Option<Vec<u8>> {
        let (status, reason, body): (u16, &'static str, String) = match err {
            HttpError::Io => return None,
            HttpError::TooLarge => (413, "Payload Too Large", "request too large\n".to_string()),
            HttpError::BadRequest(why) => (400, "Bad Request", format!("{why}\n")),
        };
        self.metrics.requests_total.inc();
        Some(self.render(
            &fresh_request_id(),
            "-",
            "-",
            status,
            reason,
            &body,
            accepted,
            false,
        ))
    }

    /// The load-shedding `503` (queue full), with its metrics and warn log.
    /// Used by the blocking accept thread before reading the request, and
    /// by the reactor at dispatch time and at the `max_conns` ceiling.
    pub(crate) fn shed_response(&self) -> Vec<u8> {
        let rid = fresh_request_id();
        self.metrics.requests_total.inc();
        self.metrics.observe_error(503);
        self.metrics.shed_total.inc();
        let bytes = render_response(
            503,
            "Service Unavailable",
            "text/plain",
            &[("Retry-After", RETRY_AFTER_SECS), ("X-Request-Id", &rid)],
            SHED_BODY,
            false,
        );
        dfp_obs::log::warn(
            "dfp_serve",
            "request shed: pending queue full",
            &[("request_id", &rid), ("status", "503")],
        );
        bytes
    }

    /// The slowloris `408`: a connection produced its first byte but no
    /// complete request within the configured head timeout.
    pub(crate) fn timeout_response(&self) -> Vec<u8> {
        let rid = fresh_request_id();
        self.metrics.requests_total.inc();
        self.metrics.observe_error(408);
        self.metrics.head_timeouts_total.inc();
        let bytes = render_response(
            408,
            "Request Timeout",
            "text/plain",
            &[("X-Request-Id", &rid)],
            b"request header timeout\n",
            false,
        );
        dfp_obs::log::warn(
            "dfp_serve",
            "connection timed out before a complete request",
            &[("request_id", &rid), ("status", "408")],
        );
        bytes
    }

    /// Renders the response (always tagged `X-Request-Id`; `Retry-After` on
    /// `503`/`409`), counts 4xx/5xx in the split error counters, and emits
    /// one structured access-log event.
    #[allow(clippy::too_many_arguments)]
    fn render(
        &self,
        rid: &str,
        method: &str,
        path: &str,
        status: u16,
        reason: &str,
        body: &str,
        accepted: Instant,
        keep_alive: bool,
    ) -> Vec<u8> {
        if status >= 400 {
            self.metrics.observe_error(status);
        }
        let mut headers: Vec<(&str, &str)> = vec![("X-Request-Id", rid)];
        // 503 = shed/overload, 409 = concurrent swap: both are
        // retryable-later conditions the client backoff honors.
        if status == 503 || status == 409 {
            headers.push(("Retry-After", RETRY_AFTER_SECS));
        }
        // Observability endpoints answer HTML/JSON; error bodies are always
        // plain text regardless of path.
        let content_type = if status < 400 {
            match path {
                "/dashboard" => "text/html; charset=utf-8",
                "/alerts" | "/metrics/history" | "/debug/traces" => "application/json",
                _ => "text/plain",
            }
        } else {
            "text/plain"
        };
        let bytes = render_response(
            status,
            reason,
            content_type,
            &headers,
            body.as_bytes(),
            keep_alive,
        );
        if dfp_obs::log::enabled(dfp_obs::log::Level::Info) {
            let status = status.to_string();
            let elapsed_us = accepted.elapsed().as_micros().to_string();
            dfp_obs::log::info(
                "dfp_serve",
                "request",
                &[
                    ("method", method),
                    ("path", path),
                    ("status", &status),
                    ("request_id", rid),
                    ("elapsed_us", &elapsed_us),
                ],
            );
        }
        bytes
    }
}

#[allow(clippy::too_many_arguments)]
fn route(
    request: &Request,
    model: Option<&PatternClassifier>,
    registry: Option<&ModelRegistry>,
    metrics: &Metrics,
    cfg: &ServerConfig,
    deadline: Instant,
    scheduler: Option<&BatchScheduler>,
    cache: Option<&TransformCache>,
    obs: Option<&ServeObs>,
    rid: &str,
    capture: Option<&mut dfp_obs::tail::TailCapture>,
) -> (u16, &'static str, String) {
    if request.path.starts_with("/m/") {
        return route_model(request, registry, metrics, cfg, deadline, rid, capture);
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", "ok\n".to_string()),
        ("GET", "/readyz") => {
            let Some(model) = model else {
                return registry_readyz(registry);
            };
            if model.schema().is_some() {
                // Ready but degraded is still ready — the model answers
                // predictions — so the report rides in the body, not the
                // status, and the `dfp_pipeline_degraded` gauge in /metrics.
                let report = model.degradation();
                if report.is_degraded() {
                    let why = report
                        .mining_stopped_by
                        .map(|r| format!("{r:?}"))
                        .unwrap_or_else(|| "unknown".to_string());
                    (
                        200,
                        "OK",
                        format!("ready (degraded: mining stopped by {why})\n"),
                    )
                } else {
                    (200, "OK", "ready\n".to_string())
                }
            } else {
                (
                    503,
                    "Service Unavailable",
                    "model artifact carries no schema; not ready\n".to_string(),
                )
            }
        }
        ("GET", "/metrics") => {
            // The scrape path observes itself: render latency and byte size
            // land in the same exposition the next scrape sees.
            let started = Instant::now();
            let mut out = metrics.render();
            if let Some(reg) = registry {
                reg.render_metrics_into(&mut out);
            }
            metrics.scrape_seconds.observe(started.elapsed());
            metrics.scrape_bytes.set(out.len() as i64);
            (200, "OK", out)
        }
        ("GET", "/alerts") => match obs {
            Some(o) => {
                let now = dfp_obs::tsdb::now_unix_ms();
                let body = match o.slo() {
                    Some(engine) => engine.render_alerts_json(now),
                    None => format!("{{\"now_ms\":{now},\"firing\":0,\"alerts\":[]}}"),
                };
                (200, "OK", body)
            }
            None => (404, "Not Found", "tsdb disabled (DFP_TSDB=0)\n".to_string()),
        },
        ("GET", "/metrics/history") => match obs {
            Some(o) => (
                200,
                "OK",
                o.tsdb()
                    .render_history_json(dfp_obs::tsdb::now_unix_ms(), 240),
            ),
            None => (404, "Not Found", "tsdb disabled (DFP_TSDB=0)\n".to_string()),
        },
        ("GET", "/debug/traces") => match obs {
            Some(o) => (
                200,
                "OK",
                o.tail().render_traces_json(dfp_obs::tsdb::now_unix_ms()),
            ),
            None => (404, "Not Found", "tsdb disabled (DFP_TSDB=0)\n".to_string()),
        },
        ("GET", "/dashboard") => match obs {
            Some(o) => (
                200,
                "OK",
                dfp_obs::dashboard::render(
                    "dfp-serve",
                    o.tsdb(),
                    o.slo(),
                    Some(o.tail()),
                    dfp_obs::tsdb::now_unix_ms(),
                ),
            ),
            None => (404, "Not Found", "tsdb disabled (DFP_TSDB=0)\n".to_string()),
        },
        ("POST", "/predict") => match model {
            Some(m) => predict(
                request, m, metrics, cfg, deadline, scheduler, cache, rid, capture,
            ),
            None => (
                404,
                "Not Found",
                "no default model loaded; POST to /m/{name}/predict\n".to_string(),
            ),
        },
        ("GET", "/predict") => (
            405,
            "Method Not Allowed",
            "POST CSV rows to /predict\n".to_string(),
        ),
        _ => (404, "Not Found", "not found\n".to_string()),
    }
}

/// Root `/readyz` for a registry-only server: ready when at least one model
/// has a valid current version.
fn registry_readyz(registry: Option<&ModelRegistry>) -> (u16, &'static str, String) {
    let Some(registry) = registry else {
        return (
            503,
            "Service Unavailable",
            "no model and no registry configured; not ready\n".to_string(),
        );
    };
    let ready: Vec<String> = registry
        .names()
        .into_iter()
        .filter(|n| registry.model(n).and_then(|s| s.current()).is_some())
        .collect();
    if ready.is_empty() {
        (
            503,
            "Service Unavailable",
            "no registry model has a valid version; not ready\n".to_string(),
        )
    } else {
        (200, "OK", format!("ready (models: {})\n", ready.join(",")))
    }
}

/// Routes `/m/{name}/predict`, `/m/{name}/readyz` and the `PUT /m/{name}`
/// admin hot-swap endpoint.
#[allow(clippy::too_many_arguments)]
fn route_model(
    request: &Request,
    registry: Option<&ModelRegistry>,
    metrics: &Metrics,
    cfg: &ServerConfig,
    deadline: Instant,
    rid: &str,
    capture: Option<&mut dfp_obs::tail::TailCapture>,
) -> (u16, &'static str, String) {
    let Some(registry) = registry else {
        return (
            404,
            "Not Found",
            "no model registry configured\n".to_string(),
        );
    };
    let rest = &request.path["/m/".len()..];
    let (name, action) = match rest.split_once('/') {
        Some((n, a)) => (n, a),
        None => (rest, ""),
    };
    match (request.method.as_str(), action) {
        // The hot-swap endpoint shares the data-plane listener, so when an
        // admin token is configured it is what stands between any client
        // that can reach /predict and replacing the production model.
        ("PUT", "") => match &cfg.admin_token {
            Some(expected) if request.header("x-admin-token") != Some(expected.as_str()) => (
                401,
                "Unauthorized",
                "missing or invalid X-Admin-Token\n".to_string(),
            ),
            _ => admin_swap(request, registry, name),
        },
        ("GET", "readyz") => match registry.model(name) {
            None => (404, "Not Found", format!("unknown model '{name}'\n")),
            Some(slot) => match slot.current() {
                Some(v) => (200, "OK", format!("ready (version {})\n", v.version)),
                None => (
                    503,
                    "Service Unavailable",
                    format!("model '{name}' has no valid version; not ready\n"),
                ),
            },
        },
        ("POST", "predict") => {
            let Some(slot) = registry.model(name) else {
                return (404, "Not Found", format!("unknown model '{name}'\n"));
            };
            // Holding the version Arc for the whole request is the drain
            // contract: a concurrent swap retires this version only after
            // the last in-flight reference drops.
            let Some(version) = slot.current() else {
                return (
                    503,
                    "Service Unavailable",
                    format!("model '{name}' has no valid version; not ready\n"),
                );
            };
            slot.requests().inc();
            let start = Instant::now();
            // Registry models predict inline: the batch scheduler and the
            // transform cache are bound to the default model, and neither
            // is version-safe across hot-swaps.
            let answer = predict(
                request,
                &version.model,
                metrics,
                cfg,
                deadline,
                None,
                None,
                rid,
                capture,
            );
            slot.latency().observe(start.elapsed());
            if answer.0 == 200 {
                slot.predictions().add(answer.2.lines().count() as u64);
            }
            answer
        }
        ("GET", "predict") => (
            405,
            "Method Not Allowed",
            "POST CSV rows to /m/{name}/predict\n".to_string(),
        ),
        _ => (404, "Not Found", "not found\n".to_string()),
    }
}

/// The serving layer's registry validation hook: the canary a candidate
/// artifact must pass before a hot-swap flips the `CURRENT` pointer (and
/// before recovery chooses it at boot). It exercises exactly the serving
/// path — parse the stored probe CSV row against the candidate's schema,
/// then predict it; without a stored probe it falls back to a featureless
/// predict. Install with
/// [`dfp_registry::ModelRegistry::open_with_validator`].
pub fn registry_validator() -> dfp_registry::Validator {
    Arc::new(
        |model: &PatternClassifier, probe: Option<&str>| -> Result<(), String> {
            let Some(schema) = model.schema() else {
                return Err("artifact carries no schema; not servable".to_string());
            };
            match probe {
                Some(text) => {
                    let dataset = crate::rows::parse_rows(schema, text)
                        .map_err(|e| format!("probe row rejected by candidate schema: {e}"))?;
                    let labels = model
                        .predict(&dataset)
                        .map_err(|e| format!("canary predict failed: {e}"))?;
                    if labels.is_empty() {
                        return Err("canary predict returned no labels".to_string());
                    }
                }
                None => {
                    let labels = model.predict_rows(&[Vec::new()]);
                    if labels.len() != 1 {
                        return Err(format!(
                            "canary predict returned {} labels, expected 1",
                            labels.len()
                        ));
                    }
                }
            }
            Ok(())
        },
    )
}

/// `PUT /m/{name}`: body is a complete `DFPM` artifact; the optional
/// `X-Probe-Row` header carries a canary CSV row that is validated against
/// the new artifact and stored only on promotion. The envelope
/// (magic/version/CRC) is checked before the registry is touched, so a
/// corrupted upload is a cheap `400`. When `DFP_ADMIN_TOKEN` is set the
/// route is reached only with a matching `X-Admin-Token` header.
fn admin_swap(
    request: &Request,
    registry: &ModelRegistry,
    name: &str,
) -> (u16, &'static str, String) {
    if let Err(e) = dfp_model::verify_bytes(&request.body) {
        return (400, "Bad Request", format!("artifact rejected: {e}\n"));
    }
    let probe = request.header("x-probe-row").map(str::to_string);
    match registry.publish_bytes(name, &request.body, probe.as_deref()) {
        Ok(report) => (
            200,
            "OK",
            format!(
                "model '{}' now at version {} (previous: {}, drained: {})\n",
                report.name,
                report.version,
                report
                    .previous
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "none".to_string()),
                report.drained
            ),
        ),
        Err(SwapError::Busy) => (
            409,
            "Conflict",
            "another swap of this model is in progress; retry later\n".to_string(),
        ),
        Err(e @ SwapError::InvalidName(_)) => (400, "Bad Request", format!("{e}\n")),
        Err(e @ SwapError::InvalidArtifact(_)) => (400, "Bad Request", format!("{e}\n")),
        Err(e @ SwapError::Rejected(_)) => (422, "Unprocessable Entity", format!("{e}\n")),
        Err(e @ SwapError::Io(_)) => (500, "Internal Server Error", format!("{e}\n")),
    }
}

#[allow(clippy::too_many_arguments)]
fn predict(
    request: &Request,
    model: &PatternClassifier,
    metrics: &Metrics,
    cfg: &ServerConfig,
    deadline: Instant,
    scheduler: Option<&BatchScheduler>,
    cache: Option<&TransformCache>,
    rid: &str,
    mut capture: Option<&mut dfp_obs::tail::TailCapture>,
) -> (u16, &'static str, String) {
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("serve.predict") {
        return (
            500,
            "Internal Server Error",
            "fault injected at failpoint 'serve.predict'\n".to_string(),
        );
    }
    let Some(schema) = model.schema() else {
        return (
            500,
            "Internal Server Error",
            "model artifact carries no schema; refit from a raw dataset\n".to_string(),
        );
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (400, "Bad Request", "body is not UTF-8\n".to_string());
    };
    let start = Instant::now();
    // The transform cache disables itself while any failpoint is armed so
    // chaos runs always exercise the uncached path.
    let cache = cache.filter(|_| !dfp_fault::any_armed());

    // Parse, answering cached rows from the transform cache. `rows[i]` is
    // `Some` for hits; misses are collected (in line order, so the first
    // malformed row still wins) for one fused transform below.
    let mut rows: Vec<Option<Vec<u32>>> = Vec::new();
    let mut miss_values: Vec<Vec<Value>> = Vec::new();
    let mut miss_slots: Vec<(usize, &str)> = Vec::new();
    {
        let mut sp = dfp_obs::span("serve.parse");
        sp.attr("bytes", text.len());
        for (lineno, line) in data_lines(text) {
            if rows.len() >= cfg.max_rows {
                let e = RowsError::TooManyRows {
                    limit: cfg.max_rows,
                };
                return (413, "Payload Too Large", format!("{e}\n"));
            }
            if let Some(cached) = cache.and_then(|c| c.get(line)) {
                metrics.transform_cache_hits_total.inc();
                rows.push(Some(cached));
                continue;
            }
            if cache.is_some() {
                metrics.transform_cache_misses_total.inc();
            }
            match parse_row_line(schema, lineno, line) {
                Ok(values) => {
                    miss_slots.push((rows.len(), line));
                    miss_values.push(values);
                    rows.push(None);
                }
                Err(why) => return (400, "Bad Request", format!("{why}\n")),
            }
        }
        if rows.is_empty() {
            // Same constructor the batch CSV parser uses, so the two
            // client-facing messages can never drift apart.
            return (400, "Bad Request", format!("{}\n", RowsError::empty_body()));
        }
    }
    if let Some(cap) = capture.as_deref_mut() {
        cap.mark_since("parse", start);
    }
    if Instant::now() > deadline {
        return (
            503,
            "Service Unavailable",
            DEADLINE_EXCEEDED_BODY.to_string(),
        );
    }
    // Transform the misses in one pass and scatter them back into place.
    if !miss_values.is_empty() {
        let labels = vec![ClassId(0); miss_values.len()];
        let dataset = Dataset::new(schema.clone(), miss_values, labels);
        let matrix = match model.transform(&dataset) {
            Ok(m) => m,
            Err(e) => return (400, "Bad Request", format!("{e}\n")),
        };
        for ((idx, line), feature_row) in miss_slots.into_iter().zip(matrix.rows) {
            if let Some(c) = cache {
                c.insert(line, feature_row.clone());
            }
            rows[idx] = Some(feature_row);
        }
    }
    let rows: Vec<Vec<u32>> = rows
        .into_iter()
        .map(|r| r.expect("every row cached or transformed"))
        .collect();

    let predict_started = Instant::now();
    let labels = {
        let _sp = dfp_obs::span("serve.predict");
        // Requests already at the batch cap gain nothing from coalescing;
        // they predict inline and leave the scheduler to small requests.
        match scheduler.filter(|_| rows.len() < cfg.batch_max) {
            Some(s) => match s.submit(rows, deadline) {
                Ok(reply) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    match reply.recv_timeout(budget) {
                        Ok(labels) => labels,
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            return (
                                503,
                                "Service Unavailable",
                                DEADLINE_EXCEEDED_BODY.to_string(),
                            )
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            return (
                                500,
                                "Internal Server Error",
                                "batch scheduler dropped the request\n".to_string(),
                            )
                        }
                    }
                }
                // The scheduler is shutting down (server drop raced this
                // request): predict inline, the answer is identical.
                Err(rows) => model.predict_rows(&rows),
            },
            None => model.predict_rows(&rows),
        }
    };
    if let Some(cap) = capture.as_deref_mut() {
        cap.mark_since("predict", predict_started);
    }
    let elapsed = start.elapsed();
    metrics.observe_latency(elapsed);
    metrics.predictions_total.add(labels.len() as u64);
    // The latest request id rides the latency histogram as an OpenMetrics
    // exemplar, so a scrape links a slow bucket straight to /debug/traces.
    metrics.predict_latency.set_exemplar(
        "request_id",
        rid,
        elapsed.as_secs_f64(),
        dfp_obs::tsdb::now_unix_ms(),
    );
    let _sp = dfp_obs::span("serve.render");
    let render_started = Instant::now();
    let body = render_labels(schema, &labels);
    if let Some(cap) = capture {
        cap.mark_since("render", render_started);
    }
    (200, "OK", body)
}
