//! The serving loop: a `TcpListener` accept thread feeding a fixed worker
//! pool, three routes, and graceful shutdown.
//!
//! Routes:
//!
//! * `POST /predict` — body is CSV attribute rows (no class column), answer
//!   is one predicted class name per line;
//! * `GET /healthz` — liveness probe, always `ok`;
//! * `GET /metrics` — Prometheus text exposition of the serving counters.
//!
//! Shutdown: [`ServerHandle::shutdown`] raises a flag and pokes the listener
//! with a loopback connection so the blocking `accept` observes it; the
//! accept thread then drops the pool, which joins every worker.

use crate::http::{read_request, write_response, HttpError, Request};
use crate::metrics::Metrics;
use crate::pool::ThreadPool;
use crate::rows::{parse_rows, render_labels};
use dfp_core::PatternClassifier;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection I/O timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A running server; dropping it without calling [`Self::shutdown`] detaches
/// the accept thread (the process exit reaps it).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Stops accepting, drains in-flight work and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `model` on a pool of
/// `threads` workers. Returns once the listener is bound — serving continues
/// on background threads until [`ServerHandle::shutdown`].
pub fn serve(model: PatternClassifier, addr: &str, threads: usize) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let model = Arc::new(model);
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("dfp-serve-accept".into())
            .spawn(move || {
                let pool = ThreadPool::new(threads);
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let model = Arc::clone(&model);
                    let metrics = Arc::clone(&metrics);
                    pool.execute(move || handle_connection(stream, &model, &metrics));
                }
                // pool drops here: channel closes, workers drain and join
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        metrics,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(mut stream: TcpStream, model: &PatternClassifier, metrics: &Metrics) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Io) => return, // peer went away (includes shutdown wake)
        Err(HttpError::TooLarge) => {
            metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            metrics.errors_total.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                413,
                "Payload Too Large",
                "text/plain",
                b"request too large\n",
            );
            return;
        }
        Err(HttpError::BadRequest(why)) => {
            metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            metrics.errors_total.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                "text/plain",
                format!("{why}\n").as_bytes(),
            );
            return;
        }
    };
    metrics.requests_total.fetch_add(1, Ordering::Relaxed);

    let (status, reason, body): (u16, &str, String) = route(&request, model, metrics);
    if status >= 400 {
        metrics.errors_total.fetch_add(1, Ordering::Relaxed);
    }
    let _ = write_response(&mut stream, status, reason, "text/plain", body.as_bytes());
}

fn route(
    request: &Request,
    model: &PatternClassifier,
    metrics: &Metrics,
) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", "ok\n".to_string()),
        ("GET", "/metrics") => (200, "OK", metrics.render()),
        ("POST", "/predict") => predict(request, model, metrics),
        ("GET", "/predict") => (
            405,
            "Method Not Allowed",
            "POST CSV rows to /predict\n".to_string(),
        ),
        _ => (404, "Not Found", "not found\n".to_string()),
    }
}

fn predict(
    request: &Request,
    model: &PatternClassifier,
    metrics: &Metrics,
) -> (u16, &'static str, String) {
    let Some(schema) = model.schema() else {
        return (
            500,
            "Internal Server Error",
            "model artifact carries no schema; refit from a raw dataset\n".to_string(),
        );
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return (400, "Bad Request", "body is not UTF-8\n".to_string());
    };
    let start = Instant::now();
    let dataset = match parse_rows(schema, text) {
        Ok(d) => d,
        Err(why) => return (400, "Bad Request", format!("{why}\n")),
    };
    match model.predict(&dataset) {
        Ok(labels) => {
            metrics.observe_latency(start.elapsed());
            metrics
                .predictions_total
                .fetch_add(labels.len() as u64, Ordering::Relaxed);
            (200, "OK", render_labels(schema, &labels))
        }
        Err(e) => (400, "Bad Request", format!("{e}\n")),
    }
}
