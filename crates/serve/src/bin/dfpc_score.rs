//! `dfpc-score` — batch scoring of a CSV file, either offline against a
//! `.dfpm` artifact or remotely against a running `dfp-serve` instance.
//! Prints one predicted class name per row to stdout and a rows/sec
//! throughput summary to stderr.
//!
//! ```text
//! dfpc-score --model model.dfpm --input rows.csv [--trace spans.jsonl]
//! dfpc-score --url 127.0.0.1:8080 --input rows.csv [--retries 3]
//! ```
//!
//! `--trace <path>` (or `DFP_TRACE=<path>`) writes the run's span tree as
//! JSONL — one object per span — for `dfp-trace-check` or chrome://tracing.
//!
//! `--miner <closed|fpgrowth|eclat|apriori|nodeset>` validates the name and
//! exports it as `DFP_MINER` for the process, the same selector the training
//! tools honor. Scoring a fitted artifact never re-mines, so for this binary
//! the flag is a guard: an invalid name fails fast here instead of silently
//! falling back somewhere downstream.
//!
//! The input contains attribute columns only (no class column), in the
//! model schema's order; `?` or an empty field marks a missing value.
//! Remote scoring retries transient failures (connect errors, `5xx` load
//! shedding) with exponential backoff and jitter before giving up.

use dfp_classify::Classifier;
use dfp_serve::rows::{parse_rows, render_labels};
use dfp_serve::{Client, ClientError, RetryPolicy};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut model_path = None;
    let mut input_path = None;
    let mut url = None;
    let mut trace_path = None;
    let mut retries = RetryPolicy::default().retries;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_path = args.next(),
            "--input" => input_path = args.next(),
            "--url" => url = args.next(),
            "--trace" => trace_path = args.next(),
            "--retries" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => retries = n,
                _ => return usage("--retries expects a non-negative integer"),
            },
            "--miner" => {
                let name = args.next().unwrap_or_default();
                match name.parse::<dfp_core::MinerKind>() {
                    Ok(kind) => std::env::set_var("DFP_MINER", kind.name()),
                    Err(err) => return usage(&format!("--miner: {err}")),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(input_path) = input_path else {
        return usage("--input is required");
    };
    let text = match std::fs::read_to_string(&input_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{input_path}': {e}");
            return ExitCode::FAILURE;
        }
    };

    // --trace wins over the ambient DFP_TRACE variable; either exports the
    // run's spans as JSONL. The session flushes on drop at process exit.
    let _trace = match trace_path {
        Some(path) => match dfp_obs::TraceSession::begin(&path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: cannot open trace file '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match dfp_obs::TraceSession::from_env() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot open DFP_TRACE file: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let code = match (model_path, url) {
        (Some(model_path), None) => score_offline(&model_path, &text),
        (None, Some(url)) => score_remote(&url, &text, retries),
        _ => usage("exactly one of --model (offline) or --url (remote) is required"),
    };
    if let Some(session) = &_trace {
        if let Err(e) = session.flush() {
            eprintln!("warning: trace flush failed: {e}");
        }
    }
    code
}

fn score_offline(model_path: &str, text: &str) -> ExitCode {
    let mut sp = dfp_obs::span("score.offline");
    let model = match dfp_model::load(model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot load '{model_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(schema) = model.schema().cloned() else {
        eprintln!("error: artifact carries no schema; refit the model from a raw dataset");
        return ExitCode::FAILURE;
    };

    let dataset = {
        let _sp = dfp_obs::span("score.parse");
        match parse_rows(&schema, text) {
            Ok(d) => d,
            Err(why) => {
                eprintln!("error: {why}");
                return ExitCode::FAILURE;
            }
        }
    };
    let matrix = {
        let _sp = dfp_obs::span("score.transform");
        match model.transform(&dataset) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let start = Instant::now();
    let labels = {
        let _sp = dfp_obs::span("score.predict");
        model.model().predict_batch(&matrix.rows)
    };
    let elapsed = start.elapsed();
    sp.attr("rows", labels.len());

    print!("{}", render_labels(&schema, &labels));
    report_throughput(labels.len(), elapsed.as_secs_f64());
    ExitCode::SUCCESS
}

fn score_remote(url: &str, text: &str, retries: u32) -> ExitCode {
    let mut client = Client::with_policy(
        url,
        RetryPolicy {
            retries,
            ..RetryPolicy::default()
        },
    );
    let start = Instant::now();
    let response = match client.post("/predict", "text/csv", text.as_bytes()) {
        Ok(r) => r,
        Err(e @ ClientError::ServerError(_)) => {
            eprintln!("error: {e} (server overloaded or failing; try again later)");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();
    if response.status != 200 {
        eprintln!(
            "error: server answered {}: {}",
            response.status,
            response.text().trim()
        );
        return ExitCode::FAILURE;
    }
    let body = response.text();
    print!("{body}");
    report_throughput(body.lines().count(), elapsed.as_secs_f64());
    ExitCode::SUCCESS
}

fn report_throughput(rows: usize, secs: f64) {
    eprintln!(
        "scored {rows} rows in {:.3} ms ({:.0} rows/sec)",
        secs * 1e3,
        if secs > 0.0 {
            rows as f64 / secs
        } else {
            f64::INFINITY
        }
    );
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: dfpc-score --model <model.dfpm> --input <rows.csv> [--trace <spans.jsonl>] [--miner <name>]\n       dfpc-score --url <host:port> --input <rows.csv> [--retries <n>]"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
