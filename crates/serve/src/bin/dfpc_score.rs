//! `dfpc-score` — offline batch scoring of a CSV file against a `.dfpm`
//! artifact. Prints one predicted class name per row to stdout and a
//! rows/sec throughput summary to stderr.
//!
//! ```text
//! dfpc-score --model model.dfpm --input rows.csv
//! ```
//!
//! The input contains attribute columns only (no class column), in the
//! model schema's order; `?` or an empty field marks a missing value.

use dfp_classify::Classifier;
use dfp_serve::rows::{parse_rows, render_labels};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut model_path = None;
    let mut input_path = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_path = args.next(),
            "--input" => input_path = args.next(),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(model_path), Some(input_path)) = (model_path, input_path) else {
        return usage("--model and --input are required");
    };

    let model = match dfp_model::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot load '{model_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(schema) = model.schema().cloned() else {
        eprintln!("error: artifact carries no schema; refit the model from a raw dataset");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&input_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read '{input_path}': {e}");
            return ExitCode::FAILURE;
        }
    };

    let dataset = match parse_rows(&schema, &text) {
        Ok(d) => d,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::FAILURE;
        }
    };
    let matrix = match model.transform(&dataset) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let start = Instant::now();
    let labels = model.model().predict_batch(&matrix.rows);
    let elapsed = start.elapsed();

    print!("{}", render_labels(&schema, &labels));
    let rows = labels.len();
    let secs = elapsed.as_secs_f64();
    eprintln!(
        "scored {rows} rows in {:.3} ms ({:.0} rows/sec)",
        secs * 1e3,
        if secs > 0.0 {
            rows as f64 / secs
        } else {
            f64::INFINITY
        }
    );
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: dfpc-score --model <model.dfpm> --input <rows.csv>");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
