//! `dfp-serve` — serve a `.dfpm` model artifact over HTTP.
//!
//! ```text
//! dfp-serve --model model.dfpm [--addr 127.0.0.1:8080] [--threads 4]
//! ```
//!
//! Limits (queue depth, body/row caps, request deadline, I/O timeouts) come
//! from the `DFP_SERVE_*` environment variables; see
//! [`dfp_serve::ServerConfig::from_env`].

use dfp_serve::ServerConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut model_path = None;
    let mut addr = "127.0.0.1:8080".to_string();
    // One source of truth for worker counts: DFP_THREADS, else the machine.
    let mut cfg = ServerConfig::from_env();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_path = args.next(),
            "--addr" => {
                if let Some(a) = args.next() {
                    addr = a;
                }
            }
            "--threads" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => cfg = cfg.with_threads(n),
                _ => return usage("--threads expects a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(model_path) = model_path else {
        return usage("--model is required");
    };

    let model = match dfp_model::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: cannot load '{model_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    if model.schema().is_none() {
        eprintln!("error: artifact carries no schema; refit the model from a raw dataset");
        return ExitCode::FAILURE;
    }

    let threads = cfg.resolved_threads();
    let handle = match dfp_serve::serve_with_config(model, &addr, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "dfp-serve listening on {} with {threads} workers (endpoints: POST /predict, GET /healthz, GET /readyz, GET /metrics)",
        handle.addr()
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: dfp-serve --model <model.dfpm> [--addr <host:port>] [--threads <n>]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
