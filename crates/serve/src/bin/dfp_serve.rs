//! `dfp-serve` — serve `.dfpm` model artifacts over HTTP.
//!
//! ```text
//! dfp-serve --model model.dfpm [--addr 127.0.0.1:8080] [--threads 4]
//! dfp-serve --registry models/ [--model model.dfpm] [--addr …]
//! ```
//!
//! With `--registry <dir>` (or `DFP_REGISTRY_ROOT`) the server opens a
//! crash-safe multi-model registry there: boot runs a recovery scan
//! (quarantining corrupt artifacts, resolving a torn `CURRENT` pointer),
//! models serve under `POST /m/{name}/predict` with per-model
//! `GET /m/{name}/readyz`, and `PUT /m/{name}` hot-swaps a new artifact
//! atomically with health-gated promotion. `--model` is optional in this
//! mode and serves behind the classic root routes.
//!
//! Limits (queue depth, body/row caps, request deadline, I/O timeouts) come
//! from the `DFP_SERVE_*` environment variables; see
//! [`dfp_serve::ServerConfig::from_env`]. Registry knobs are the
//! `DFP_REGISTRY_*` variables (see `dfp_registry::RegistryConfig`).
//!
//! Observability: `DFP_LOG=<level>` turns on JSONL logs (access logs at
//! `info`), and `DFP_TRACE=<path>` exports every request's span tree as
//! JSONL (flushed to disk twice a second by a background thread). The
//! in-process TSDB stack is on by default (`DFP_TSDB=0` disables): a
//! background collector samples every metrics family each
//! `DFP_TSDB_INTERVAL_MS` into `DFP_TSDB_RETAIN` of ring-buffered history,
//! `DFP_SLO_FILE=<json>` arms multi-window burn-rate alerting surfaced on
//! `GET /alerts`, slow/5xx requests are tail-sampled into
//! `GET /debug/traces` (`DFP_TAIL_CAP`, `DFP_TAIL=0` off), and
//! `GET /dashboard` renders the whole picture as one HTML page — watch it
//! from a terminal with `dfp-top --addr <host:port>`.

use dfp_serve::ServerConfig;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut model_path = None;
    let mut addr = "127.0.0.1:8080".to_string();
    // One source of truth for worker counts: DFP_THREADS, else the machine.
    let mut cfg = ServerConfig::from_env();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_path = args.next(),
            "--registry" => {
                if let Some(root) = args.next() {
                    cfg = cfg.with_registry_root(root);
                }
            }
            "--addr" => {
                if let Some(a) = args.next() {
                    addr = a;
                }
            }
            "--threads" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) if n > 0 => cfg = cfg.with_threads(n),
                _ => return usage("--threads expects a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    if model_path.is_none() && cfg.registry_root.is_none() {
        return usage("--model or --registry is required");
    }

    let model = match &model_path {
        Some(path) => match dfp_model::load(path) {
            Ok(m) => {
                if m.schema().is_none() {
                    eprintln!(
                        "error: artifact carries no schema; refit the model from a raw dataset"
                    );
                    return ExitCode::FAILURE;
                }
                Some(m)
            }
            Err(e) => {
                eprintln!("error: cannot load '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // DFP_TRACE=<path> exports spans for the life of the process. The
    // session handle lives until exit; a background flusher drains the span
    // sink so long-running servers don't buffer spans unboundedly.
    match dfp_obs::TraceSession::from_env() {
        Ok(Some(session)) => {
            eprintln!("dfp-serve tracing to {}", session.path().display());
            let flusher = session.clone();
            let spawned = std::thread::Builder::new()
                .name("dfp-serve-trace-flush".into())
                .spawn(move || loop {
                    std::thread::sleep(Duration::from_millis(500));
                    let _ = flusher.flush();
                });
            if spawned.is_err() {
                eprintln!("warning: could not start trace flusher; spans flush on exit only");
            }
            // Leak the session: the server runs until the process dies, and
            // the flusher thread keeps the trace file current.
            std::mem::forget(session);
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: cannot open DFP_TRACE file: {e}");
            return ExitCode::FAILURE;
        }
    }

    let threads = cfg.resolved_threads();
    let registry = match &cfg.registry_root {
        Some(root) => {
            let rcfg = dfp_registry::RegistryConfig::from_env(root);
            match dfp_registry::ModelRegistry::open_with_validator(
                rcfg,
                Some(dfp_serve::registry_validator()),
            ) {
                Ok(reg) => {
                    for (name, outcome) in &reg.recovery().models {
                        match outcome.chosen {
                            Some(v) => eprintln!(
                                "dfp-serve registry: model '{name}' at version {v}{}{}",
                                if outcome.pointer_rewritten {
                                    " (pointer recovered)"
                                } else {
                                    ""
                                },
                                if outcome.quarantined.is_empty() {
                                    String::new()
                                } else {
                                    format!(", {} file(s) quarantined", outcome.quarantined.len())
                                },
                            ),
                            None => {
                                eprintln!("dfp-serve registry: model '{name}' has no valid version")
                            }
                        }
                    }
                    Some(std::sync::Arc::new(reg))
                }
                Err(e) => {
                    eprintln!("error: cannot open registry '{root}': {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let handle = match (model, registry) {
        (Some(m), None) => dfp_serve::serve_with_config(m, &addr, cfg),
        (m, Some(reg)) => dfp_serve::serve_registry_with_config(m, reg, &addr, cfg),
        (None, None) => unreachable!("checked above"),
    };
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "dfp-serve listening on {} with {threads} workers (endpoints: POST /predict, GET /healthz, GET /readyz, GET /metrics{}, /m/{{name}}/…)",
        handle.addr(),
        if handle.obs().is_some() {
            ", GET /alerts, GET /metrics/history, GET /debug/traces, GET /dashboard"
        } else {
            ""
        },
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!(
        "usage: dfp-serve --model <model.dfpm> | --registry <dir> [--addr <host:port>] [--threads <n>]"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
