//! Server tuning knobs, with environment overrides.
//!
//! Every limit that used to be a hard-coded constant lives here: per-stream
//! I/O timeouts, the pending-work queue depth (load shedding), the maximum
//! request body, the maximum rows per prediction batch, and the per-request
//! deadline. [`ServerConfig::from_env`] reads the `DFP_SERVE_*` variables so
//! deployments can retune without a rebuild; defaults preserve the
//! historical behavior.

use dfp_obs::SloSpec;
use std::time::Duration;

/// Tuning knobs for [`crate::serve_with_config`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Per-connection read/write timeout (`DFP_SERVE_IO_TIMEOUT_MS`).
    pub io_timeout: Duration,
    /// Pending connections allowed in the worker queue before new ones are
    /// shed with `503` (`DFP_SERVE_QUEUE_DEPTH`).
    pub queue_depth: usize,
    /// Largest accepted request body in bytes (`DFP_SERVE_MAX_BODY_BYTES`);
    /// bigger bodies get `413`.
    pub max_body_bytes: usize,
    /// Most CSV rows accepted per `/predict` batch (`DFP_SERVE_MAX_ROWS`);
    /// bigger batches get `413`.
    pub max_rows: usize,
    /// Wall-clock budget per request, measured from accept
    /// (`DFP_SERVE_DEADLINE_MS`); requests still unanswered at the deadline
    /// get `503` instead of holding a worker.
    pub request_deadline: Duration,
    /// Worker threads; `0` resolves like the parallel runtime
    /// (`DFP_THREADS`, else the machine).
    pub threads: usize,
    /// Most queued `/predict` requests coalesced into one batched predict
    /// call (`DFP_SERVE_BATCH_MAX`); `1` disables the batch scheduler and
    /// every worker predicts inline, the historical behavior.
    pub batch_max: usize,
    /// Longest the batch scheduler lingers for more requests after the
    /// first arrives (`DFP_SERVE_BATCH_WAIT_US`, microseconds). The linger
    /// is always clamped so no queued request waits past its deadline.
    pub batch_wait: Duration,
    /// Whether the in-memory transform cache for repeated feature rows is
    /// on (`DFP_CACHE`; `0`/`off`/`false` disables, anything else enables).
    pub cache: bool,
    /// Managed model-registry root directory (`DFP_REGISTRY_ROOT`). When
    /// set, `dfp-serve` opens a multi-model registry there and exposes the
    /// `/m/{name}/…` routes; `None` (the default) keeps the classic
    /// single-model server.
    pub registry_root: Option<String>,
    /// Shared-secret admin token (`DFP_ADMIN_TOKEN`). When set, the
    /// `PUT /m/{name}` hot-swap endpoint requires a matching
    /// `X-Admin-Token` header and answers `401` otherwise. When unset the
    /// admin route is open to anything that can reach the listener — the
    /// data plane and the admin plane share one bind address, so set the
    /// token (or keep the listener on loopback) in production.
    pub admin_token: Option<String>,
    /// Whether the in-process TSDB stack (background collector, windowed
    /// percentiles, SLO engine, tail sampler, `/dashboard`,
    /// `/metrics/history`, `/alerts`, `/debug/traces`) runs (`DFP_TSDB`;
    /// `0`/`off`/`false` disables, default on).
    pub tsdb: bool,
    /// Collector sampling cadence (`DFP_TSDB_INTERVAL_MS`, min 10 ms).
    pub tsdb_interval: Duration,
    /// History retention horizon (`DFP_TSDB_RETAIN`; plain seconds or a
    /// `250ms`/`90s`/`15m`/`2h` suffix).
    pub tsdb_retain: Duration,
    /// Path to a JSON SLO spec file (`DFP_SLO_FILE`); parsed at server
    /// start and merged with [`Self::slos`]. A missing or malformed file is
    /// logged and skipped — serving must come up regardless.
    pub slo_file: Option<String>,
    /// Programmatic SLO specs, evaluated alongside any from
    /// [`Self::slo_file`].
    pub slos: Vec<SloSpec>,
    /// Tail-sampled trace reservoir capacity (`DFP_TAIL_CAP`, default 64);
    /// `DFP_TAIL=0/off/false` forces it to `0`, which disables capture.
    pub tail_capacity: usize,
    /// Whether the nonblocking readiness loop replaces the thread-per-
    /// connection accept path (`DFP_SERVE_EVENT_LOOP`; `1`/`on`/`true`
    /// enables). The env variable is read by `Default` too, so one export
    /// flips every server a test suite builds. Falls back to the threaded
    /// core when the reactor cannot start (non-Linux, epoll failure).
    pub event_loop: bool,
    /// Most concurrent connections the readiness loop holds open
    /// (`DFP_SERVE_MAX_CONNS`); further accepts are answered `503` and
    /// closed. Idle keep-alive connections count against this, not against
    /// worker threads. Ignored by the threaded core.
    pub max_conns: usize,
    /// Longest a connection may dawdle between its first byte and a
    /// complete request head+body before the readiness loop answers `408`
    /// and closes it (`DFP_SERVE_HEAD_TIMEOUT_MS`). This is the slowloris
    /// guard; idle keep-alive connections between requests are untimed.
    pub head_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            io_timeout: Duration::from_secs(10),
            queue_depth: 1024,
            max_body_bytes: 16 * 1024 * 1024,
            max_rows: 1_000_000,
            request_deadline: Duration::from_secs(30),
            threads: 0,
            batch_max: 8,
            batch_wait: Duration::from_micros(200),
            cache: true,
            registry_root: None,
            admin_token: None,
            tsdb: true,
            tsdb_interval: Duration::from_millis(1000),
            tsdb_retain: Duration::from_secs(3600),
            slo_file: None,
            slos: Vec::new(),
            tail_capacity: 64,
            event_loop: env_flag("DFP_SERVE_EVENT_LOOP"),
            max_conns: 10_240,
            head_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by any `DFP_SERVE_*` variables that are set.
    /// Unparseable values fall back to the default (serving must come up
    /// even with a typo in the environment).
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Some(ms) = env_u64("DFP_SERVE_IO_TIMEOUT_MS") {
            cfg.io_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = env_u64("DFP_SERVE_QUEUE_DEPTH") {
            cfg.queue_depth = (n as usize).max(1);
        }
        if let Some(n) = env_u64("DFP_SERVE_MAX_BODY_BYTES") {
            cfg.max_body_bytes = n as usize;
        }
        if let Some(n) = env_u64("DFP_SERVE_MAX_ROWS") {
            cfg.max_rows = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("DFP_SERVE_DEADLINE_MS") {
            cfg.request_deadline = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = env_u64("DFP_SERVE_BATCH_MAX") {
            cfg.batch_max = (n as usize).max(1);
        }
        if let Some(us) = env_u64("DFP_SERVE_BATCH_WAIT_US") {
            cfg.batch_wait = Duration::from_micros(us);
        }
        if let Ok(v) = std::env::var("DFP_CACHE") {
            let v = v.trim().to_ascii_lowercase();
            cfg.cache = !(v == "0" || v == "off" || v == "false");
        }
        if let Ok(root) = std::env::var("DFP_REGISTRY_ROOT") {
            let root = root.trim().to_string();
            if !root.is_empty() {
                cfg.registry_root = Some(root);
            }
        }
        if let Ok(token) = std::env::var("DFP_ADMIN_TOKEN") {
            let token = token.trim().to_string();
            if !token.is_empty() {
                cfg.admin_token = Some(token);
            }
        }
        if let Ok(v) = std::env::var("DFP_TSDB") {
            let v = v.trim().to_ascii_lowercase();
            cfg.tsdb = !(v == "0" || v == "off" || v == "false");
        }
        if let Some(ms) = env_u64("DFP_TSDB_INTERVAL_MS") {
            cfg.tsdb_interval = Duration::from_millis(ms.max(10));
        }
        if let Some(d) = std::env::var("DFP_TSDB_RETAIN")
            .ok()
            .and_then(|v| dfp_obs::tsdb::parse_duration(v.trim()))
        {
            cfg.tsdb_retain = d;
        }
        if let Ok(path) = std::env::var("DFP_SLO_FILE") {
            let path = path.trim().to_string();
            if !path.is_empty() {
                cfg.slo_file = Some(path);
            }
        }
        if let Some(n) = env_u64("DFP_TAIL_CAP") {
            cfg.tail_capacity = n as usize;
        }
        if let Some(n) = env_u64("DFP_SERVE_MAX_CONNS") {
            cfg.max_conns = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("DFP_SERVE_HEAD_TIMEOUT_MS") {
            cfg.head_timeout = Duration::from_millis(ms.max(1));
        }
        if let Ok(v) = std::env::var("DFP_TAIL") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                cfg.tail_capacity = 0;
            }
        }
        cfg
    }

    /// Replaces the per-connection I/O timeout.
    pub fn with_io_timeout(mut self, t: Duration) -> Self {
        self.io_timeout = t;
        self
    }

    /// Replaces the pending-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Replaces the maximum request body size.
    pub fn with_max_body_bytes(mut self, bytes: usize) -> Self {
        self.max_body_bytes = bytes;
        self
    }

    /// Replaces the per-batch row cap.
    pub fn with_max_rows(mut self, rows: usize) -> Self {
        self.max_rows = rows.max(1);
        self
    }

    /// Replaces the per-request deadline.
    pub fn with_request_deadline(mut self, d: Duration) -> Self {
        self.request_deadline = d;
        self
    }

    /// Replaces the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the batch coalescing cap (`1` disables batching).
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Replaces the batch linger budget.
    pub fn with_batch_wait(mut self, d: Duration) -> Self {
        self.batch_wait = d;
        self
    }

    /// Enables or disables the serving transform cache.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Points the server at a managed model-registry root (enables the
    /// `/m/{name}/…` routes in `dfp-serve`).
    pub fn with_registry_root(mut self, root: impl Into<String>) -> Self {
        self.registry_root = Some(root.into());
        self
    }

    /// Requires `X-Admin-Token: <token>` on the `PUT /m/{name}` admin
    /// hot-swap endpoint (`401` otherwise).
    pub fn with_admin_token(mut self, token: impl Into<String>) -> Self {
        self.admin_token = Some(token.into());
        self
    }

    /// Enables or disables the in-process TSDB/SLO/tail stack.
    pub fn with_tsdb(mut self, on: bool) -> Self {
        self.tsdb = on;
        self
    }

    /// Replaces the collector sampling cadence (clamped to ≥ 10 ms).
    pub fn with_tsdb_interval(mut self, d: Duration) -> Self {
        self.tsdb_interval = d.max(Duration::from_millis(10));
        self
    }

    /// Replaces the history retention horizon.
    pub fn with_tsdb_retain(mut self, d: Duration) -> Self {
        self.tsdb_retain = d;
        self
    }

    /// Points the SLO engine at a JSON spec file.
    pub fn with_slo_file(mut self, path: impl Into<String>) -> Self {
        self.slo_file = Some(path.into());
        self
    }

    /// Replaces the programmatic SLO specs.
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// Replaces the tail-sampled trace reservoir capacity (`0` disables).
    pub fn with_tail_capacity(mut self, cap: usize) -> Self {
        self.tail_capacity = cap;
        self
    }

    /// Selects the nonblocking readiness loop (`true`) or the threaded
    /// accept path (`false`) regardless of `DFP_SERVE_EVENT_LOOP`.
    pub fn with_event_loop(mut self, on: bool) -> Self {
        self.event_loop = on;
        self
    }

    /// Replaces the readiness loop's concurrent-connection cap.
    pub fn with_max_conns(mut self, n: usize) -> Self {
        self.max_conns = n.max(1);
        self
    }

    /// Replaces the slowloris guard: the budget from a connection's first
    /// byte to a complete request.
    pub fn with_head_timeout(mut self, d: Duration) -> Self {
        self.head_timeout = d.max(Duration::from_millis(1));
        self
    }

    /// The resolved worker count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            dfp_par::worker_threads()
        } else {
            dfp_par::resolve_workers(Some(self.threads))
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// `1`/`on`/`true` (case-insensitive) turn the flag on; everything else —
/// including unset — leaves it off.
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "on" || v == "true"
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_preserve_historical_limits() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.io_timeout, Duration::from_secs(10));
        assert_eq!(cfg.max_body_bytes, 16 * 1024 * 1024);
        assert!(cfg.queue_depth >= 1);
        assert!(cfg.max_rows >= 1);
    }

    #[test]
    fn builders_mutate() {
        let cfg = ServerConfig::default()
            .with_io_timeout(Duration::from_millis(250))
            .with_queue_depth(2)
            .with_max_body_bytes(1024)
            .with_max_rows(10)
            .with_request_deadline(Duration::from_secs(1))
            .with_threads(3);
        assert_eq!(cfg.io_timeout, Duration::from_millis(250));
        assert_eq!(cfg.queue_depth, 2);
        assert_eq!(cfg.max_body_bytes, 1024);
        assert_eq!(cfg.max_rows, 10);
        assert_eq!(cfg.request_deadline, Duration::from_secs(1));
        assert_eq!(cfg.threads, 3);
    }

    #[test]
    fn zeroes_clamped() {
        let cfg = ServerConfig::default()
            .with_queue_depth(0)
            .with_max_rows(0)
            .with_batch_max(0);
        assert_eq!(cfg.queue_depth, 1);
        assert_eq!(cfg.max_rows, 1);
        assert_eq!(cfg.batch_max, 1);
    }

    #[test]
    fn reactor_knobs_default_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.max_conns >= 1024);
        assert!(cfg.head_timeout >= Duration::from_millis(1));
        let on = cfg
            .with_event_loop(true)
            .with_max_conns(0)
            .with_head_timeout(Duration::ZERO);
        assert!(on.event_loop);
        assert_eq!(on.max_conns, 1);
        assert_eq!(on.head_timeout, Duration::from_millis(1));
    }

    #[test]
    fn batching_knobs_default_on() {
        let cfg = ServerConfig::default();
        assert!(cfg.batch_max > 1);
        assert!(cfg.cache);
        let off = cfg
            .with_batch_max(1)
            .with_batch_wait(Duration::from_micros(50))
            .with_cache(false);
        assert_eq!(off.batch_max, 1);
        assert_eq!(off.batch_wait, Duration::from_micros(50));
        assert!(!off.cache);
    }
}
