//! The per-connection protocol state machine behind the event-driven serve
//! core — pure by construction: bytes in, transitions plus bytes out, no
//! sockets, no clocks, no threads.
//!
//! ```text
//! Accepted → ReadingHead → ReadingBody → Queued → Writing → KeepAlive
//!      └──────────┴─────────────┴──────────┴─────────┴────→ Closed
//! ```
//!
//! The reactor feeds whatever the socket delivered into [`ConnFsm::on_bytes`]
//! and acts on the returned [`ConnEvent`]; the compute stage answers with
//! [`ConnFsm::respond`], and writes drain through [`ConnFsm::writable`] /
//! [`ConnFsm::on_wrote`]. After a keep-alive response the machine re-parses
//! any pipelined bytes it already buffered, so back-to-back requests on one
//! connection need no extra socket reads.
//!
//! **Equivalence contract:** for any delivery split of the same byte stream,
//! the machine yields exactly the [`Request`] / [`HttpError`] that the
//! blocking [`crate::http::read_request_limited`] yields when fed that
//! stream in its canonical ≤ 1024-byte read chunks. The head is parsed with
//! the same [`crate::http::parse_head`], and the oversized-head check fires
//! at the same absolute byte positions as the blocking reader's chunk loop
//! (`HEAD_REJECT_AT`), so the outcome does not depend on how the network
//! happened to fragment the bytes. `tests/conn_fsm.rs` proves the
//! equivalence under arbitrary byte-boundary splits.

use crate::http::{find_head_end, parse_head, HttpError, ParsedHead, Request, MAX_HEAD};

/// The blocking reader's read-chunk granularity (its stack buffer size).
const FEED_STEP: usize = 1024;

/// First absolute buffered-byte count at which an unterminated head is
/// rejected: the first whole read-chunk boundary past [`MAX_HEAD`], which is
/// where the blocking reader's `find → check → read` loop notices the
/// overrun. Checking at this boundary (rather than at arbitrary delivery
/// boundaries) is what makes the machine split-invariant.
const HEAD_REJECT_AT: usize = MAX_HEAD + FEED_STEP - (MAX_HEAD % FEED_STEP) % FEED_STEP;

/// Where a connection is in its request/response lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accepted, no bytes seen yet.
    Accepted,
    /// Collecting request-line + header bytes.
    ReadingHead,
    /// Head parsed; collecting `Content-Length` body bytes.
    ReadingBody,
    /// A complete request was handed to the compute stage; awaiting its
    /// response. Input keeps buffering but is not parsed.
    Queued,
    /// Draining response bytes to the peer.
    Writing,
    /// Response written, connection reusable, waiting for the next request.
    KeepAlive,
    /// Terminal: the connection is (to be) closed.
    Closed,
}

/// What the machine wants the reactor to do after a feed.
#[derive(Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// Nothing actionable yet — wait for more readiness.
    Continue,
    /// A complete request; dispatch it to the compute stage. The machine is
    /// now [`ConnState::Queued`] and expects [`ConnFsm::respond`].
    Request(Box<Request>),
    /// The bytes could not be parsed into a request. The machine is
    /// [`ConnState::Queued`]: answer via [`ConnFsm::respond`] (with
    /// `keep_alive = false`) and the connection closes after the write.
    Reject(HttpError),
    /// Close the connection without answering (peer vanished mid-request —
    /// the blocking path's `HttpError::Io`). The machine is
    /// [`ConnState::Closed`].
    Close,
}

/// What to do once a write made progress.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteProgress {
    /// Bytes remain; keep write readiness armed.
    Pending,
    /// Response fully written and the exchange said close — close the
    /// socket now.
    Done,
    /// Response fully written, connection kept alive. Carries the result of
    /// re-parsing any already-buffered pipelined bytes: `Continue` to wait
    /// for more input, or immediately the next `Request`/`Reject`.
    Next(ConnEvent),
}

/// The pure connection state machine. See the module docs for the protocol.
#[derive(Debug)]
pub struct ConnFsm {
    state: ConnState,
    /// Unconsumed inbound bytes (head + partial body of the request being
    /// parsed, plus any pipelined follow-up requests).
    buf: Vec<u8>,
    /// How many of `buf`'s bytes were already scanned for the head
    /// terminator (resume point, keeps repeated scans linear).
    scanned: usize,
    /// The parsed head once the terminator was found.
    head: Option<ParsedHead>,
    /// Offset in `buf` where the body starts (head terminator consumed).
    body_start: usize,
    /// Whether this exchange keeps the connection open afterwards; decided
    /// at head parse from the request, finalized by [`Self::respond`].
    keep_alive: bool,
    /// The response being drained.
    write_buf: Vec<u8>,
    written: usize,
    max_body: usize,
}

impl ConnFsm {
    /// A fresh machine for one accepted connection. `max_body` mirrors
    /// [`crate::ServerConfig::max_body_bytes`].
    pub fn new(max_body: usize) -> Self {
        ConnFsm {
            state: ConnState::Accepted,
            buf: Vec::new(),
            scanned: 0,
            head: None,
            body_start: 0,
            keep_alive: false,
            write_buf: Vec::new(),
            written: 0,
            max_body,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the current request said the connection may be reused.
    /// Meaningful from the moment a [`ConnEvent::Request`] is emitted.
    pub fn wants_keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// Whether unconsumed inbound bytes are buffered (pipelined data).
    pub fn has_buffered_input(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Feeds bytes the socket delivered. Valid in `Accepted`,
    /// `ReadingHead`, `ReadingBody`, `KeepAlive` (starts the next request)
    /// and `Queued`/`Writing` (bytes buffer unparsed until the exchange
    /// completes).
    pub fn on_bytes(&mut self, bytes: &[u8]) -> ConnEvent {
        if self.state == ConnState::Closed {
            return ConnEvent::Continue;
        }
        self.buf.extend_from_slice(bytes);
        if matches!(self.state, ConnState::Accepted | ConnState::KeepAlive) {
            self.state = ConnState::ReadingHead;
        }
        if matches!(self.state, ConnState::Queued | ConnState::Writing) {
            // Mid-exchange: hold the bytes, parse after the response.
            return ConnEvent::Continue;
        }
        self.advance()
    }

    /// The peer closed its half of the connection. Between requests this is
    /// a clean goodbye; mid-request it matches the blocking reader: an
    /// over-limit unterminated head is still a [`HttpError::TooLarge`]
    /// rejection (the blocking loop notices the overrun before it would hit
    /// EOF), anything else is its silent `HttpError::Io` close.
    pub fn on_eof(&mut self) -> ConnEvent {
        match self.state {
            ConnState::Queued | ConnState::Writing | ConnState::Closed => ConnEvent::Continue,
            ConnState::ReadingHead if self.buf.len() > MAX_HEAD => self.reject(HttpError::TooLarge),
            _ => {
                self.state = ConnState::Closed;
                ConnEvent::Close
            }
        }
    }

    /// Installs the rendered response for the queued exchange and starts
    /// the write phase. `keep_alive` false forces a close after the write
    /// regardless of what the request asked for (error responses close).
    pub fn respond(&mut self, bytes: Vec<u8>, keep_alive: bool) {
        debug_assert_eq!(self.state, ConnState::Queued, "respond() without a request");
        self.keep_alive = self.keep_alive && keep_alive;
        self.write_buf = bytes;
        self.written = 0;
        self.state = ConnState::Writing;
    }

    /// The bytes still to be written to the socket.
    pub fn writable(&self) -> &[u8] {
        &self.write_buf[self.written..]
    }

    /// Records that `n` bytes of [`Self::writable`] reached the socket.
    pub fn on_wrote(&mut self, n: usize) -> WriteProgress {
        debug_assert_eq!(self.state, ConnState::Writing, "on_wrote() outside Writing");
        self.written += n;
        if self.written < self.write_buf.len() {
            return WriteProgress::Pending;
        }
        self.write_buf = Vec::new();
        self.written = 0;
        if !self.keep_alive {
            self.state = ConnState::Closed;
            return WriteProgress::Done;
        }
        self.state = ConnState::KeepAlive;
        // Pipelined bytes may already hold the next request — re-enter the
        // parser immediately instead of waiting for more readiness.
        if self.buf.is_empty() {
            WriteProgress::Next(ConnEvent::Continue)
        } else {
            self.state = ConnState::ReadingHead;
            WriteProgress::Next(self.advance())
        }
    }

    /// Runs the parser over the buffered bytes until it needs more input,
    /// completes a request, or rejects the stream.
    fn advance(&mut self) -> ConnEvent {
        if self.state == ConnState::ReadingHead {
            let Some(pos) = find_head_end_from(&self.buf, &mut self.scanned) else {
                // No terminator yet. Reject at the same absolute position
                // the blocking chunk loop would; arbitrary delivery splits
                // below that boundary stay pending.
                if self.buf.len() >= HEAD_REJECT_AT {
                    return self.reject(HttpError::TooLarge);
                }
                return ConnEvent::Continue;
            };
            if pos + 4 > HEAD_REJECT_AT {
                // The terminator exists but completes past the boundary.
                // The blocking loop rejects at its `HEAD_REJECT_AT`
                // checkpoint without ever seeing such a terminator; one
                // large delivery must not let the FSM accept what chunked
                // delivery would refuse.
                return self.reject(HttpError::TooLarge);
            }
            match parse_head(&self.buf[..pos]) {
                Ok(head) => {
                    if head.content_length > self.max_body {
                        return self.reject(HttpError::TooLarge);
                    }
                    self.keep_alive = head.keep_alive();
                    self.body_start = pos + 4;
                    self.head = Some(head);
                    self.state = ConnState::ReadingBody;
                }
                Err(e) => return self.reject(e),
            }
        }
        if self.state == ConnState::ReadingBody {
            let head = self.head.as_ref().expect("head parsed in ReadingBody");
            let body_end = self.body_start + head.content_length;
            if self.buf.len() < body_end {
                return ConnEvent::Continue;
            }
            let head = self.head.take().expect("head parsed in ReadingBody");
            let body = self.buf[self.body_start..body_end].to_vec();
            // Consume the request's bytes; anything beyond is pipelined
            // input for the next exchange (the blocking path would have
            // discarded it — but it also never kept connections alive).
            self.buf.drain(..body_end);
            self.scanned = 0;
            self.body_start = 0;
            self.state = ConnState::Queued;
            return ConnEvent::Request(Box::new(head.into_request(body)));
        }
        ConnEvent::Continue
    }

    /// Parse failure: the stream is unframed from here on, so the exchange
    /// must close. The machine still goes through `Queued` so the reactor
    /// answers with a rendered error response before closing.
    fn reject(&mut self, e: HttpError) -> ConnEvent {
        self.state = ConnState::Queued;
        self.keep_alive = false;
        ConnEvent::Reject(e)
    }
}

/// Incremental [`find_head_end`]: scans only bytes not yet scanned,
/// keeping up to 3 bytes of terminator overlap across calls.
fn find_head_end_from(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let from = scanned.saturating_sub(3);
    let pos = find_head_end(&buf[from..]).map(|p| p + from);
    if pos.is_none() {
        *scanned = buf.len();
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::DEFAULT_MAX_BODY;

    #[test]
    fn whole_buffer_request_parses_in_one_feed() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        assert_eq!(fsm.state(), ConnState::Accepted);
        let event = fsm.on_bytes(b"POST /predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        let ConnEvent::Request(req) = event else {
            panic!("expected request, got {event:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"hello");
        assert_eq!(fsm.state(), ConnState::Queued);
        assert!(fsm.wants_keep_alive());
    }

    #[test]
    fn one_byte_drip_walks_every_state() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        for (i, b) in raw.iter().enumerate() {
            let event = fsm.on_bytes(std::slice::from_ref(b));
            if i + 1 < raw.len() {
                assert_eq!(event, ConnEvent::Continue, "byte {i}");
                assert_eq!(fsm.state(), ConnState::ReadingHead);
            } else {
                let ConnEvent::Request(req) = event else {
                    panic!("expected request at final byte");
                };
                assert_eq!(req.path, "/healthz");
            }
        }
    }

    #[test]
    fn respond_write_close_cycle() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        fsm.on_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!fsm.wants_keep_alive());
        fsm.respond(b"HTTP/1.1 200 OK\r\n\r\n".to_vec(), true);
        assert_eq!(fsm.state(), ConnState::Writing);
        let n = fsm.writable().len();
        assert_eq!(fsm.on_wrote(n - 4), WriteProgress::Pending);
        assert_eq!(fsm.on_wrote(4), WriteProgress::Done);
        assert_eq!(fsm.state(), ConnState::Closed);
    }

    #[test]
    fn pipelined_pair_yields_second_request_after_write() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ConnEvent::Request(first) = fsm.on_bytes(two) else {
            panic!("first request expected");
        };
        assert_eq!(first.path, "/a");
        assert!(fsm.has_buffered_input());
        fsm.respond(b"x".to_vec(), true);
        match fsm.on_wrote(1) {
            WriteProgress::Next(ConnEvent::Request(second)) => assert_eq!(second.path, "/b"),
            other => panic!("expected pipelined request, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_idles_between_requests() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        fsm.on_bytes(b"GET /a HTTP/1.1\r\n\r\n");
        fsm.respond(b"x".to_vec(), true);
        assert_eq!(fsm.on_wrote(1), WriteProgress::Next(ConnEvent::Continue));
        assert_eq!(fsm.state(), ConnState::KeepAlive);
        // A later second request restarts the cycle.
        let ConnEvent::Request(req) = fsm.on_bytes(b"GET /b HTTP/1.1\r\n\r\n") else {
            panic!("second request expected");
        };
        assert_eq!(req.path, "/b");
    }

    #[test]
    fn connection_close_request_closes_even_if_engine_allows_reuse() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        fsm.on_bytes(b"GET /a HTTP/1.0\r\n\r\n");
        fsm.respond(b"x".to_vec(), true);
        assert_eq!(fsm.on_wrote(1), WriteProgress::Done);
    }

    #[test]
    fn mid_body_eof_closes_without_answer() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        let event = fsm.on_bytes(b"POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert_eq!(event, ConnEvent::Continue);
        assert_eq!(fsm.state(), ConnState::ReadingBody);
        assert_eq!(fsm.on_eof(), ConnEvent::Close);
        assert_eq!(fsm.state(), ConnState::Closed);
    }

    #[test]
    fn oversized_body_is_rejected_at_head_parse() {
        let mut fsm = ConnFsm::new(4);
        let event = fsm.on_bytes(b"POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
        assert_eq!(event, ConnEvent::Reject(HttpError::TooLarge));
        assert!(!fsm.wants_keep_alive());
    }

    #[test]
    fn unterminated_head_rejects_at_the_blocking_boundary() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        let mut sent = 0usize;
        let chunk = vec![b'a'; 100];
        loop {
            match fsm.on_bytes(&chunk) {
                ConnEvent::Continue => {
                    sent += chunk.len();
                    assert!(sent < HEAD_REJECT_AT + chunk.len(), "never rejected");
                }
                ConnEvent::Reject(HttpError::TooLarge) => {
                    assert!(sent + chunk.len() >= HEAD_REJECT_AT);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn eof_on_overlong_partial_head_is_too_large_not_io() {
        // Between MAX_HEAD and the chunk-boundary reject point, EOF makes
        // the blocking loop notice the overrun; the machine must match.
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        assert_eq!(
            fsm.on_bytes(&vec![b'a'; MAX_HEAD + 10]),
            ConnEvent::Continue
        );
        assert_eq!(fsm.on_eof(), ConnEvent::Reject(HttpError::TooLarge));
    }

    #[test]
    fn garbage_is_rejected_like_the_blocking_reader() {
        let mut fsm = ConnFsm::new(DEFAULT_MAX_BODY);
        let event = fsm.on_bytes(b"NOT-HTTP\r\n\r\n");
        assert!(
            matches!(event, ConnEvent::Reject(HttpError::BadRequest(_))),
            "{event:?}"
        );
    }
}
