//! A deliberately minimal HTTP/1.1 subset: enough to parse the request line,
//! headers and a `Content-Length` body, and to write plain responses. No
//! chunked encoding — the serving layer favours predictability over protocol
//! coverage. The blocking core closes every connection after one exchange;
//! the event-driven core ([`crate::reactor`]) reuses connections when the
//! client allows it, via the `keep_alive` flag on [`render_response`].
//!
//! Both serving cores parse with the same [`parse_head`] and render with the
//! same [`render_response`], so their wire behavior cannot drift: the
//! incremental connection FSM ([`crate::conn`]) and the blocking
//! [`read_request_limited`] are thin delivery layers over identical logic.

use std::io::{Read, Write};

/// Upper bound on request-head bytes (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Default upper bound on body bytes (a prediction batch); configurable per
/// server via [`crate::config::ServerConfig::max_body_bytes`].
pub const DEFAULT_MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included if any.
    pub path: String,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name` (case-insensitive), if the header was sent.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Connection closed or timed out mid-request.
    Io,
    /// Malformed request line or headers.
    BadRequest(&'static str),
    /// Head or body exceeded the fixed limits.
    TooLarge,
}

/// Reads one request from the stream with the default body limit.
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, HttpError> {
    read_request_limited(stream, DEFAULT_MAX_BODY)
}

/// Reads one request from the stream, rejecting bodies over `max_body`
/// bytes with [`HttpError::TooLarge`] — before buffering them.
pub fn read_request_limited<S: Read>(
    stream: &mut S,
    max_body: usize,
) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|_| HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Io);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = parse_head(&buf[..head_end])?;
    if head.content_length > max_body {
        return Err(HttpError::TooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < head.content_length {
        let n = stream.read(&mut chunk).map_err(|_| HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Io);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(head.content_length);

    Ok(head.into_request(body))
}

/// A parsed request head: everything before the body, plus the framing
/// facts (`Content-Length`, HTTP version) the delivery layer needs. Both
/// the blocking reader and the incremental connection FSM build requests
/// through this one type, so parse behavior cannot drift between them.
#[derive(Debug)]
pub struct ParsedHead {
    /// Request method, as received.
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Declared body length (`0` when no `Content-Length` was sent).
    pub content_length: usize,
    /// Whether the request line said `HTTP/1.0` (affects keep-alive
    /// defaults: 1.0 closes unless the client asked to keep alive).
    pub http10: bool,
}

impl ParsedHead {
    /// Completes the request with its body bytes.
    pub fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            path: self.path,
            headers: self.headers,
            body,
        }
    }

    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 defaults to keep-alive unless the client sent
    /// `Connection: close`; HTTP/1.0 defaults to close unless the client
    /// sent `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self
            .headers
            .iter()
            .find(|(n, _)| n == "connection")
            .map(|(_, v)| v.as_str());
        if self.http10 {
            connection.is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
        } else {
            !connection.is_some_and(|v| v.eq_ignore_ascii_case("close"))
        }
    }
}

/// Parses a complete request head (the bytes before `\r\n\r\n`, exclusive).
pub fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let head =
        std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequest("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::BadRequest("missing path"))?
        .to_string();
    let version = parts.next();
    if !version
        .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.1") || v.eq_ignore_ascii_case("HTTP/1.0"))
    {
        return Err(HttpError::BadRequest("missing or unsupported HTTP version"));
    }
    let http10 = version.is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.0"));

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("bad content-length"))?;
            }
            headers.push((name, value.to_string()));
        }
    }
    Ok(ParsedHead {
        method,
        path,
        headers,
        content_length,
        http10,
    })
}

/// Offset of the `\r\n\r\n` head terminator, if present.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response and flushes it.
pub fn write_response<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, content_type, &[], body)
}

/// Like [`write_response`], with extra headers (e.g. `Retry-After`).
pub fn write_response_with<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    stream.write_all(&render_response(
        status,
        reason,
        content_type,
        extra_headers,
        body,
        false,
    ))?;
    stream.flush()
}

/// Renders a complete response to bytes. The single renderer behind both
/// serving cores: the blocking path writes these bytes directly (always
/// `Connection: close`), the event loop buffers them and keeps the
/// connection open when `keep_alive` is set — so the two paths differ on
/// the wire by exactly that one header and nothing else.
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.header("x-request-id"), None);
    }

    #[test]
    fn headers_are_lowercased_and_trimmed() {
        let raw = b"GET / HTTP/1.1\r\nX-Request-Id:  abc-123 \r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.header("X-Request-Id"), Some("abc-123"));
        assert_eq!(req.headers[0].0, "x-request-id");
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn body_truncated_to_content_length() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nabcdef";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.body, b"ab");
    }

    #[test]
    fn rejects_garbage() {
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..]),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_content_length() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n";
        assert_eq!(read_request(&mut &raw[..]), Err(HttpError::TooLarge));
    }

    #[test]
    fn custom_body_limit_applies() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(
            read_request_limited(&mut &raw[..], 4),
            Err(HttpError::TooLarge)
        );
        assert!(read_request_limited(&mut &raw[..], 5).is_ok());
    }

    #[test]
    fn eof_mid_request_is_io() {
        let raw = b"GET /x HTTP/1.1\r\n";
        assert_eq!(read_request(&mut &raw[..]), Err(HttpError::Io));
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "text/plain", b"yes").unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.ends_with("\r\n\r\nyes"));
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let h = parse_head(b"GET / HTTP/1.1\r\nHost: x").unwrap();
        assert!(h.keep_alive());
        let h = parse_head(b"GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!h.keep_alive());
        let h = parse_head(b"GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(!h.keep_alive());
        let h = parse_head(b"GET / HTTP/1.0\r\nConnection: Keep-Alive").unwrap();
        assert!(h.keep_alive());
    }

    #[test]
    fn render_keep_alive_differs_only_in_the_connection_header() {
        let close = render_response(200, "OK", "text/plain", &[], b"ok", false);
        let keep = render_response(200, "OK", "text/plain", &[], b"ok", true);
        let close = String::from_utf8(close).unwrap();
        let keep = String::from_utf8(keep).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }

    #[test]
    fn extra_headers_land_in_head() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "Service Unavailable",
            "text/plain",
            &[("Retry-After", "1")],
            b"busy",
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.ends_with("\r\n\r\nbusy"));
    }
}
