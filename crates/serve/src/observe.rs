//! The per-server temporal observability stack.
//!
//! [`ServeObs::start`] assembles the pieces from `dfp_obs` around one
//! running server: a [`Tsdb`] ring store, a background [`Collector`] that
//! samples the server's private metrics registry, the process-global
//! registry, and (when present) the model registry's families every
//! `DFP_TSDB_INTERVAL_MS`; an optional [`SloEngine`] evaluated after each
//! tick; and a [`TailSampler`] whose slow-keep threshold tracks the live
//! 1-minute p99 of `dfp_serve_predict_latency_seconds`.
//!
//! The request hot path never touches the TSDB — samples flow one way,
//! from atomics into the collector thread. The only per-request costs are
//! one relaxed atomic load in [`TailSampler::begin`] (when capture is
//! disabled) and the histogram exemplar update on `/predict`.

use crate::config::ServerConfig;
use crate::metrics::Metrics;
use dfp_obs::tsdb::{Collector, OnTick, Source};
use dfp_obs::{SloEngine, SloSpec, TailSampler, Tsdb, TsdbConfig};
use dfp_registry::ModelRegistry;
use std::sync::Arc;

/// Histogram whose live windowed p99 drives the tail sampler's slow-keep
/// threshold.
const TAIL_DRIVER_HISTOGRAM: &str = "dfp_serve_predict_latency_seconds";

/// Window the tail threshold follows (label and width must agree with
/// [`dfp_obs::tsdb::WINDOWS`]).
const TAIL_DRIVER_WINDOW_MS: u64 = 60_000;

/// The assembled observability stack for one server. Dropping it stops the
/// collector thread promptly; [`crate::ServerHandle`] owns one when the
/// TSDB is enabled.
#[derive(Debug)]
pub struct ServeObs {
    tsdb: Arc<Tsdb>,
    slo: Option<Arc<SloEngine>>,
    tail: Arc<TailSampler>,
    // Owned for lifetime only: dropping the Collector joins the thread.
    _collector: Collector,
}

impl ServeObs {
    /// Builds the stack and spawns the collector. Returns `None` when the
    /// thread could not be spawned (the server still serves, without
    /// history).
    pub fn start(
        cfg: &ServerConfig,
        metrics: &Arc<Metrics>,
        registry: Option<&Arc<ModelRegistry>>,
    ) -> Option<ServeObs> {
        let tsdb_cfg = TsdbConfig::default()
            .with_interval(cfg.tsdb_interval)
            .with_retain(cfg.tsdb_retain);
        let tsdb = Arc::new(Tsdb::new(&tsdb_cfg));
        let specs = load_slos(cfg);
        let slo = if specs.is_empty() {
            None
        } else {
            // Burn-rate gauges land in the server's own registry, so they
            // ride /metrics and get sampled into history like any family.
            Some(Arc::new(SloEngine::new(specs, metrics.registry())))
        };
        let tail = Arc::new(TailSampler::new(cfg.tail_capacity));

        let mut sources: Vec<Source> = Vec::new();
        {
            let metrics = Arc::clone(metrics);
            sources.push(Box::new(move || metrics.snapshot()));
        }
        sources.push(Box::new(|| dfp_obs::metrics::global().snapshot()));
        if let Some(registry) = registry {
            let registry = Arc::clone(registry);
            sources.push(Box::new(move || registry.metrics_snapshot()));
        }

        let mut on_tick: Vec<OnTick> = Vec::new();
        if let Some(engine) = &slo {
            let engine = Arc::clone(engine);
            on_tick.push(Box::new(move |tsdb, now| engine.evaluate(tsdb, now)));
        }
        {
            let tail = Arc::clone(&tail);
            on_tick.push(Box::new(move |tsdb, now| {
                if let Some(q) =
                    tsdb.window_quantiles(TAIL_DRIVER_HISTOGRAM, "", TAIL_DRIVER_WINDOW_MS, now)
                {
                    tail.set_slow_threshold_ns((q.p99 * 1e9) as u64);
                }
            }));
        }

        let collector = match Collector::start(Arc::clone(&tsdb), sources, on_tick) {
            Ok(c) => c,
            Err(e) => {
                dfp_obs::log::warn(
                    "dfp_serve",
                    "tsdb collector thread failed to start; serving without history",
                    &[("why", &e.to_string())],
                );
                return None;
            }
        };
        Some(ServeObs {
            tsdb,
            slo,
            tail,
            _collector: collector,
        })
    }

    /// The ring store behind `/metrics/history` and `/dashboard`.
    pub fn tsdb(&self) -> &Tsdb {
        &self.tsdb
    }

    /// The SLO engine, when at least one spec is configured.
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_deref()
    }

    /// The tail-sampled trace reservoir.
    pub fn tail(&self) -> &TailSampler {
        &self.tail
    }
}

/// Programmatic specs plus whatever `DFP_SLO_FILE` parses to. File problems
/// are logged and skipped: a bad SLO spec must never keep serving down.
fn load_slos(cfg: &ServerConfig) -> Vec<SloSpec> {
    let mut specs = cfg.slos.clone();
    if let Some(path) = &cfg.slo_file {
        match std::fs::read_to_string(path) {
            Ok(text) => match SloSpec::parse_file(&text) {
                Ok(parsed) => specs.extend(parsed),
                Err(why) => dfp_obs::log::warn(
                    "dfp_serve",
                    "DFP_SLO_FILE did not parse; ignoring it",
                    &[("path", path), ("why", &why)],
                ),
            },
            Err(e) => dfp_obs::log::warn(
                "dfp_serve",
                "DFP_SLO_FILE is unreadable; ignoring it",
                &[("path", path), ("why", &e.to_string())],
            ),
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stack_starts_and_samples_server_metrics() {
        let cfg = ServerConfig::default()
            .with_tsdb_interval(Duration::from_millis(20))
            .with_slos(vec![SloSpec::new(
                "avail",
                0.99,
                "dfp_serve_requests_total",
                "dfp_serve_server_errors_total",
            )]);
        let metrics = Arc::new(Metrics::new());
        metrics.requests_total.add(5);
        let obs = ServeObs::start(&cfg, &metrics, None).expect("collector starts");
        // The first tick is immediate; wait out a couple more.
        std::thread::sleep(Duration::from_millis(70));
        assert!(obs
            .tsdb()
            .series_len("dfp_serve_requests_total", "")
            .is_some());
        assert!(obs.slo().is_some());
        assert_eq!(obs.slo().unwrap().firing_count(), 0);
        // Burn-rate gauges were registered into the server registry.
        assert!(metrics.render().contains("dfp_slo_burn_rate"));
    }

    #[test]
    fn slo_file_problems_are_nonfatal() {
        let cfg = ServerConfig::default().with_slo_file("/nonexistent/slo.json");
        assert!(load_slos(&cfg).is_empty());
    }

    #[test]
    fn tail_capacity_zero_disables_capture() {
        let cfg = ServerConfig::default().with_tail_capacity(0);
        let metrics = Arc::new(Metrics::new());
        let obs = ServeObs::start(&cfg, &metrics, None).expect("collector starts");
        assert!(obs.tail().begin().is_none());
    }
}
