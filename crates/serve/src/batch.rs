//! Adaptive micro-batching for `/predict`.
//!
//! Model inference amortizes well: one `predict_rows` call over N rows is
//! much cheaper than N calls over one row (shared per-call setup, better
//! locality in the classifier kernels). The scheduler exploits that by
//! coalescing concurrently queued requests into one batched predict call.
//!
//! Protocol: workers [`BatchScheduler::submit`] their already-transformed
//! feature rows and block on a reply channel. A single batcher thread
//! drains the queue, lingering up to `batch_wait` for more requests after
//! the first arrives — but never past the **earliest deadline** of any
//! queued request, so batching can add latency only within a request's
//! existing budget. Batches are capped at `batch_max` requests.
//!
//! Determinism contract: predictions are computed by the same
//! `predict_rows` entry point serving uses directly, and every row's
//! position inside the concatenated batch is tracked exactly, so a batched
//! answer is bit-identical to the sequential one. The `serve.batch`
//! failpoint sits on the dispatch path for chaos coverage: `err` drops the
//! reply channels (workers observe the disconnect and answer `500`),
//! `sleep` injects scheduler latency.

use crate::metrics::Metrics;
use dfp_core::PatternClassifier;
use dfp_data::schema::ClassId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the idle batcher re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// One queued request: its feature rows and where to send the labels.
struct Pending {
    rows: Vec<Vec<u32>>,
    deadline: Instant,
    reply: mpsc::Sender<Vec<ClassId>>,
}

struct Inner {
    queue: Mutex<VecDeque<Pending>>,
    available: Condvar,
    stop: AtomicBool,
    model: Arc<PatternClassifier>,
    metrics: Arc<Metrics>,
    batch_max: usize,
    batch_wait: Duration,
}

impl Inner {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running batch scheduler; [`Self::shutdown`] (or drop) drains the queue
/// and joins the batcher thread.
#[derive(Debug)]
pub struct BatchScheduler {
    inner: Arc<Inner>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("batch_max", &self.batch_max)
            .field("batch_wait", &self.batch_wait)
            .finish_non_exhaustive()
    }
}

impl BatchScheduler {
    /// Spawns the batcher thread. `batch_max` is the most requests fused
    /// into one predict call; `batch_wait` the linger budget after the
    /// first request arrives.
    pub fn start(
        model: Arc<PatternClassifier>,
        metrics: Arc<Metrics>,
        batch_max: usize,
        batch_wait: Duration,
    ) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            model,
            metrics,
            batch_max: batch_max.max(1),
            batch_wait,
        });
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dfp-serve-batcher".into())
                .spawn(move || run(&inner))
                .expect("spawn batcher thread")
        };
        BatchScheduler {
            inner,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// Queues `rows` for the next batch and returns the channel the
    /// predicted labels arrive on. Callers should bound their wait by
    /// `deadline` (`recv_timeout`); a dropped channel means the scheduler
    /// abandoned the batch (only under fault injection).
    ///
    /// After [`Self::shutdown`] the submission is refused and the rows come
    /// back in `Err` so the caller can predict them inline — a request that
    /// raced server shutdown still gets a correct answer, never a spurious
    /// `500`. The stop check happens under the queue lock, which is also
    /// where the batcher makes its exit decision, so there is no window
    /// where an accepted submission goes unprocessed.
    pub fn submit(
        &self,
        rows: Vec<Vec<u32>>,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<Vec<ClassId>>, Vec<Vec<u32>>> {
        let (reply, rx) = mpsc::channel();
        let mut q = self.inner.lock_queue();
        if self.inner.stop.load(Ordering::Acquire) {
            return Err(rows);
        }
        q.push_back(Pending {
            rows,
            deadline,
            reply,
        });
        drop(q);
        self.inner.available.notify_all();
        Ok(rx)
    }

    /// Stops the batcher and joins its thread: everything already queued is
    /// answered first, and later [`Self::submit`] calls are refused. Safe to
    /// call from shared references and more than once; the server shutdown
    /// path runs this *before* joining the worker pool so no worker can
    /// block on a reply that will never come.
    pub fn shutdown(&self) {
        {
            // Raise the flag under the queue lock: every submit either
            // happens-before this (the batcher drains it) or observes stop
            // and is refused.
            let _q = self.inner.lock_queue();
            self.inner.stop.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        let handle = self
            .batcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(t) = handle {
            let _ = t.join();
        }
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher loop: wait for work, linger, drain one batch, dispatch.
/// On stop it finishes everything already queued before exiting.
fn run(inner: &Inner) {
    loop {
        let batch: Vec<Pending> = {
            let mut q = inner.lock_queue();
            while q.is_empty() {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = inner
                    .available
                    .wait_timeout(q, IDLE_POLL)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            // Linger for co-arrivals, clamped so no queued request is held
            // past its deadline.
            let earliest = q.iter().map(|p| p.deadline).min().expect("non-empty");
            let linger_end = (Instant::now() + inner.batch_wait).min(earliest);
            while q.len() < inner.batch_max && !inner.stop.load(Ordering::Acquire) {
                let now = Instant::now();
                if now >= linger_end {
                    break;
                }
                let (guard, _) = inner
                    .available
                    .wait_timeout(q, linger_end - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.len().min(inner.batch_max);
            q.drain(..take).collect()
        };
        dispatch(inner, batch);
    }
}

/// Runs one fused predict over `batch` and scatters the labels back to
/// each request's reply channel.
fn dispatch(inner: &Inner, batch: Vec<Pending>) {
    inner.metrics.batches_total.inc();
    inner.metrics.observe_batch_size(batch.len());
    // Chaos hook: `err` abandons the batch (dropping the reply senders, so
    // waiting workers observe the disconnect); `sleep` injects latency.
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("serve.batch") {
        return;
    }
    let total: usize = batch.iter().map(|p| p.rows.len()).sum();
    let mut all: Vec<Vec<u32>> = Vec::with_capacity(total);
    let mut replies: Vec<(usize, mpsc::Sender<Vec<ClassId>>)> = Vec::with_capacity(batch.len());
    for p in batch {
        replies.push((p.rows.len(), p.reply));
        all.extend(p.rows);
    }
    let labels = inner.model.predict_rows(&all);
    let mut offset = 0;
    for (count, reply) in replies {
        // A send error just means the worker gave up (deadline) — fine.
        let _ = reply.send(labels[offset..offset + count].to_vec());
        offset += count;
    }
}
