//! In-memory transform cache for repeated `/predict` feature rows.
//!
//! Serving workloads are heavily repetitive: the same CSV row shows up
//! across requests (health-check probes, hot entities, replayed traffic).
//! Parsing and discretizing such a row again is pure waste, so the server
//! keys the **transformed** feature row by the raw CSV line and replays it
//! on the next sighting.
//!
//! Soundness rests on two facts about the pipeline: the feature transform
//! is per-row independent (no cross-row state), and the item space is
//! derived from the schema alone, so a row transforms identically whether
//! it arrives alone or inside a batch. The cache therefore cannot change
//! any prediction — only skip recomputing one.
//!
//! The cache is bounded; when full it is cleared wholesale rather than
//! evicted piecemeal (repetitive serving traffic re-warms it in one pass,
//! and wholesale clearing needs no recency bookkeeping on the hot path).

use std::collections::HashMap;
use std::sync::Mutex;

/// Default bound on distinct cached rows per server.
pub const DEFAULT_CAP: usize = 4096;

/// A bounded map from raw CSV line to its transformed feature row.
#[derive(Debug)]
pub struct TransformCache {
    map: Mutex<HashMap<String, Vec<u32>>>,
    cap: usize,
}

impl TransformCache {
    /// An empty cache holding at most `cap` rows (`0` is clamped to `1`).
    pub fn new(cap: usize) -> Self {
        TransformCache {
            map: Mutex::new(HashMap::new()),
            cap: cap.max(1),
        }
    }

    /// The cached feature row for `line`, if present.
    pub fn get(&self, line: &str) -> Option<Vec<u32>> {
        self.lock().get(line).cloned()
    }

    /// Caches `row` as the transform of `line`, clearing the cache first
    /// when it is full and `line` is new.
    pub fn insert(&self, line: &str, row: Vec<u32>) {
        let mut map = self.lock();
        if map.len() >= self.cap && !map.contains_key(line) {
            map.clear();
        }
        map.insert(line.to_string(), row);
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Vec<u32>>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c = TransformCache::new(8);
        assert_eq!(c.get("red,1"), None);
        c.insert("red,1", vec![0, 3]);
        assert_eq!(c.get("red,1"), Some(vec![0, 3]));
        assert_eq!(c.get("red,2"), None);
    }

    #[test]
    fn full_cache_clears_then_rewarns() {
        let c = TransformCache::new(2);
        c.insert("a", vec![1]);
        c.insert("b", vec![2]);
        assert_eq!(c.len(), 2);
        // Overwriting a present key does not clear…
        c.insert("b", vec![9]);
        assert_eq!(c.get("a"), Some(vec![1]));
        // …but a new key at capacity does.
        c.insert("c", vec![3]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("c"), Some(vec![3]));
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn zero_capacity_clamped() {
        let c = TransformCache::new(0);
        c.insert("a", vec![1]);
        assert_eq!(c.get("a"), Some(vec![1]));
    }
}
