//! The nonblocking readiness loop (`DFP_SERVE_EVENT_LOOP=1`): one thread,
//! one level-triggered epoll instance, a slab of [`ConnFsm`]-driven
//! connections, and the existing worker pool as the compute stage.
//!
//! Division of labor:
//!
//! * **this loop** owns every socket: accepts, reads bytes into the pure
//!   per-connection state machine, writes rendered responses back out, and
//!   enforces the connection-scoped limits (`max_conns`, the slowloris
//!   `head_timeout`);
//! * **the worker pool** runs [`Engine::respond_to`] — parsing rows,
//!   predicting, rendering — exactly as it does under the blocking core.
//!   Workers hand finished response bytes back through a mutex queue and
//!   poke a self-wake pipe registered in the epoll set.
//!
//! An idle keep-alive connection therefore costs one slab entry and one fd,
//! not a thread: the `dfp_serve_open_connections` gauge counts slab
//! occupancy while `dfp_serve_queue_depth` keeps counting pool work, and
//! the integration tests assert 1k idle sockets hold zero workers.
//!
//! Load shedding moves from accept time (the blocking core sheds before
//! reading, because the worker is the scarce resource) to dispatch time
//! (the loop reads cheaply; the pool queue is what must be protected) —
//! the response bytes are identical. Deadlines still start at accept for a
//! connection's first request, and at first byte for keep-alive reuses.
//!
//! Shutdown mirrors the blocking core: the handle's loopback poke wakes the
//! epoll wait, the listener closes, idle connections drop, and the loop
//! drains queued/writing exchanges before the pool joins.

#[cfg(unix)]
mod imp {
    use crate::conn::{ConnEvent, ConnFsm, ConnState, WriteProgress};
    use crate::http::Request;
    use crate::pool::ThreadPool;
    use crate::server::Engine;
    use crate::sys::{Epoll, Ready, EV_READ, EV_WRITE};
    use std::io::{self, Read, Write};
    use std::net::{Shutdown, TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Token of the listening socket.
    const TOKEN_LISTENER: u64 = u64::MAX;
    /// Token of the completion-wake pipe.
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    /// Epoll wait granularity: bounds stop-flag and timer-sweep latency.
    const TICK: Duration = Duration::from_millis(50);

    /// Longest a rejected-at-accept connection is drained for a clean FIN
    /// (mirrors the blocking core's shed drain).
    const REJECT_DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

    /// Most bytes read from one connection per readiness event before the
    /// loop moves on (level-triggered epoll re-reports the remainder), so a
    /// firehose client cannot starve its neighbors.
    const READ_BUDGET_PER_EVENT: usize = 16 * 16 * 1024;

    /// A finished (or abandoned) exchange coming back from a worker.
    struct Completion {
        token: u64,
        /// Rendered response bytes; `None` means the worker died mid-request
        /// (panic) and the connection must close without an answer — the
        /// same outcome a panicking worker produces under the blocking core.
        bytes: Option<Vec<u8>>,
        keep_alive: bool,
    }

    /// The worker→loop completion channel: a mutex-guarded queue plus the
    /// wake pipe that makes the epoll wait notice new entries.
    struct CompletionQueue {
        queue: Mutex<Vec<Completion>>,
        wake: UnixStream,
    }

    impl CompletionQueue {
        fn push(&self, c: Completion) {
            self.queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(c);
            // A full pipe already guarantees a pending wake; WouldBlock is
            // success here.
            let _ = (&self.wake).write(&[1]);
        }

        fn drain(&self) -> Vec<Completion> {
            std::mem::take(
                &mut self
                    .queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            )
        }
    }

    /// Guarantees every dispatched request produces exactly one completion:
    /// if the worker's closure unwinds (panic) before answering, Drop sends
    /// the close-without-response completion so the connection cannot hang.
    struct CompletionGuard {
        token: u64,
        completions: Arc<CompletionQueue>,
        answered: bool,
    }

    impl CompletionGuard {
        fn complete(mut self, bytes: Vec<u8>, keep_alive: bool) {
            self.answered = true;
            self.completions.push(Completion {
                token: self.token,
                bytes: Some(bytes),
                keep_alive,
            });
        }
    }

    impl Drop for CompletionGuard {
        fn drop(&mut self) {
            if !self.answered {
                self.completions.push(Completion {
                    token: self.token,
                    bytes: None,
                    keep_alive: false,
                });
            }
        }
    }

    /// One live connection in the slab.
    struct Conn {
        stream: TcpStream,
        fsm: ConnFsm,
        /// Generation-packed token registered with epoll; stale events from
        /// a recycled slot fail the generation check and are dropped.
        token: u64,
        /// Interest bits currently registered (avoids redundant epoll_ctl).
        interest: u32,
        /// Base instant of the current request's deadline: accept time for
        /// the first request, first-byte time for keep-alive reuses.
        accepted: Instant,
        /// Slowloris guard: when the current request must be complete by.
        /// `None` while idle in keep-alive or queued/writing.
        read_deadline: Option<Instant>,
        /// A request is queued in the worker pool.
        busy: bool,
    }

    /// A socket being drained for a clean FIN after a pre-read rejection
    /// (`max_conns` 503): reads are discarded until EOF or the deadline.
    struct Draining {
        stream: TcpStream,
        deadline: Instant,
    }

    /// Packs `(generation, slot index)` into an epoll token.
    fn pack(idx: usize, gen: u32) -> u64 {
        ((gen as u64) << 32) | idx as u64
    }

    fn unpack(token: u64) -> (usize, u32) {
        ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
    }

    /// The readiness loop's fallible plumbing, assembled before the accept
    /// thread spawns so failure can fall back to the threaded core.
    pub(crate) struct Reactor {
        ep: Epoll,
        wake_rx: UnixStream,
        completions: Arc<CompletionQueue>,
    }

    impl Reactor {
        /// Creates the epoll instance and wake pipe and registers the
        /// listener (switched to nonblocking). On any error the caller
        /// reverts the listener to blocking and uses the threaded core.
        pub(crate) fn new(listener: &TcpListener) -> io::Result<Reactor> {
            let ep = Epoll::new()?;
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_tx.set_nonblocking(true)?;
            wake_rx.set_nonblocking(true)?;
            ep.add(wake_rx.as_raw_fd(), EV_READ, TOKEN_WAKE)?;
            listener.set_nonblocking(true)?;
            ep.add(listener.as_raw_fd(), EV_READ, TOKEN_LISTENER)?;
            Ok(Reactor {
                ep,
                wake_rx,
                completions: Arc::new(CompletionQueue {
                    queue: Mutex::new(Vec::new()),
                    wake: wake_tx,
                }),
            })
        }

        /// Runs the loop until shutdown. Consumes the listener; the pool
        /// (the compute stage) is dropped by the caller afterwards, joining
        /// the workers.
        pub(crate) fn run(
            self,
            listener: TcpListener,
            engine: Arc<Engine>,
            pool: ThreadPool,
            stop: Arc<AtomicBool>,
        ) {
            Loop::new(self, listener, engine, pool, stop).run()
        }
    }

    struct Loop {
        ep: Epoll,
        wake_rx: UnixStream,
        completions: Arc<CompletionQueue>,
        listener: Option<TcpListener>,
        engine: Arc<Engine>,
        pool: ThreadPool,
        stop: Arc<AtomicBool>,
        slots: Vec<Option<Conn>>,
        /// Generation per slot, bumped on every close so recycled tokens
        /// never alias.
        gens: Vec<u32>,
        free: Vec<usize>,
        open: usize,
        draining: Vec<Draining>,
        next_sweep: Instant,
    }

    impl Loop {
        fn new(
            reactor: Reactor,
            listener: TcpListener,
            engine: Arc<Engine>,
            pool: ThreadPool,
            stop: Arc<AtomicBool>,
        ) -> Loop {
            let cap = engine.cfg.max_conns;
            Loop {
                ep: reactor.ep,
                wake_rx: reactor.wake_rx,
                completions: reactor.completions,
                listener: Some(listener),
                engine,
                pool,
                stop,
                slots: Vec::with_capacity(cap.min(4096)),
                gens: Vec::with_capacity(cap.min(4096)),
                free: Vec::new(),
                open: 0,
                draining: Vec::new(),
                next_sweep: Instant::now(),
            }
        }

        fn run(mut self) {
            let mut ready = Vec::with_capacity(256);
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                ready.clear();
                if let Err(e) = self.ep.wait(TICK.as_millis() as i32, &mut ready) {
                    dfp_obs::log::warn(
                        "dfp_serve",
                        "epoll wait failed; readiness loop exiting",
                        &[("why", &e.to_string())],
                    );
                    return;
                }
                if !ready.is_empty() {
                    let mut sp = dfp_obs::span("serve.reactor.tick");
                    sp.attr("events", ready.len());
                    for r in ready.drain(..) {
                        match r.token {
                            TOKEN_LISTENER => self.accept_ready(),
                            TOKEN_WAKE => self.wake_ready(),
                            _ => self.conn_ready(r),
                        }
                    }
                }
                self.sweep_timers();
            }
            self.drain_shutdown();
        }

        /// Post-stop drain: close the listener and every idle connection,
        /// then keep servicing completions and writes so in-flight requests
        /// answer before the pool joins — the event-loop equivalent of the
        /// blocking core joining its workers.
        fn drain_shutdown(&mut self) {
            if let Some(listener) = self.listener.take() {
                let _ = self.ep.delete(listener.as_raw_fd());
            }
            for idx in 0..self.slots.len() {
                let in_flight = self.slots[idx].as_ref().is_some_and(|c| {
                    c.busy || matches!(c.fsm.state(), ConnState::Queued | ConnState::Writing)
                });
                if self.slots[idx].is_some() && !in_flight {
                    self.close(idx);
                }
            }
            let grace =
                Instant::now() + self.engine.cfg.request_deadline + self.engine.cfg.io_timeout;
            let mut ready = Vec::with_capacity(256);
            while self.open > 0 && Instant::now() < grace {
                ready.clear();
                if self.ep.wait(TICK.as_millis() as i32, &mut ready).is_err() {
                    break;
                }
                for r in ready.drain(..) {
                    match r.token {
                        TOKEN_WAKE => self.wake_ready(),
                        TOKEN_LISTENER => {}
                        _ => self.conn_ready(r),
                    }
                }
            }
            self.engine.metrics.open_connections.set(0);
        }

        // ---- accept path ----------------------------------------------

        fn accept_ready(&mut self) {
            let Some(listener) = &self.listener else {
                return;
            };
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                };
                // Chaos hook: a simulated accept-path failure drops the
                // connection as a flaky network would (same failpoint the
                // blocking core evaluates).
                if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("serve.accept") {
                    continue;
                }
                let metrics = &self.engine.metrics;
                metrics.record_respawns(self.pool.respawns());
                metrics.queue_depth.set(self.pool.pending() as i64);
                if self.open >= self.engine.cfg.max_conns {
                    // At the connection ceiling the 503 is written before
                    // anything was read, so drain for a clean FIN exactly
                    // like the blocking core's accept-time shed.
                    metrics.conn_limit_rejected_total.inc();
                    let bytes = self.engine.shed_response();
                    let _ = stream.set_write_timeout(Some(self.engine.cfg.io_timeout));
                    let mut stream = stream;
                    let _ = stream.write_all(&bytes);
                    let _ = stream.shutdown(Shutdown::Write);
                    if stream.set_nonblocking(true).is_ok() {
                        self.draining.push(Draining {
                            stream,
                            deadline: Instant::now() + REJECT_DRAIN_TIMEOUT,
                        });
                    }
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let idx = match self.free.pop() {
                    Some(idx) => idx,
                    None => {
                        self.slots.push(None);
                        self.gens.push(0);
                        self.slots.len() - 1
                    }
                };
                let token = pack(idx, self.gens[idx]);
                if self.ep.add(stream.as_raw_fd(), EV_READ, token).is_err() {
                    self.free.push(idx);
                    continue;
                }
                let now = Instant::now();
                self.slots[idx] = Some(Conn {
                    stream,
                    fsm: ConnFsm::new(self.engine.cfg.max_body_bytes),
                    token,
                    interest: EV_READ,
                    accepted: now,
                    read_deadline: Some(now + self.engine.cfg.head_timeout),
                    busy: false,
                });
                self.open += 1;
                metrics.conns_accepted_total.inc();
                metrics.open_connections.set(self.open as i64);
            }
        }

        // ---- readiness dispatch ---------------------------------------

        fn conn_ready(&mut self, r: Ready) {
            let (idx, gen) = unpack(r.token);
            let valid = idx < self.slots.len()
                && self.gens[idx] == gen
                && self.slots[idx].as_ref().is_some_and(|c| c.token == r.token);
            if !valid {
                return; // stale event for a recycled slot
            }
            let state = self.slots[idx].as_ref().map(|c| c.fsm.state());
            match state {
                Some(ConnState::Writing) if r.writable() => self.write_ready(idx),
                Some(ConnState::Writing) => {}
                // The worker will answer; but a peer that is entirely gone
                // (EPOLLHUP fires even at interest 0) has nobody to answer —
                // close now, and let the generation check drop the completion
                // when it lands. Without this the level-triggered HUP would
                // spin the loop until the worker finished.
                Some(ConnState::Queued) if r.hangup() => self.close(idx),
                Some(ConnState::Queued) => {}
                Some(ConnState::Closed) | None => {}
                _ if r.readable() => self.read_ready(idx),
                _ => {}
            }
        }

        /// Reads until WouldBlock (bounded per event) and feeds the FSM.
        fn read_ready(&mut self, idx: usize) {
            let mut buf = [0u8; 16 * 1024];
            let mut budget = READ_BUDGET_PER_EVENT;
            loop {
                let conn = match &mut self.slots[idx] {
                    Some(c) => c,
                    None => return,
                };
                // A first byte after an idle keep-alive period starts a new
                // request: its deadline base and slowloris timer reset here.
                let idle = matches!(conn.fsm.state(), ConnState::KeepAlive);
                let event = match conn.stream.read(&mut buf) {
                    Ok(0) => conn.fsm.on_eof(),
                    Ok(n) => {
                        if idle {
                            let now = Instant::now();
                            conn.accepted = now;
                            conn.read_deadline = Some(now + self.engine.cfg.head_timeout);
                        }
                        budget = budget.saturating_sub(n);
                        conn.fsm.on_bytes(&buf[..n])
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                };
                match event {
                    ConnEvent::Continue => {
                        if budget == 0 {
                            return; // level-triggered epoll re-reports the rest
                        }
                    }
                    other => {
                        self.on_event(idx, other);
                        return;
                    }
                }
            }
        }

        /// Acts on a non-`Continue` FSM event: dispatch, reject, or close.
        fn on_event(&mut self, idx: usize, event: ConnEvent) {
            match event {
                ConnEvent::Continue => {}
                ConnEvent::Close => self.close(idx),
                ConnEvent::Request(request) => self.dispatch(idx, request),
                ConnEvent::Reject(e) => {
                    let Some(conn) = &mut self.slots[idx] else {
                        return;
                    };
                    match self.engine.reject_to(&e, conn.accepted) {
                        Some(bytes) => {
                            conn.fsm.respond(bytes, false);
                            conn.read_deadline = None;
                            self.write_ready(idx);
                        }
                        None => self.close(idx),
                    }
                }
            }
        }

        /// Hands a complete request to the compute stage — or sheds it when
        /// the pool queue is full, with the same 503 the blocking core's
        /// accept-time shed writes.
        fn dispatch(&mut self, idx: usize, request: Box<Request>) {
            let engine = Arc::clone(&self.engine);
            engine.metrics.queue_depth.set(self.pool.pending() as i64);
            engine.metrics.record_respawns(self.pool.respawns());
            let Some(conn) = &mut self.slots[idx] else {
                return;
            };
            conn.read_deadline = None;
            if self.pool.pending() >= engine.cfg.queue_depth {
                let bytes = engine.shed_response();
                conn.fsm.respond(bytes, false);
                self.write_ready(idx);
                return;
            }
            conn.busy = true;
            self.set_interest(idx, 0);
            let Some(conn) = &mut self.slots[idx] else {
                return;
            };
            let guard = CompletionGuard {
                token: conn.token,
                completions: Arc::clone(&self.completions),
                answered: false,
            };
            let keep_alive = conn.fsm.wants_keep_alive();
            let accepted = conn.accepted;
            let enqueued = Instant::now();
            self.pool.execute(move || {
                // Same chaos hook as the blocking worker: `panic` exercises
                // pool self-healing (the guard then closes the connection),
                // `sleep` exercises backpressure and deadlines.
                dfp_fault::faultpoint!("serve.worker");
                let queue_wait = enqueued.elapsed();
                let bytes = engine.respond_to(&request, accepted, queue_wait, keep_alive);
                guard.complete(bytes, keep_alive);
            });
        }

        /// Drains the wake pipe and applies queued completions.
        fn wake_ready(&mut self) {
            let mut sink = [0u8; 256];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            for completion in self.completions.drain() {
                let (idx, gen) = unpack(completion.token);
                let valid = idx < self.slots.len()
                    && self.gens[idx] == gen
                    && self.slots[idx]
                        .as_ref()
                        .is_some_and(|c| c.token == completion.token);
                if !valid {
                    continue;
                }
                match completion.bytes {
                    None => self.close(idx), // worker died mid-request
                    Some(bytes) => {
                        let Some(conn) = &mut self.slots[idx] else {
                            continue;
                        };
                        conn.busy = false;
                        conn.fsm.respond(bytes, completion.keep_alive);
                        self.write_ready(idx);
                    }
                }
            }
        }

        // ---- write path -----------------------------------------------

        /// Pushes response bytes until WouldBlock or the exchange finishes,
        /// then follows the FSM's verdict (close, idle, or next pipelined
        /// request).
        fn write_ready(&mut self, idx: usize) {
            loop {
                let conn = match &mut self.slots[idx] {
                    Some(c) => c,
                    None => return,
                };
                if conn.fsm.state() != ConnState::Writing {
                    return;
                }
                let chunk = conn.fsm.writable();
                if chunk.is_empty() {
                    return;
                }
                let n = match conn.stream.write(chunk) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.set_interest(idx, EV_WRITE);
                        return;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(idx);
                        return;
                    }
                };
                match conn.fsm.on_wrote(n) {
                    WriteProgress::Pending => continue,
                    WriteProgress::Done => {
                        self.close(idx);
                        return;
                    }
                    WriteProgress::Next(event) => {
                        let now = Instant::now();
                        let conn = match &mut self.slots[idx] {
                            Some(c) => c,
                            None => return,
                        };
                        // Whatever follows is a new request whose deadline
                        // and slowloris budget start now.
                        conn.accepted = now;
                        conn.read_deadline = match conn.fsm.state() {
                            ConnState::KeepAlive => None, // idle: untimed
                            _ => Some(now + self.engine.cfg.head_timeout),
                        };
                        self.set_interest(idx, EV_READ);
                        match event {
                            ConnEvent::Continue => {}
                            other => self.on_event(idx, other),
                        }
                        return;
                    }
                }
            }
        }

        // ---- timers ----------------------------------------------------

        fn sweep_timers(&mut self) {
            let now = Instant::now();
            if now < self.next_sweep {
                return;
            }
            self.next_sweep = now + TICK / 2;
            // Slowloris guard: a connection whose current request has been
            // incomplete past the head timeout gets 408 (if it sent bytes)
            // or a silent close (if it never spoke).
            for idx in 0..self.slots.len() {
                let expired = self.slots[idx]
                    .as_ref()
                    .and_then(|c| c.read_deadline)
                    .is_some_and(|d| now >= d);
                if !expired {
                    continue;
                }
                let spoke = self.slots[idx]
                    .as_ref()
                    .is_some_and(|c| !matches!(c.fsm.state(), ConnState::Accepted));
                if spoke {
                    let bytes = self.engine.timeout_response();
                    if let Some(conn) = &mut self.slots[idx] {
                        // Best-effort nonblocking write: the peer is slow,
                        // its receive window is almost surely open.
                        let mut off = 0;
                        while off < bytes.len() {
                            match conn.stream.write(&bytes[off..]) {
                                Ok(n) => off += n,
                                Err(_) => break,
                            }
                        }
                    }
                }
                self.close(idx);
            }
            // Clean-FIN drains for pre-read rejections.
            self.draining.retain_mut(|d| {
                if now >= d.deadline {
                    return false;
                }
                let mut sink = [0u8; 4096];
                loop {
                    match d.stream.read(&mut sink) {
                        Ok(0) => return false, // clean FIN
                        Ok(_) => continue,     // discard
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                        Err(_) => return false,
                    }
                }
            });
        }

        // ---- slab plumbing --------------------------------------------

        fn set_interest(&mut self, idx: usize, interest: u32) {
            let Some(conn) = &mut self.slots[idx] else {
                return;
            };
            if conn.interest == interest {
                return;
            }
            conn.interest = interest;
            let _ = self
                .ep
                .modify(conn.stream.as_raw_fd(), interest, conn.token);
        }

        fn close(&mut self, idx: usize) {
            if let Some(conn) = self.slots[idx].take() {
                let _ = self.ep.delete(conn.stream.as_raw_fd());
                self.gens[idx] = self.gens[idx].wrapping_add(1);
                self.free.push(idx);
                self.open -= 1;
                self.engine.metrics.open_connections.set(self.open as i64);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use crate::pool::ThreadPool;
    use crate::server::Engine;
    use std::io;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Stub: the readiness loop needs epoll; other targets always fall back
    /// to the threaded core.
    pub(crate) struct Reactor;

    impl Reactor {
        pub(crate) fn new(_listener: &TcpListener) -> io::Result<Reactor> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness loop requires epoll; using the threaded core",
            ))
        }

        pub(crate) fn run(
            self,
            _listener: TcpListener,
            _engine: Arc<Engine>,
            _pool: ThreadPool,
            _stop: Arc<AtomicBool>,
        ) {
            unreachable!("Reactor::new never succeeds on this target")
        }
    }
}

pub(crate) use imp::Reactor;
