//! # dfp-serve — inference serving for dfp model artifacts
//!
//! Turns a saved [`dfp_model`] artifact into a long-running prediction
//! service built entirely on `std`: a `TcpListener` front end feeding a
//! fixed worker pool, a minimal HTTP/1.1 subset, CSV request parsing against
//! the saved schema, Prometheus-style metrics and graceful shutdown.
//!
//! Two interchangeable transports drive the same request brain
//! ([`server::Engine`]):
//!
//! * the **threaded core** (default) — one blocking worker thread per active
//!   connection, the historical layout;
//! * the **readiness loop** (`DFP_SERVE_EVENT_LOOP=1`, Linux) — a single
//!   epoll thread running a pure per-connection state machine
//!   ([`conn::ConnFsm`]) so idle keep-alive connections cost a slab entry
//!   instead of a thread, with the same worker pool as the compute stage.
//!
//! Responses are byte-identical between the two cores (a property test
//! enforces it), so which transport is live is purely an operational choice.
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = dfp_model::load("model.dfpm")?;
//! let handle = dfp_serve::serve(model, "127.0.0.1:8080", 4)?;
//! println!("serving on {}", handle.addr());
//! // … later:
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The serving layer degrades by refusal, never by collapse: the worker
//! pool heals panicking workers in place, saturation sheds connections with
//! `503` + `Retry-After`, oversized payloads get `413`, and every request
//! carries a deadline from accept time. Limits live in [`ServerConfig`]
//! (env-overridable via `DFP_SERVE_*`), and [`client::Client`] retries
//! transient failures with exponential backoff plus jitter.
//!
//! Two binaries ship with the crate: `dfp-serve` (the server) and
//! `dfpc-score` (batch scoring of a CSV file — offline against an artifact,
//! or remote against a running server).

// `deny` (not `forbid`) so the epoll shim in `sys` can opt back in for its
// handful of audited syscalls; every other module stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod config;
pub mod conn;
pub mod http;
pub mod metrics;
pub mod observe;
pub mod pool;
pub(crate) mod reactor;
pub mod rows;
pub mod server;
mod sys;

pub use batch::BatchScheduler;
pub use cache::TransformCache;
pub use client::{Client, ClientError, Response, RetryPolicy};
pub use config::ServerConfig;
pub use conn::{ConnEvent, ConnFsm, ConnState, WriteProgress};
pub use metrics::Metrics;
pub use observe::ServeObs;
pub use pool::ThreadPool;
pub use rows::{parse_rows, render_labels};
pub use server::{
    registry_validator, serve, serve_registry_with_config, serve_with_config, Engine, ServerHandle,
};
