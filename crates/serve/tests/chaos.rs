//! Chaos suite: fault injection against a live server. Worker panics must
//! heal in place (and be visible in `/metrics`), overload must shed with
//! `503` + `Retry-After` instead of hanging, deadlines must bound slow
//! requests, and the retrying client must ride through transient server
//! and transport failures.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::{Client, RetryPolicy, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint state is process-global; every test here serialises on this.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    guard
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn serve_with(cfg: ServerConfig) -> ServerHandle {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    dfp_serve::serve_with_config(fitted, "127.0.0.1:0", cfg).expect("bind")
}

/// One raw HTTP exchange; `None` when the server dropped the connection
/// without answering (an injected accept/worker fault does exactly that).
fn try_http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, payload))
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_http(addr, method, path, body).expect("server dropped the connection")
}

/// Raw exchange keeping the full response head, for header assertions.
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    response
}

fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer"))
}

#[test]
fn worker_panic_heals_and_is_counted() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(2));
    let addr = handle.addr();

    dfp_fault::arm_times("serve.worker", dfp_fault::Action::Panic, Some(2));
    // The two poisoned requests die without an answer — connection dropped,
    // no panic escapes the worker.
    for _ in 0..2 {
        assert_eq!(try_http(addr, "POST", "/predict", "v1,v1,v0\n"), None);
    }
    dfp_fault::disarm("serve.worker");

    // The pool healed: the same workers keep serving correct answers.
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    assert_eq!(body, "c0\n");

    // The counter is synced to /metrics on each accept, so a scrape racing
    // the recovery itself can be one behind — poll until it lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, metrics) = http(addr, "GET", "/metrics", "");
        if counter(&metrics, "dfp_serve_worker_respawns_total") >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "respawns not surfaced:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let _guard = lock_faults();
    // One worker, queue depth one: a single in-flight request saturates.
    let cfg = ServerConfig::default()
        .with_threads(1)
        .with_queue_depth(1)
        .with_request_deadline(Duration::from_secs(30));
    let handle = serve_with(cfg);
    let addr = handle.addr();

    dfp_fault::arm_times("serve.worker", dfp_fault::Action::Sleep(700), Some(1));
    let slow = std::thread::spawn(move || http(addr, "POST", "/predict", "v1,v1,v0\n"));
    // Give the slow request time to land in the worker.
    std::thread::sleep(Duration::from_millis(200));

    // The saturated server answers immediately — no hang — with 503 and a
    // Retry-After hint.
    let raw = http_raw(addr, "POST", "/predict", "v1,v2,v0\n");
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
    assert!(raw.contains("overloaded"), "{raw}");

    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200, "{body}");

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert!(counter(&metrics, "dfp_serve_shed_total") >= 1, "{metrics}");
    handle.shutdown();
}

#[test]
fn request_deadline_bounds_slow_workers() {
    let _guard = lock_faults();
    let cfg = ServerConfig::default()
        .with_threads(1)
        .with_request_deadline(Duration::from_millis(50));
    let handle = serve_with(cfg);
    let addr = handle.addr();

    // The worker stalls past the whole request budget; the request is
    // answered 503 instead of burning a worker on a dead deadline.
    dfp_fault::arm_times("serve.worker", dfp_fault::Action::Sleep(200), Some(1));
    let raw = http_raw(addr, "POST", "/predict", "v1,v1,v0\n");
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("deadline"), "{raw}");

    // Follow-up requests are back under the deadline and succeed.
    let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn accept_fault_drops_connection_but_server_survives() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(1));
    let addr = handle.addr();

    dfp_fault::arm_times("serve.accept", dfp_fault::Action::Err, Some(1));
    assert_eq!(try_http(addr, "GET", "/healthz", ""), None);

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    handle.shutdown();
}

#[test]
fn predict_fault_is_a_500_not_a_crash() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(1));
    let addr = handle.addr();

    dfp_fault::arm_times("serve.predict", dfp_fault::Action::Err, Some(1));
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 500);
    assert!(body.contains("serve.predict"), "{body}");

    let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn client_rides_through_5xx_and_transport_faults() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(2));
    let addr = handle.addr();
    let policy = RetryPolicy {
        retries: 4,
        base_backoff: Duration::from_millis(10),
        timeout: Duration::from_secs(5),
    };

    // Two injected 500s, then success — within the retry budget.
    dfp_fault::arm_times("serve.predict", dfp_fault::Action::Err, Some(2));
    let mut client = Client::with_policy(addr.to_string(), policy);
    let r = client.post("/predict", "text/csv", b"v1,v1,v0\n").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "c0\n");
    dfp_fault::disarm("serve.predict");

    // Two simulated transport failures on the client side, then success.
    dfp_fault::arm_times("client.request", dfp_fault::Action::Err, Some(2));
    let r = client.post("/predict", "text/csv", b"v1,v2,v0\n").unwrap();
    dfp_fault::disarm("client.request");
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "c1\n");

    // A 4xx comes straight back — it is the caller's bug, not the
    // network's, so the retry budget is not spent on it.
    let bad = client.post("/predict", "text/csv", b"purple\n").unwrap();
    assert_eq!(bad.status, 400);
    handle.shutdown();
}

#[test]
fn oversized_body_and_batch_are_413() {
    let _guard = lock_faults();
    let cfg = ServerConfig::default()
        .with_threads(1)
        .with_max_body_bytes(64)
        .with_max_rows(2);
    let handle = serve_with(cfg);
    let addr = handle.addr();

    // Body over the byte cap → rejected before buffering.
    let big = "v1,v1,v0\n".repeat(20);
    let (status, _) = http(addr, "POST", "/predict", &big);
    assert_eq!(status, 413);

    // Under the byte cap but over the row cap → rejected after counting.
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\nv1,v2,v0\nv1,v1,v0\n");
    assert_eq!(status, 413);
    assert!(body.contains("2 rows"), "{body}");

    let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn readyz_distinguishes_liveness_from_readiness() {
    let _guard = lock_faults();
    // A schema-carrying model is live and ready.
    let handle = serve_with(ServerConfig::default().with_threads(1));
    let addr = handle.addr();
    assert_eq!(http(addr, "GET", "/healthz", "").0, 200);
    let (status, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ready\n");
    handle.shutdown();

    // A transaction-fitted model has no schema: live but NOT ready.
    use dfp_data::schema::ClassId;
    use dfp_data::transactions::{Item, TransactionSet};
    let ts = TransactionSet::new(
        4,
        2,
        (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    vec![Item(0), Item(1)]
                } else {
                    vec![Item(0), Item(2)]
                }
            })
            .collect(),
        (0..20).map(|i| ClassId(i % 2)).collect(),
    );
    let model =
        PatternClassifier::fit_transactions(&ts, &FrameworkConfig::pat_all()).expect("fit ts");
    let handle = dfp_serve::serve_with_config(
        model,
        "127.0.0.1:0",
        ServerConfig::default().with_threads(1),
    )
    .expect("bind");
    let addr = handle.addr();
    assert_eq!(http(addr, "GET", "/healthz", "").0, 200);
    let (status, body) = http(addr, "GET", "/readyz", "");
    assert_eq!(status, 503);
    assert!(body.contains("no schema"), "{body}");
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Event-loop-forced legs. The tests above flip cores via DFP_SERVE_EVENT_LOOP
// (the CI matrix re-runs the whole suite that way); these pin the readiness
// loop explicitly so its fault handling is exercised even in the default leg.
// Off Linux `with_event_loop(true)` falls back to the threaded core, where
// every invariant asserted here must hold just the same.
// ---------------------------------------------------------------------------

#[test]
fn event_loop_survives_accept_fault() {
    let _guard = lock_faults();
    let handle = serve_with(
        ServerConfig::default()
            .with_threads(1)
            .with_event_loop(true),
    );
    let addr = handle.addr();

    // The reactor evaluates the same `serve.accept` failpoint as the
    // threaded accept loop: the poisoned connection is dropped unanswered,
    // the loop itself keeps running.
    dfp_fault::arm_times("serve.accept", dfp_fault::Action::Err, Some(1));
    assert_eq!(try_http(addr, "GET", "/healthz", ""), None);

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    handle.shutdown();
}

#[test]
fn event_loop_worker_panic_closes_without_answer_and_heals() {
    let _guard = lock_faults();
    let handle = serve_with(
        ServerConfig::default()
            .with_threads(2)
            .with_event_loop(true),
    );
    let addr = handle.addr();

    // A worker panic unwinds past the completion guard, which reports the
    // connection as unanswerable; the reactor closes it without inventing a
    // response and without taking the loop down.
    dfp_fault::arm_times("serve.worker", dfp_fault::Action::Panic, Some(2));
    for _ in 0..2 {
        assert_eq!(try_http(addr, "POST", "/predict", "v1,v1,v0\n"), None);
    }
    dfp_fault::disarm("serve.worker");

    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    assert_eq!(body, "c0\n");

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, metrics) = http(addr, "GET", "/metrics", "");
        if counter(&metrics, "dfp_serve_worker_respawns_total") >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "respawns not surfaced:\n{metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn shed_path_survives_clients_that_reset_instead_of_reading() {
    let _guard = lock_faults();
    let cfg = ServerConfig::default()
        .with_threads(1)
        .with_queue_depth(1)
        .with_request_deadline(Duration::from_secs(30))
        .with_event_loop(true);
    let handle = serve_with(cfg);
    let addr = handle.addr();

    dfp_fault::arm_times("serve.worker", dfp_fault::Action::Sleep(700), Some(1));
    let slow = std::thread::spawn(move || http(addr, "POST", "/predict", "v1,v1,v0\n"));
    std::thread::sleep(Duration::from_millis(200));

    // Overflow clients send a request and hang up immediately, never reading
    // the shed 503. Closing with the response still in flight makes the
    // kernel answer the server's write with EPIPE/ECONNRESET — the loop must
    // swallow that per-connection, not die or wedge on it.
    for _ in 0..3 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\nv1,v2,v0\n")
            .expect("send");
        drop(s);
    }

    // The in-flight request is unharmed and the server keeps serving.
    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200, "{body}");
    let (status, _) = http(addr, "POST", "/predict", "v1,v2,v0\n");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn event_loop_shutdown_mid_burst_never_yields_spurious_500() {
    let _guard = lock_faults();
    // Mirrors `shutdown_never_yields_spurious_500` (batching.rs) with the
    // readiness loop pinned on: racing clients either get a complete,
    // correct 200 or see the connection refused/closed — never a 500 or a
    // truncated body invented by the drain path.
    for round in 0..3 {
        let cfg = ServerConfig::default()
            .with_threads(4)
            .with_batch_max(8)
            .with_batch_wait(Duration::from_millis(20))
            .with_event_loop(true);
        let handle = serve_with(cfg);
        let addr = handle.addr();

        let clients: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || try_http(addr, "POST", "/predict", "v1,v1,v0\n")))
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        handle.shutdown();

        for c in clients {
            if let Some((status, body)) = c.join().expect("client thread") {
                assert_ne!(status, 500, "round {round}: spurious 500: {body}");
                if status == 200 {
                    assert_eq!(body, "c0\n", "round {round}: truncated answer");
                }
            }
        }
    }
}

#[test]
fn dropping_the_handle_shuts_down_like_shutdown() {
    let _guard = lock_faults();
    let addr;
    {
        let handle = serve_with(ServerConfig::default().with_threads(1));
        addr = handle.addr();
        assert_eq!(http(addr, "GET", "/healthz", "").0, 200);
        // No explicit shutdown — Drop must do the same work.
    }
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "listener still accepting after drop");
}
