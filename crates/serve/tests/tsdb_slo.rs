//! End-to-end temporal observability: a live server with a fast-ticking
//! TSDB collector must fire a burn-rate alert on `GET /alerts` within one
//! collection interval of an error burst, resolve it after recovery,
//! round-trip every JSON surface through [`dfp_obs::json`], render the
//! `/dashboard` HTML with inline sparklines, and pass `promcheck` on
//! `/metrics` — exemplars included.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_obs::json::Value;
use dfp_obs::slo::{BurnRule, SloSpec};
use dfp_serve::{ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Failpoint state is process-global; every test here serialises on this
/// (an armed `serve.predict` would 500 any concurrently-running test).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    guard
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// A tight availability SLO over the serve counters: objective 0.9 and a
/// 300 ms/900 ms rule pair at factor 1.5, so an all-errors burst (burn
/// 10.0) fires on the very next 40 ms tick and a clean short window
/// resolves it.
fn tight_slo() -> SloSpec {
    SloSpec::new(
        "predict-availability",
        0.9,
        "dfp_serve_requests_total",
        "dfp_serve_server_errors_total",
    )
    .with_rules(vec![BurnRule {
        severity: "page".to_string(),
        short_ms: 300,
        long_ms: 900,
        factor: 1.5,
    }])
}

fn obs_config() -> ServerConfig {
    ServerConfig::default()
        .with_threads(2)
        .with_tsdb_interval(Duration::from_millis(40))
        .with_slos(vec![tight_slo()])
        .with_tail_capacity(16)
}

fn serve_with(cfg: ServerConfig) -> ServerHandle {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    dfp_serve::serve_with_config(fitted, "127.0.0.1:0", cfg).expect("bind")
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn predict_ok(addr: SocketAddr) {
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200, "healthy predict must succeed: {body}");
}

/// Polls `GET /alerts` until `pred` holds, failing after `deadline`.
fn poll_alerts(
    addr: SocketAddr,
    deadline: Duration,
    mut each: impl FnMut(),
    pred: impl Fn(&Value) -> bool,
    what: &str,
) -> Duration {
    let started = Instant::now();
    loop {
        each();
        let (status, body) = http(addr, "GET", "/alerts", "");
        assert_eq!(status, 200, "/alerts must answer: {body}");
        let doc = dfp_obs::json::parse(&body).expect("/alerts must be valid JSON");
        if pred(&doc) {
            return started.elapsed();
        }
        assert!(
            started.elapsed() < deadline,
            "timed out waiting for {what}; last /alerts: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn firing_count(doc: &Value) -> i128 {
    match doc.get("firing") {
        Some(Value::Int(n)) => *n,
        other => panic!("/alerts must carry an integer 'firing', got {other:?}"),
    }
}

/// The acceptance-criteria lifecycle: an error burst fires the alert
/// within roughly one collection interval, and recovery traffic resolves
/// it once the short window is clean.
#[test]
fn alert_fires_within_one_interval_and_resolves_after_recovery() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config());
    let addr = handle.addr();
    assert!(handle.obs().is_some(), "obs stack must be on by default");

    // A little healthy traffic so the counters exist before the burst.
    for _ in 0..3 {
        predict_ok(addr);
    }

    // Burst: every predict fails until the budget drains, so the error
    // ratio in both burn windows saturates at ~1.0 → burn ~10 > 1.5.
    dfp_fault::arm_times("serve.predict", dfp_fault::Action::Err, Some(30));
    for _ in 0..30 {
        let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
        assert_eq!(status, 500, "armed failpoint must 500");
    }
    let to_fire = poll_alerts(
        addr,
        Duration::from_secs(3),
        || {},
        |doc| firing_count(doc) >= 1,
        "the burn-rate alert to fire",
    );
    // "Within one interval" plus scheduling slack — nowhere near the
    // multi-second horizon a naive evaluation cadence would need.
    assert!(
        to_fire < Duration::from_secs(2),
        "alert took {to_fire:?} to fire on a 40 ms interval"
    );

    // The alert view carries the rule identity while firing.
    let (_, body) = http(addr, "GET", "/alerts", "");
    assert!(body.contains("predict-availability"), "alerts: {body}");
    assert!(body.contains("\"severity\":\"page\""), "alerts: {body}");

    // Recovery: clean traffic until the 300 ms short window holds no
    // errors, at which point the both-windows rule must stop firing.
    let to_resolve = poll_alerts(
        addr,
        Duration::from_secs(5),
        || predict_ok(addr),
        |doc| firing_count(doc) == 0,
        "the alert to resolve",
    );
    assert!(
        to_resolve < Duration::from_secs(5),
        "alert took {to_resolve:?} to resolve"
    );
    handle.shutdown();
}

/// `/metrics/history` and `/debug/traces` are valid JSON documents with
/// the promised shape, and history carries the serve families.
#[test]
fn history_and_traces_round_trip_as_json() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config());
    let addr = handle.addr();
    for _ in 0..4 {
        predict_ok(addr);
    }
    // Let a couple of 40 ms ticks land so the rings hold ≥ 2 points.
    std::thread::sleep(Duration::from_millis(150));

    let (status, body) = http(addr, "GET", "/metrics/history", "");
    assert_eq!(status, 200);
    let doc = dfp_obs::json::parse(&body).expect("/metrics/history must be valid JSON");
    assert!(matches!(doc.get("now_ms"), Some(Value::Int(n)) if *n > 0));
    assert!(matches!(doc.get("interval_ms"), Some(Value::Int(40))));
    let Some(Value::Arr(series)) = doc.get("series") else {
        panic!("history must carry a series array: {body}");
    };
    assert!(
        series.iter().any(|s| matches!(
            s.get("name"),
            Some(Value::Str(n)) if n == "dfp_serve_requests_total"
        )),
        "history must include the serve request counter"
    );

    // Tail capture is on but nothing was slow or failed: the document is
    // still well-formed, with an empty reservoir.
    let (status, body) = http(addr, "GET", "/debug/traces", "");
    assert_eq!(status, 200);
    let doc = dfp_obs::json::parse(&body).expect("/debug/traces must be valid JSON");
    assert!(matches!(doc.get("enabled"), Some(Value::Bool(true))));
    assert!(matches!(doc.get("traces"), Some(Value::Arr(_))));
    handle.shutdown();
}

/// 5xx responses are kept by the tail sampler with their request id and
/// stage breakdown, and surface on `/debug/traces`.
#[test]
fn tail_sampler_keeps_5xx_requests() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config());
    let addr = handle.addr();
    predict_ok(addr);

    dfp_fault::arm_times("serve.predict", dfp_fault::Action::Err, Some(3));
    for _ in 0..3 {
        let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
        assert_eq!(status, 500);
    }

    let (status, body) = http(addr, "GET", "/debug/traces", "");
    assert_eq!(status, 200);
    let doc = dfp_obs::json::parse(&body).expect("valid JSON");
    let Some(Value::Arr(traces)) = doc.get("traces") else {
        panic!("traces array missing: {body}");
    };
    assert!(traces.len() >= 3, "all three 5xx must be kept: {body}");
    for t in traces {
        assert!(
            matches!(t.get("reason"), Some(Value::Str(r)) if r == "5xx"),
            "kept for the 5xx reason: {body}"
        );
        assert!(
            matches!(t.get("request_id"), Some(Value::Str(rid)) if !rid.is_empty()),
            "every kept trace is tagged with its request id"
        );
        assert!(matches!(t.get("status"), Some(Value::Int(500))));
    }
    handle.shutdown();
}

/// The dashboard is one self-contained HTML page with inline-SVG
/// sparklines and the alert table.
#[test]
fn dashboard_renders_selfcontained_html() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config());
    let addr = handle.addr();
    for _ in 0..3 {
        predict_ok(addr);
    }
    std::thread::sleep(Duration::from_millis(120));

    let (status, body) = http(addr, "GET", "/dashboard", "");
    assert_eq!(status, 200);
    assert!(body.contains("<!DOCTYPE html>"), "dashboard is HTML");
    assert!(body.contains("<svg"), "dashboard draws inline sparklines");
    assert!(
        body.contains("dfp_serve_requests_total"),
        "dashboard charts the serve families"
    );
    assert!(
        body.contains("predict-availability"),
        "dashboard lists the configured SLOs"
    );
    assert!(
        !body.contains("src=\"http") && !body.contains("href=\"http"),
        "dashboard must not reference external assets"
    );
    handle.shutdown();
}

/// `/metrics` stays promcheck-clean with the new scrape families and at
/// least one exemplar once predicts have flowed.
#[test]
fn metrics_scrape_families_and_exemplars_pass_promcheck() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config());
    let addr = handle.addr();
    for _ in 0..5 {
        predict_ok(addr);
    }

    // The first scrape records its own latency/size; the second sees it.
    let _ = http(addr, "GET", "/metrics", "");
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("dfp_scrape_seconds_bucket"), "scrape latency");
    assert!(body.contains("dfp_scrape_bytes"), "scrape payload size");
    assert!(body.contains("dfp_slo_burn_rate"), "burn-rate gauges");
    assert!(
        body.contains("request_id=\""),
        "predict histogram must carry an exemplar"
    );
    let stats = match dfp_obs::promcheck::check(&body) {
        Ok(stats) => stats,
        Err(errors) => panic!("promcheck violations: {errors:?}"),
    };
    assert!(stats.exemplars >= 1, "promcheck must count the exemplar");
    handle.shutdown();
}

/// `DFP_TSDB=0` (here: `with_tsdb(false)`) removes the whole temporal
/// surface: no collector, and the four routes answer 404.
#[test]
fn disabled_tsdb_removes_temporal_routes() {
    let _guard = lock_faults();
    let handle = serve_with(obs_config().with_tsdb(false));
    let addr = handle.addr();
    assert!(handle.obs().is_none());
    predict_ok(addr);
    for path in ["/alerts", "/metrics/history", "/debug/traces", "/dashboard"] {
        let (status, body) = http(addr, "GET", path, "");
        assert_eq!(status, 404, "{path} must 404 when the TSDB is off");
        assert!(body.contains("tsdb disabled"), "{path}: {body}");
    }
    // The classic surfaces are untouched.
    let (status, _) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    handle.shutdown();
}
