//! Integration tests for the epoll readiness loop: connection scaling,
//! slowloris defense, keep-alive reuse, the connection ceiling, and
//! byte-level equivalence against the threaded core over real sockets.
//!
//! Linux-only: these tests force `event_loop` on, and the readiness loop
//! exists only where epoll does (elsewhere the server falls back to the
//! threaded core, which closes after one exchange by design).

#![cfg(target_os = "linux")]

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::{ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn fitted() -> PatternClassifier {
    PatternClassifier::fit(&confusable(), &FrameworkConfig::pat_fs()).expect("fit")
}

fn serve_event(cfg: ServerConfig) -> ServerHandle {
    dfp_serve::serve_with_config(fitted(), "127.0.0.1:0", cfg.with_event_loop(true)).expect("bind")
}

/// Renders a request that keeps the connection alive unless `close`.
fn request(method: &str, path: &str, rid: &str, close: bool, body: &str) -> Vec<u8> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nX-Request-Id: {rid}\r\n{connection}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads exactly one response off a (possibly keep-alive) connection:
/// status, raw head, body bytes per `Content-Length`.
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "EOF before a complete response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("content-length")
        .parse()
        .expect("numeric length");
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF mid response body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (status, head, body)
}

/// One-shot exchange on a fresh connection, reading to EOF.
fn http_close(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

fn gauge(metrics: &str, name: &str) -> i64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric sample")
}

/// The tentpole claim: a thousand idle keep-alive connections occupy slab
/// entries, not workers. With only two workers the server keeps answering
/// instantly, and the `dfp_serve_open_connections` gauge counts the herd.
#[test]
fn thousand_idle_keep_alive_connections_hold_zero_workers() {
    let handle = serve_event(ServerConfig::default().with_threads(2).with_max_conns(2048));
    let addr = handle.addr();

    let mut herd = Vec::with_capacity(1000);
    for i in 0..1000 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&request("GET", "/healthz", &format!("herd-{i}"), false, ""))
            .expect("send");
        let (status, head, body) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
        assert!(
            head.contains("Connection: keep-alive"),
            "keep-alive expected:\n{head}"
        );
        herd.push(stream); // parked open: costs a slab entry, not a thread
    }

    // With 1000 connections parked, two workers still answer immediately.
    let started = Instant::now();
    let (status, body) = http_close(
        addr,
        &request("POST", "/predict", "busy-check", true, "v1,v1,v0\n"),
    );
    assert_eq!(status, 200, "predict failed: {body}");
    assert!(body.ends_with("c0\n"), "wrong label: {body}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "predict stalled behind idle connections"
    );

    let (status, metrics) = http_close(addr, &request("GET", "/metrics", "m", true, ""));
    assert_eq!(status, 200);
    let metrics = metrics.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert!(
        gauge(metrics, "dfp_serve_open_connections") >= 1000,
        "gauge undercounts the herd:\n{}",
        metrics
            .lines()
            .filter(|l| l.contains("open_connections"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(gauge(metrics, "dfp_serve_conns_accepted_total") >= 1001);

    drop(herd);
    handle.shutdown();
}

/// Slowloris defense: a connection that trickles header bytes but never
/// completes a request gets `408` at the head timeout — from the sweep,
/// without a worker ever being dispatched.
#[test]
fn slowloris_trickle_gets_408_without_a_worker() {
    let handle = serve_event(
        ServerConfig::default()
            .with_threads(2)
            .with_head_timeout(Duration::from_millis(300)),
    );
    let addr = handle.addr();

    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Trickle a few bytes, each well under the deadline, never finishing.
    // Writes are best-effort: on a heavily loaded machine this thread can
    // be descheduled past the head timeout, and a late chunk then hits the
    // already-closed socket — the 408 below is still the right outcome.
    for chunk in ["GET /hea", "lthz HT", "TP/1.1\r\nHost:"] {
        let _ = slow.write_all(chunk.as_bytes());
        std::thread::sleep(Duration::from_millis(40));
    }

    // The server stays fully responsive while the slow client dangles.
    let (status, _) = http_close(addr, &request("GET", "/healthz", "alive", true, ""));
    assert_eq!(status, 200);

    let mut response = String::new();
    slow.read_to_string(&mut response).expect("read 408");
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "expected 408, got: {response}"
    );
    assert!(response.contains("request header timeout"));

    let (_, metrics) = http_close(addr, &request("GET", "/metrics", "m", true, ""));
    let metrics = metrics.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert!(gauge(metrics, "dfp_serve_head_timeouts_total") >= 1);

    handle.shutdown();
}

/// A connection that connects and never speaks is closed silently at the
/// head timeout — no 408 bytes for a peer that sent nothing, mirroring the
/// blocking core's silent close on read timeout.
#[test]
fn mute_connection_is_closed_silently() {
    let handle = serve_event(
        ServerConfig::default()
            .with_threads(2)
            .with_head_timeout(Duration::from_millis(200)),
    );
    let mut mute = TcpStream::connect(handle.addr()).expect("connect");
    mute.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut out = String::new();
    mute.read_to_string(&mut out).expect("read EOF");
    assert_eq!(out, "", "mute connection should close without bytes");
    handle.shutdown();
}

/// Pipelined keep-alive over a real socket: two requests in one write,
/// two responses in order on the same connection, then EOF after the
/// explicit `Connection: close`.
#[test]
fn pipelined_pair_over_a_real_socket() {
    let handle = serve_event(ServerConfig::default().with_threads(2));
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut wire = request("POST", "/predict", "pipe-1", false, "v1,v1,v0\n");
    wire.extend_from_slice(&request("GET", "/healthz", "pipe-2", true, ""));
    stream.write_all(&wire).expect("send pipelined pair");

    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, b"c0\n");
    assert!(head.contains("X-Request-Id: pipe-1"), "head: {head}");
    assert!(head.contains("Connection: keep-alive"), "head: {head}");

    let (status, head, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
    assert!(head.contains("X-Request-Id: pipe-2"), "head: {head}");
    assert!(head.contains("Connection: close"), "head: {head}");

    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "bytes after Connection: close");
    handle.shutdown();
}

/// The `max_conns` ceiling: connections beyond it get the shed `503` before
/// any read, while established connections keep working.
#[test]
fn connection_ceiling_rejects_with_503() {
    let handle = serve_event(ServerConfig::default().with_threads(2).with_max_conns(4));
    let addr = handle.addr();

    let mut parked = Vec::new();
    for i in 0..4 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&request("GET", "/healthz", &format!("park-{i}"), false, ""))
            .expect("send");
        let (status, _, _) = read_response(&mut stream);
        assert_eq!(status, 200);
        parked.push(stream);
    }

    let mut over = TcpStream::connect(addr).expect("connect over limit");
    over.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut response = String::new();
    over.read_to_string(&mut response).expect("read 503");
    assert!(
        response.starts_with("HTTP/1.1 503 "),
        "expected 503 at the ceiling, got: {response}"
    );
    assert!(response.contains("Retry-After: 1"));

    // Established connections are unaffected.
    let first = &mut parked[0];
    first
        .write_all(&request("GET", "/healthz", "still-alive", false, ""))
        .expect("send on parked conn");
    let (status, _, body) = read_response(first);
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");

    // Freeing a slot readmits new connections.
    drop(parked);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http_close(addr, &request("GET", "/healthz", "readmit", true, ""));
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed after close");
        std::thread::sleep(Duration::from_millis(25));
    }

    let (_, metrics) = http_close(addr, &request("GET", "/metrics", "m", true, ""));
    let metrics = metrics.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    assert!(gauge(metrics, "dfp_serve_conn_limit_rejected_total") >= 1);
    handle.shutdown();
}

/// Live-wire equivalence: the same requests against an event-loop server
/// and a threaded server produce byte-identical responses (the generated
/// request id on the malformed-request path is the one masked field).
#[test]
fn event_and_threaded_cores_answer_byte_identically() {
    let event = serve_event(ServerConfig::default().with_threads(2));
    let threaded = dfp_serve::serve_with_config(
        fitted(),
        "127.0.0.1:0",
        ServerConfig::default()
            .with_threads(2)
            .with_event_loop(false),
    )
    .expect("bind threaded");

    let cases: Vec<Vec<u8>> = vec![
        request("GET", "/healthz", "eq-hz", true, ""),
        request("POST", "/predict", "eq-pr", true, "v1,v1,v0\nv1,v2,v1\n"),
        request("POST", "/predict", "eq-bad", true, "nope,v1,v0\n"),
        request("GET", "/no-such-route", "eq-404", true, ""),
        b"NOT-HTTP\r\n\r\n".to_vec(),
    ];
    for raw in &cases {
        let (_, from_event) = http_close(event.addr(), raw);
        let (_, from_threaded) = http_close(threaded.addr(), raw);
        let mask = |s: &str| {
            s.lines()
                .map(|l| {
                    if l.starts_with("X-Request-Id: ") && !l.contains("eq-") {
                        "X-Request-Id: <generated>"
                    } else {
                        l
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            mask(&from_event),
            mask(&from_threaded),
            "cores diverged on: {}",
            String::from_utf8_lossy(raw)
        );
    }
    event.shutdown();
    threaded.shutdown();
}

/// Shutdown with idle keep-alive connections parked: the handle returns
/// promptly and the parked sockets see EOF, not a hang.
#[test]
fn shutdown_closes_idle_keep_alive_connections() {
    let handle = serve_event(ServerConfig::default().with_threads(2));
    let addr = handle.addr();
    let mut parked = Vec::new();
    for i in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&request("GET", "/healthz", &format!("shut-{i}"), false, ""))
            .expect("send");
        let (status, _, _) = read_response(&mut stream);
        assert_eq!(status, 200);
        parked.push(stream);
    }

    let started = Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown hung on idle connections"
    );
    for mut stream in parked {
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("EOF on shutdown");
        assert!(rest.is_empty(), "unexpected bytes at shutdown");
    }
}
