//! End-to-end serving test: fit → save → load → serve → concurrent clients.
//!
//! Exercises the acceptance path from the serving issue: a loaded artifact
//! served via `dfp-serve` must answer a concurrent burst (≥ 4 client
//! threads) with correct labels and non-zero `/metrics` counters.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// Minimal HTTP/1.1 client: one request, read to EOF (server closes).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn serve_fitted() -> dfp_serve::ServerHandle {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");

    // Round-trip through the artifact format: serve the *loaded* model.
    let path = std::env::temp_dir().join(format!(
        "dfp-serve-test-{}-{:?}.dfpm",
        std::process::id(),
        std::thread::current().id()
    ));
    dfp_model::save(&fitted, &path).expect("save");
    let loaded = dfp_model::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    dfp_serve::serve(loaded, "127.0.0.1:0", 4).expect("bind")
}

#[test]
fn concurrent_burst_predicts_correct_labels() {
    let handle = serve_fitted();
    let addr = handle.addr();

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // 6 client threads × 8 requests, alternating the two planted patterns.
    let clients: Vec<_> = (0..6)
        .map(|c| {
            std::thread::spawn(move || {
                for r in 0..8 {
                    let (csv, expected) = if (c + r) % 2 == 0 {
                        ("v1,v1,v0\nv1,v1,v2\n", "c0\nc0\n")
                    } else {
                        ("v1,v2,v1\nv1,v2,v0\n", "c1\nc1\n")
                    };
                    let (status, body) = http(addr, "POST", "/predict", csv);
                    assert_eq!(status, 200, "predict failed: {body}");
                    assert_eq!(body, expected, "wrong labels from client {c} round {r}");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // 6 × 8 predict requests, 2 rows each, plus healthz — all counted.
    assert_counter_at_least(&metrics, "dfp_serve_requests_total", 49);
    assert_counter_at_least(&metrics, "dfp_serve_predictions_total", 96);
    assert_counter_at_least(&metrics, "dfp_serve_predict_latency_seconds_count", 48);
    assert_counter_at_least(&metrics, "dfp_serve_errors_total", 0);

    handle.shutdown();
}

fn assert_counter_at_least(metrics: &str, name: &str, min: u64) {
    let value: u64 = metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer"));
    assert!(value >= min, "{name} = {value} < {min}");
}

#[test]
fn error_paths_are_client_errors_not_crashes() {
    let handle = serve_fitted();
    let addr = handle.addr();

    // Unknown path.
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // Wrong method on /predict.
    let (status, _) = http(addr, "GET", "/predict", "");
    assert_eq!(status, 405);

    // Unknown categorical value.
    let (status, body) = http(addr, "POST", "/predict", "purple,v1,v0\n");
    assert_eq!(status, 400);
    assert!(body.contains("purple"), "{body}");

    // Wrong column count.
    let (status, _) = http(addr, "POST", "/predict", "v1,v1\n");
    assert_eq!(status, 400);

    // Empty body.
    let (status, _) = http(addr, "POST", "/predict", "\n");
    assert_eq!(status, 400);

    // The server still works after all that.
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    assert_eq!(body, "c0\n");

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_counter_at_least(&metrics, "dfp_serve_errors_total", 4);

    handle.shutdown();
}

#[test]
fn shutdown_joins_cleanly_and_frees_the_port() {
    let handle = serve_fitted();
    let addr = handle.addr();
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    handle.shutdown();
    // After shutdown the port no longer accepts predict traffic.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err();
    assert!(refused, "listener still accepting after shutdown");
}
