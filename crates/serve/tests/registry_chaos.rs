//! Kill-during-swap chaos: SIGKILL the real `dfp-serve` binary at arbitrary
//! points while hot-swaps are in flight (with `registry.*` failpoints
//! widening every window of the swap protocol), then restart it on the same
//! registry root and assert the crash-recovery invariant: `/m/{name}/readyz`
//! reaches 200 and `/m/{name}/predict` answers bit-identically from either
//! the old or the new version — never a torn model, never a predict error.

#![cfg(unix)] // Child::kill is SIGKILL on unix; that's the point of the test.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfp-registry-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; `flip` swaps the labels.
fn confusable(flip: bool) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, mut label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        if flip {
            label = 1 - label;
        }
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn artifact(flip: bool) -> Vec<u8> {
    let model = PatternClassifier::fit(&confusable(flip), &FrameworkConfig::pat_fs()).unwrap();
    dfp_model::to_bytes(&model)
}

/// A running `dfp-serve --registry` child plus its bound address.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns the real binary against `root`, with optional `DFP_FAILPOINTS`,
    /// and parses the bound address off its startup banner.
    fn spawn(root: &Path, failpoints: Option<&str>) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dfp-serve"));
        cmd.args([
            "--registry",
            root.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        match failpoints {
            Some(spec) => cmd.env("DFP_FAILPOINTS", spec),
            None => cmd.env_remove("DFP_FAILPOINTS"),
        };
        let mut child = cmd.spawn().expect("spawn dfp-serve");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read banner");
            if let Some(rest) = line.strip_prefix("dfp-serve listening on ") {
                addr = rest.split_whitespace().next().map(str::to_string);
                break;
            }
        }
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server {
            child,
            addr: addr.expect("startup banner with address"),
        }
    }

    /// SIGKILL — no shutdown handler runs, exactly like a crash.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One raw HTTP exchange; `None` when the connection fails (server down or
/// killed mid-response).
fn http(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).ok()?;
    stream.write_all(body).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())?;
    Some((status, payload))
}

/// Polls `/m/m/readyz` until 200 or the deadline; returns the body.
fn await_ready(addr: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some((200, body)) = http(addr, "GET", "/m/m/readyz", &[], b"") {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "server at {addr} never became ready"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_swap_always_restarts_clean() {
    let root = scratch("kill");
    std::fs::create_dir_all(&root).unwrap();
    let old = artifact(false); // answers c0
    let new = artifact(true); // answers c1

    // Seed version 1 through a clean server run.
    {
        let mut server = Server::spawn(&root, None);
        let (status, body) = http(
            &server.addr,
            "PUT",
            "/m/m",
            &[("X-Probe-Row", "v1,v1,v0")],
            &old,
        )
        .expect("seed upload");
        assert_eq!(status, 200, "{body}");
        server.kill();
    }

    // Each round widens a different window of the swap protocol with a
    // failpoint, starts a swap, and SIGKILLs the server inside it. The
    // invariant after every restart: readyz 200, and the prediction is
    // bit-identically the old or the new model's answer.
    let rounds: &[(Option<&str>, u64)] = &[
        (None, 0),
        (None, 3),
        (Some("registry.write=sleep:30"), 10),
        (Some("registry.rename=sleep:30"), 10),
        (Some("registry.validate=sleep:40"), 20),
        (Some("registry.drain=sleep:60"), 30),
    ];
    for (round, (failpoints, kill_after_ms)) in rounds.iter().enumerate() {
        let mut server = Server::spawn(&root, *failpoints);
        await_ready(&server.addr);

        // Alternate the upload so every round really changes the artifact.
        let upload = if round % 2 == 0 { &new } else { &old };
        let swapper = {
            let addr = server.addr.clone();
            let upload = upload.clone();
            std::thread::spawn(move || {
                // Outcome intentionally ignored: the kill may land anywhere
                // in this request.
                let _ = http(&addr, "PUT", "/m/m", &[], &upload);
            })
        };
        std::thread::sleep(Duration::from_millis(*kill_after_ms));
        server.kill();
        let _ = swapper.join();

        // Restart on the same root (no failpoints: recovery must not need
        // them) and verify the invariant.
        let mut server = Server::spawn(&root, None);
        let ready = await_ready(&server.addr);
        assert!(ready.starts_with("ready"), "round {round}: {ready}");
        let (status, answer) = http(&server.addr, "POST", "/m/m/predict", &[], b"v1,v1,v0\n")
            .expect("predict after restart");
        assert_eq!(status, 200, "round {round}: {answer}");
        assert!(
            answer == "c0\n" || answer == "c1\n",
            "round {round}: torn or wrong answer {answer:?}"
        );
        server.kill();
    }

    // After all that violence the registry still swaps cleanly end to end.
    let mut server = Server::spawn(&root, None);
    await_ready(&server.addr);
    let (status, body) = http(&server.addr, "PUT", "/m/m", &[], &new).expect("final swap");
    assert_eq!(status, 200, "{body}");
    let (status, answer) =
        http(&server.addr, "POST", "/m/m/predict", &[], b"v1,v1,v0\n").expect("final predict");
    assert_eq!((status, answer.as_str()), (200, "c1\n"));
    server.kill();
    std::fs::remove_dir_all(&root).ok();
}
