//! Multi-model registry serving: `/m/{name}/…` routing, the `PUT /m/{name}`
//! admin hot-swap (health-gated, 409 under contention), and per-model
//! metrics — all through real HTTP against a bound server.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_registry::{ModelRegistry, RegistryConfig};
use dfp_serve::client::{Client, ClientError, RetryPolicy};
use dfp_serve::ServerConfig;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint state is process-global; every test that arms one serialises.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    guard
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dfp-serve-registry-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise. `flip` swaps
/// the labels so the two fitted models answer differently.
fn confusable(flip: bool) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, mut label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        if flip {
            label = 1 - label;
        }
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn fit(flip: bool) -> PatternClassifier {
    PatternClassifier::fit(&confusable(flip), &FrameworkConfig::pat_fs()).expect("fit")
}

fn open_registry(root: &PathBuf) -> Arc<ModelRegistry> {
    Arc::new(
        ModelRegistry::open_with_validator(
            RegistryConfig::new(root),
            Some(dfp_serve::registry_validator()),
        )
        .expect("open registry"),
    )
}

fn one_shot_client(addr: std::net::SocketAddr) -> Client {
    Client::with_policy(
        addr.to_string(),
        RetryPolicy {
            retries: 0,
            base_backoff: Duration::from_millis(1),
            timeout: Duration::from_secs(10),
        },
    )
}

#[test]
fn routes_swap_and_per_model_metrics_end_to_end() {
    let _g = lock_faults();
    let root = scratch("e2e");
    let registry = open_registry(&root);
    registry
        .publish_model("iris", &fit(false), Some("v1,v1,v0"))
        .unwrap();

    let handle = dfp_serve::serve_registry_with_config(
        None,
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_threads(2),
    )
    .expect("bind");
    let mut client = one_shot_client(handle.addr());

    // Per-model readiness and routing.
    let r = client.get("/m/iris/readyz").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("version 1"), "{}", r.text());
    let r = client.get("/m/ghost/readyz").unwrap();
    assert_eq!(r.status, 404);

    // Root routes in registry-only mode.
    let r = client.get("/readyz").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("iris"), "{}", r.text());
    let r = client.post("/predict", "text/csv", b"v1,v1,v0\n").unwrap();
    assert_eq!(r.status, 404, "no default model behind /predict");

    let r = client
        .post("/m/iris/predict", "text/csv", b"v1,v1,v0\n")
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text(), "c0\n");

    // Hot-swap to the flipped model through the admin endpoint.
    let flipped = dfp_model::to_bytes(&fit(true));
    let r = client
        .put(
            "/m/iris",
            "application/octet-stream",
            &[("X-Probe-Row", "v1,v1,v0")],
            &flipped,
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("version 2"), "{}", r.text());

    let r = client
        .post("/m/iris/predict", "text/csv", b"v1,v1,v0\n")
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text(), "c1\n", "swapped model must answer");
    let r = client.get("/m/iris/readyz").unwrap();
    assert!(r.text().contains("version 2"), "{}", r.text());

    // Corrupt upload: rejected by the CRC pre-check, registry untouched.
    let mut torn = dfp_model::to_bytes(&fit(false));
    torn.truncate(torn.len() / 2);
    let r = client
        .put("/m/iris", "application/octet-stream", &[], &torn)
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    let r = client.get("/m/iris/readyz").unwrap();
    assert!(r.text().contains("version 2"), "{}", r.text());

    // Per-model metrics ride the same /metrics exposition.
    let metrics = client.get("/metrics").unwrap().text();
    for needle in [
        "dfp_registry_swaps_total{model=\"iris\"} 2",
        "dfp_registry_requests_total{model=\"iris\"}",
        "dfp_registry_current_version{model=\"iris\"} 2",
        "dfp_registry_predict_latency_seconds_bucket",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    handle.shutdown();
}

#[test]
fn default_model_and_registry_serve_side_by_side() {
    let _g = lock_faults();
    let root = scratch("both");
    let registry = open_registry(&root);
    registry.publish_model("flipped", &fit(true), None).unwrap();

    let handle = dfp_serve::serve_registry_with_config(
        Some(fit(false)),
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_threads(2),
    )
    .expect("bind");
    let mut client = one_shot_client(handle.addr());

    let r = client.post("/predict", "text/csv", b"v1,v1,v0\n").unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "c0\n"));
    let r = client
        .post("/m/flipped/predict", "text/csv", b"v1,v1,v0\n")
        .unwrap();
    assert_eq!((r.status, r.text().as_str()), (200, "c1\n"));
    let r = client.get("/readyz").unwrap();
    assert_eq!(r.status, 200);

    handle.shutdown();
}

#[test]
fn concurrent_swap_answers_409_with_retry_after_hint() {
    let _g = lock_faults();
    let root = scratch("busy");
    let registry = open_registry(&root);
    registry.publish_model("iris", &fit(false), None).unwrap();

    let handle = dfp_serve::serve_registry_with_config(
        None,
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_threads(2),
    )
    .expect("bind");

    // Stall a direct swap inside canary validation (it holds the per-model
    // swap lock; drain is backgrounded and no longer does) while the admin
    // endpoint gets a competing upload.
    dfp_fault::arm_times("registry.validate", dfp_fault::Action::Sleep(500), Some(1));
    let bg = {
        let registry = Arc::clone(&registry);
        let bytes = dfp_model::to_bytes(&fit(true));
        std::thread::spawn(move || registry.publish_bytes("iris", &bytes, None))
    };
    std::thread::sleep(Duration::from_millis(120));

    let mut client = one_shot_client(handle.addr());
    let bytes = dfp_model::to_bytes(&fit(false));
    match client.put("/m/iris", "application/octet-stream", &[], &bytes) {
        Err(ClientError::ServerError(r)) => {
            assert_eq!(r.status, 409, "{}", r.text());
            assert_eq!(
                r.retry_after,
                Some(Duration::from_secs(1)),
                "409 must carry the Retry-After hint the client backoff uses"
            );
        }
        other => panic!("expected 409 ServerError, got {other:?}"),
    }
    bg.join().unwrap().unwrap();
    dfp_fault::disarm_all();

    // With the lock free, a retrying client succeeds.
    let mut retrying = Client::with_policy(
        handle.addr().to_string(),
        RetryPolicy {
            retries: 3,
            base_backoff: Duration::from_millis(10),
            timeout: Duration::from_secs(10),
        },
    );
    let r = retrying
        .put("/m/iris", "application/octet-stream", &[], &bytes)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    handle.shutdown();
}

#[test]
fn admin_swap_requires_token_when_configured() {
    let _g = lock_faults();
    let root = scratch("token");
    let registry = open_registry(&root);
    registry
        .publish_model("iris", &fit(false), Some("v1,v1,v0"))
        .unwrap();

    let handle = dfp_serve::serve_registry_with_config(
        None,
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default()
            .with_threads(2)
            .with_admin_token("s3cret"),
    )
    .expect("bind");
    let mut client = one_shot_client(handle.addr());
    let bytes = dfp_model::to_bytes(&fit(true));

    // Missing or wrong token: refused before the registry is touched.
    for headers in [&[][..], &[("X-Admin-Token", "wrong")][..]] {
        let r = client
            .put("/m/iris", "application/octet-stream", headers, &bytes)
            .unwrap();
        assert_eq!(r.status, 401, "{}", r.text());
    }
    let r = client.get("/m/iris/readyz").unwrap();
    assert!(r.text().contains("version 1"), "{}", r.text());

    // The data plane stays open without the token.
    let r = client
        .post("/m/iris/predict", "text/csv", b"v1,v1,v0\n")
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    // The right token swaps.
    let r = client
        .put(
            "/m/iris",
            "application/octet-stream",
            &[("X-Admin-Token", "s3cret")],
            &bytes,
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let r = client.get("/m/iris/readyz").unwrap();
    assert!(r.text().contains("version 2"), "{}", r.text());

    handle.shutdown();
}

#[test]
fn not_ready_model_answers_503_on_predict() {
    let _g = lock_faults();
    let root = scratch("notready");
    // A model directory with only a corrupt artifact: recovery quarantines
    // it and the slot stays registered but empty.
    fs::create_dir_all(root.join("bad")).unwrap();
    fs::write(root.join("bad").join("000001.dfpm"), b"DFPMjunk").unwrap();
    let registry = open_registry(&root);

    let handle = dfp_serve::serve_registry_with_config(
        None,
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default().with_threads(2),
    )
    .expect("bind");
    let mut client = one_shot_client(handle.addr());

    let r = client.get("/m/bad/readyz").unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    match client.post("/m/bad/predict", "text/csv", b"v1,v1,v0\n") {
        Err(ClientError::ServerError(r)) => assert_eq!(r.status, 503, "{}", r.text()),
        Ok(r) => panic!("expected 503, got {} {}", r.status, r.text()),
        Err(e) => panic!("expected 503 ServerError, got {e}"),
    }
    // Root readiness mirrors it: no model can serve.
    let r = client.get("/readyz").unwrap();
    assert_eq!(r.status, 503, "{}", r.text());

    handle.shutdown();
}
