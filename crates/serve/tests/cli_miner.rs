//! CLI surface tests for `dfpc-score --miner`: valid names are accepted
//! (and exported as `DFP_MINER`), invalid names fail fast with a message
//! listing every valid backend.

use std::process::Command;

fn dfpc_score() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dfpc-score"))
}

#[test]
fn invalid_miner_name_fails_with_the_valid_list() {
    let out = dfpc_score()
        .args(["--miner", "quantum", "--input", "whatever.csv"])
        .output()
        .expect("dfpc-score runs");
    assert!(!out.status.success(), "invalid miner must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown miner 'quantum'"),
        "stderr names the bad value: {stderr}"
    );
    for name in ["closed", "fpgrowth", "eclat", "apriori", "nodeset"] {
        assert!(
            stderr.contains(name),
            "stderr lists valid miner '{name}': {stderr}"
        );
    }
}

#[test]
fn every_valid_miner_name_is_accepted() {
    for name in ["closed", "fpgrowth", "eclat", "apriori", "nodeset"] {
        let out = dfpc_score()
            .args(["--miner", name, "--input", "no-such-rows.csv"])
            .output()
            .expect("dfpc-score runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        // The run still fails (the input file is missing), but it must get
        // *past* flag validation: no miner complaint in the message.
        assert!(
            !stderr.contains("unknown miner"),
            "'{name}' must parse: {stderr}"
        );
        assert!(
            stderr.contains("cannot read"),
            "failure is the missing input, not the flag: {stderr}"
        );
    }
}

#[test]
fn missing_miner_value_fails() {
    let out = dfpc_score()
        .args(["--input", "rows.csv", "--miner"])
        .output()
        .expect("dfpc-score runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown miner ''"), "stderr: {stderr}");
}
