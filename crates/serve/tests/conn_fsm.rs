//! Blocking-equivalence property tests for the connection FSM.
//!
//! The readiness loop parses requests through [`ConnFsm`], fed whatever
//! byte slices the kernel hands it; the threaded core parses through the
//! blocking [`read_request_limited`]. These tests pin the contract that
//! makes the two cores interchangeable:
//!
//! * for every request in the corpus and **any** split of its bytes —
//!   1-byte drip to whole-buffer — the FSM yields exactly the request (or
//!   the error) the blocking reader yields;
//! * responses produced from the FSM-parsed request are byte-identical to
//!   the blocking path's (modulo the `Connection` header when the client
//!   permits reuse, which is the one deliberate difference);
//! * pipelined keep-alive pairs yield both requests in order, with writes
//!   themselves chopped arbitrarily;
//! * EOF mid-body closes silently, exactly like the blocking reader's
//!   `Io` error.
//!
//! The corpus includes heads that straddle the `MAX_HEAD` rejection
//! boundary, where naive incremental limit checks diverge from the
//! blocking reader's 1024-byte-checkpoint behavior.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::http::{read_request_limited, HttpError, Request, MAX_HEAD};
use dfp_serve::{ConnEvent, ConnFsm, ConnState, Engine, ServerConfig, WriteProgress};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Body limit shared by both parsers under test.
fn max_body() -> usize {
    ServerConfig::default().max_body_bytes
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise. Same planted
/// dataset the live-server tests train on.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// One fitted engine for every case: the responses must be deterministic
/// functions of the request (ids come from `X-Request-Id`, which every
/// corpus request sends), so sharing is safe and keeps the suite fast.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let model = PatternClassifier::fit(&confusable(), &FrameworkConfig::pat_fs()).expect("fit");
        Engine::new(Some(model), None, ServerConfig::default().with_batch_max(1))
    })
}

/// Renders a raw request; every corpus entry carries an explicit
/// `X-Request-Id` so both parse paths produce identical response bytes.
fn raw(
    method: &str,
    path: &str,
    version: &str,
    rid: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> Vec<u8> {
    let mut head = format!("{method} {path} {version}\r\nHost: t\r\nX-Request-Id: {rid}\r\n");
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// A request whose head terminator sits at exactly `head_end` bytes —
/// probes the `MAX_HEAD` boundary.
fn padded_head(head_end: usize, rid: &str) -> Vec<u8> {
    let base =
        format!("GET /healthz HTTP/1.1\r\nX-Request-Id: {rid}\r\nConnection: close\r\nx-pad: ");
    let pad = head_end
        .checked_sub(base.len())
        .expect("head_end larger than the fixed prefix");
    let mut out = base.into_bytes();
    out.extend(std::iter::repeat_n(b'a', pad));
    out.extend_from_slice(b"\r\n\r\n");
    out
}

/// The corpus: every request shape the live serve tests exercise, plus
/// malformed and boundary-straddling entries. `\r\n\r\n`-terminated unless
/// deliberately broken.
fn corpus() -> &'static Vec<Vec<u8>> {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        vec![
            raw(
                "GET",
                "/healthz",
                "HTTP/1.1",
                "hz-close",
                &[("Connection", "close")],
                "",
            ),
            raw("GET", "/healthz", "HTTP/1.1", "hz-keep", &[], ""),
            raw("GET", "/healthz", "HTTP/1.0", "hz-10", &[], ""),
            raw(
                "POST",
                "/predict",
                "HTTP/1.1",
                "pr-ok",
                &[("Connection", "close")],
                "v1,v1,v0\nv1,v2,v1\n",
            ),
            raw("POST", "/predict", "HTTP/1.1", "pr-keep", &[], "v1,v2,v0\n"),
            raw("POST", "/predict", "HTTP/1.1", "pr-empty", &[], "\n\n"),
            raw(
                "POST",
                "/predict",
                "HTTP/1.1",
                "pr-bad",
                &[],
                "nope,v1,v0\n",
            ),
            raw(
                "GET",
                "/no-such-route",
                "HTTP/1.1",
                "nf",
                &[("Connection", "close")],
                "",
            ),
            raw("PUT", "/predict", "HTTP/1.1", "method", &[], "v1,v1,v0\n"),
            b"NOT-HTTP\r\n\r\n".to_vec(),
            b"POST /predict HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n".to_vec(),
            // Head terminator past MAX_HEAD but before the blocking
            // reader's next 1024-byte checkpoint: both paths accept it.
            padded_head(MAX_HEAD + 600, "pad-ok"),
            // Terminator past the checkpoint: both paths reject TooLarge.
            padded_head(MAX_HEAD + 1100, "pad-too-big"),
            // No terminator at all, 20k of head bytes: TooLarge.
            {
                let mut v = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
                v.extend(std::iter::repeat_n(b'a', 20_000));
                v
            },
        ]
    })
}

/// What a connection-worth of bytes ultimately produced.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Request(Request),
    Reject(HttpError),
    Closed,
}

/// Feeds `raw` to a fresh FSM in `chunks`-sized slices (cycled; empty means
/// one whole-buffer feed), then EOF if the bytes run out undecided.
/// Returns the FSM (for follow-up write driving), the first decisive
/// event, and how many bytes were delivered when it fired — the caller
/// owns any remainder, exactly like the reactor owns unread socket bytes.
fn drive(raw: &[u8], chunks: &[usize]) -> (ConnFsm, Outcome, usize) {
    let mut fsm = ConnFsm::new(max_body());
    let mut fed = 0;
    let mut turn = 0;
    while fed < raw.len() {
        let step = if chunks.is_empty() {
            raw.len()
        } else {
            chunks[turn % chunks.len()].max(1)
        };
        turn += 1;
        let end = (fed + step).min(raw.len());
        let event = fsm.on_bytes(&raw[fed..end]);
        fed = end;
        match event {
            ConnEvent::Continue => {}
            ConnEvent::Request(r) => return (fsm, Outcome::Request(*r), fed),
            ConnEvent::Reject(e) => return (fsm, Outcome::Reject(e), fed),
            ConnEvent::Close => return (fsm, Outcome::Closed, fed),
        }
    }
    match fsm.on_eof() {
        ConnEvent::Continue | ConnEvent::Close => (fsm, Outcome::Closed, fed),
        ConnEvent::Request(r) => (fsm, Outcome::Request(*r), fed),
        ConnEvent::Reject(e) => (fsm, Outcome::Reject(e), fed),
    }
}

/// The blocking reference parse of the same bytes. `&[u8]`'s `Read` hands
/// out `min(1024, remaining)` per call, which is exactly the chunking the
/// threaded core sees from a fast socket — the canonical behavior the FSM
/// must reproduce under *every* chunking.
fn blocking(rawb: &[u8]) -> Result<Request, HttpError> {
    read_request_limited(&mut &rawb[..], max_body())
}

/// Masks the generated `X-Request-Id` value in a reject response (the
/// reject path mints a fresh id per call; everything else must match).
fn mask_rid(bytes: &[u8]) -> String {
    let s = String::from_utf8_lossy(bytes);
    let mut out = String::with_capacity(s.len());
    for (i, line) in s.split("\r\n").enumerate() {
        if i > 0 {
            out.push_str("\r\n");
        }
        if let Some(rest) = line.strip_prefix("X-Request-Id: ") {
            let _ = rest;
            out.push_str("X-Request-Id: <rid>");
        } else {
            out.push_str(line);
        }
    }
    out
}

/// Drains the FSM's pending response into `wire` in `step`-byte writes.
/// Returns the post-write event (`None` when the connection closed).
fn pump_write(fsm: &mut ConnFsm, wire: &mut Vec<u8>, step: usize) -> Option<ConnEvent> {
    loop {
        let chunk = fsm.writable();
        assert!(!chunk.is_empty(), "writing state with nothing to write");
        let n = step.max(1).min(chunk.len());
        wire.extend_from_slice(&chunk[..n]);
        match fsm.on_wrote(n) {
            WriteProgress::Pending => {}
            WriteProgress::Done => return None,
            WriteProgress::Next(event) => return Some(event),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any chunking of any corpus entry parses to exactly the blocking
    /// reader's result — same request, same error, or same silent close.
    #[test]
    fn fsm_matches_blocking_reader_under_any_split(
        case in 0usize..corpus().len(),
        chunks in prop::collection::vec(1usize..2048, 0..24),
    ) {
        let rawb = &corpus()[case];
        let (_, outcome, _) = drive(rawb, &chunks);
        match blocking(rawb) {
            Ok(request) => prop_assert_eq!(outcome, Outcome::Request(request)),
            Err(HttpError::Io) => prop_assert_eq!(outcome, Outcome::Closed),
            Err(e) => prop_assert_eq!(outcome, Outcome::Reject(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// End-to-end bytes: request in (arbitrarily chunked) → response out is
    /// byte-identical between the cores. When the client allows reuse the
    /// `Connection` header is the one permitted difference.
    #[test]
    fn responses_are_byte_identical_to_the_blocking_path(
        case in 0usize..corpus().len(),
        chunks in prop::collection::vec(1usize..512, 0..16),
    ) {
        let rawb = &corpus()[case];
        let (fsm, outcome, _) = drive(rawb, &chunks);
        let now = Instant::now();
        match (blocking(rawb), outcome) {
            (Ok(request), Outcome::Request(parsed)) => {
                let threaded = engine().respond_to(&request, now, Duration::ZERO, false);
                let keep = fsm.wants_keep_alive();
                let event = engine().respond_to(&parsed, now, Duration::ZERO, keep);
                if keep {
                    let normalized = String::from_utf8_lossy(&event)
                        .replace("Connection: keep-alive", "Connection: close");
                    prop_assert_eq!(normalized.as_bytes(), &threaded[..]);
                } else {
                    prop_assert_eq!(event, threaded);
                }
            }
            (Err(HttpError::Io), Outcome::Closed) => {} // both close silently
            (Err(eb), Outcome::Reject(ef)) => {
                prop_assert_eq!(&eb, &ef);
                let threaded = engine().reject_to(&eb, now).expect("reject bytes");
                let event = engine().reject_to(&ef, now).expect("reject bytes");
                prop_assert_eq!(mask_rid(&event), mask_rid(&threaded));
            }
            (b, f) => prop_assert!(false, "parse paths diverged: blocking={b:?} fsm={f:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two pipelined keep-alive requests on one connection, with both the
    /// reads and the writes chopped arbitrarily: the FSM yields each
    /// request in order and the concatenated wire output is exactly the
    /// two rendered responses.
    #[test]
    fn pipelined_keep_alive_pairs_round_trip(
        read_chunks in prop::collection::vec(1usize..256, 0..12),
        write_step in 1usize..512,
        second_closes in 0u8..2,
    ) {
        let first = raw("POST", "/predict", "HTTP/1.1", "pipe-1", &[], "v1,v1,v0\n");
        let second = if second_closes == 1 {
            raw("GET", "/healthz", "HTTP/1.1", "pipe-2", &[("Connection", "close")], "")
        } else {
            raw("GET", "/healthz", "HTTP/1.1", "pipe-2", &[], "")
        };
        let mut wire_in = first.clone();
        wire_in.extend_from_slice(&second);

        let (mut fsm, outcome, fed) = drive(&wire_in, &read_chunks);
        let want_first = blocking(&first).expect("first parses");
        prop_assert_eq!(outcome, Outcome::Request(want_first));
        prop_assert!(fsm.wants_keep_alive());
        // Any bytes not yet delivered when the first request fired arrive
        // while it is queued — the FSM buffers them for the next exchange.
        if fed < wire_in.len() {
            prop_assert_eq!(fsm.on_bytes(&wire_in[fed..]), ConnEvent::Continue);
        }

        // Answer the first request; the leftover buffered bytes must
        // surface the second request once the write completes.
        let Outcome::Request(parsed_first) = drive(&first, &[]).1 else { unreachable!() };
        let resp_first = engine().respond_to(&parsed_first, Instant::now(), Duration::ZERO, true);
        fsm.respond(resp_first.clone(), true);
        let mut wire_out = Vec::new();
        let event = pump_write(&mut fsm, &mut wire_out, write_step);
        let second_req = match event {
            Some(ConnEvent::Request(r)) => *r,
            other => return Err(proptest::TestCaseError::fail(
                format!("expected pipelined request after write, got {other:?}"),
            )),
        };
        prop_assert_eq!(&second_req, &blocking(&second).expect("second parses"));

        let keep_second = second_closes == 0;
        let resp_second =
            engine().respond_to(&second_req, Instant::now(), Duration::ZERO, keep_second);
        fsm.respond(resp_second.clone(), keep_second);
        let event = pump_write(&mut fsm, &mut wire_out, write_step);
        if keep_second {
            prop_assert_eq!(event, Some(ConnEvent::Continue));
            prop_assert_eq!(fsm.state(), ConnState::KeepAlive);
        } else {
            prop_assert_eq!(event, None);
            prop_assert_eq!(fsm.state(), ConnState::Closed);
        }

        let mut want_wire = resp_first;
        want_wire.extend_from_slice(&resp_second);
        prop_assert_eq!(wire_out, want_wire);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// EOF strictly inside a declared body closes without an answer under
    /// any chunking — the FSM's analog of the blocking reader's `Io`.
    #[test]
    fn mid_body_eof_closes_silently(
        cut_back in 1usize..18,
        chunks in prop::collection::vec(1usize..64, 0..10),
    ) {
        let full = raw("POST", "/predict", "HTTP/1.1", "eof", &[], "v1,v1,v0\nv1,v2,v1\n");
        let cut = full.len() - cut_back.min(17); // body is 18 bytes; keep ≥1 missing
        let truncated = &full[..cut];
        prop_assert_eq!(blocking(truncated), Err(HttpError::Io));
        let (fsm, outcome, _) = drive(truncated, &chunks);
        prop_assert_eq!(outcome, Outcome::Closed);
        prop_assert_eq!(fsm.state(), ConnState::Closed);
    }
}

/// Deterministic backstop: the full corpus under the pathological 1-byte
/// drip, stated plainly so a failure names the entry without proptest
/// indirection.
#[test]
fn one_byte_drip_matches_blocking_for_every_corpus_entry() {
    for (i, rawb) in corpus().iter().enumerate() {
        let (_, outcome, _) = drive(rawb, &[1]);
        let want = match blocking(rawb) {
            Ok(request) => Outcome::Request(request),
            Err(HttpError::Io) => Outcome::Closed,
            Err(e) => Outcome::Reject(e),
        };
        assert_eq!(outcome, want, "corpus entry {i} diverged under 1-byte drip");
    }
}
