//! Batching and caching must be invisible except in speed: concurrent
//! clients against a batching server get answers bit-identical to a
//! sequential, batching-disabled, cache-disabled server, and the batch
//! scheduler honors request deadlines even when fault injection stalls it.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::{ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint state is process-global; every test here serialises on this.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    guard
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn serve_with(cfg: ServerConfig) -> ServerHandle {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).expect("fit");
    dfp_serve::serve_with_config(fitted, "127.0.0.1:0", cfg).expect("bind")
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("{name} missing from:\n{metrics}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer"))
}

/// A mix of payloads: single rows, multi-row bodies, missing values, and
/// deliberate repeats so the transform cache sees hits.
fn payloads() -> Vec<String> {
    let base = [
        "v1,v1,v0\n",
        "v1,v2,v0\n",
        "v1,v1,v1\nv1,v2,v2\n",
        "v1,v2,v1\nv1,v1,v2\nv1,v2,v0\n",
        "?,v1,v0\n",
        "v1,v1,v0\nv1,v1,v0\n",
    ];
    (0..24).map(|i| base[i % base.len()].to_string()).collect()
}

/// Concurrent clients against a batching+caching server must get exactly
/// the answers a sequential, batching-off, cache-off server gives.
#[test]
fn batched_concurrent_answers_match_sequential_serving() {
    let _guard = lock_faults();
    let batched = serve_with(
        ServerConfig::default()
            .with_threads(4)
            .with_batch_max(8)
            .with_batch_wait(Duration::from_millis(2))
            .with_cache(true),
    );
    let plain = serve_with(
        ServerConfig::default()
            .with_threads(1)
            .with_batch_max(1)
            .with_cache(false),
    );

    // Two concurrent waves so repeats arrive after their first sighting
    // was cached.
    let bodies = payloads();
    let mut batched_answers: Vec<(u16, String)> = Vec::new();
    for _wave in 0..2 {
        let threads: Vec<_> = bodies
            .iter()
            .map(|b| {
                let addr = batched.addr();
                let body = b.clone();
                std::thread::spawn(move || http(addr, "POST", "/predict", &body))
            })
            .collect();
        batched_answers.extend(threads.into_iter().map(|t| t.join().expect("client")));
    }

    for (body, (status, answer)) in bodies.iter().cycle().zip(&batched_answers) {
        let (seq_status, seq_answer) = http(plain.addr(), "POST", "/predict", body);
        assert_eq!(*status, seq_status, "status diverged for {body:?}");
        assert_eq!(answer, &seq_answer, "labels diverged for {body:?}");
        assert_eq!(seq_status, 200);
    }

    let (_, metrics) = http(batched.addr(), "GET", "/metrics", "");
    // 48 requests through the scheduler: every one lands in some batch.
    assert!(
        counter(&metrics, "dfp_serve_batches_total") >= 1,
        "{metrics}"
    );
    assert_eq!(
        counter(&metrics, "dfp_serve_batch_size_count"),
        counter(&metrics, "dfp_serve_batches_total"),
        "{metrics}"
    );
    // The second wave repeats every line of the first, so the cache must
    // have answered at least one row.
    assert!(
        counter(&metrics, "dfp_serve_transform_cache_hits_total") >= 1,
        "{metrics}"
    );
    batched.shutdown();
    plain.shutdown();
}

/// A stalled batch scheduler must not hold a request past its deadline:
/// the worker answers `503` on its own clock.
#[test]
fn scheduler_stall_honors_request_deadline() {
    let _guard = lock_faults();
    let handle = serve_with(
        ServerConfig::default()
            .with_threads(1)
            .with_batch_max(8)
            .with_request_deadline(Duration::from_millis(150)),
    );
    let addr = handle.addr();

    // The dispatch-path failpoint sleeps well past the request budget.
    dfp_fault::arm_times("serve.batch", dfp_fault::Action::Sleep(500), Some(1));
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("deadline"), "{body}");

    // Once the stall clears, the same request succeeds. The injected sleep
    // holds the batcher thread for 500ms from dispatch; wait it out so the
    // follow-up request gets a fresh batch within its own budget.
    std::thread::sleep(Duration::from_millis(600));
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "c0\n");
    handle.shutdown();
}

/// An abandoned batch (fault-injected dispatch error) is a `500` to the
/// waiting client, never a hang, and the server keeps serving.
#[test]
fn abandoned_batch_is_a_500_not_a_hang() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(1).with_batch_max(8));
    let addr = handle.addr();

    dfp_fault::arm_times("serve.batch", dfp_fault::Action::Err, Some(1));
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("batch scheduler"), "{body}");

    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}

/// Requests at or above the batch cap bypass the scheduler and still
/// answer correctly (the inline path and the batched path share the same
/// predict entry point).
#[test]
fn oversized_requests_bypass_the_scheduler() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(1).with_batch_max(2));
    let addr = handle.addr();

    // Three rows ≥ batch_max of 2 → inline predict.
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\nv1,v2,v0\nv1,v1,v2\n");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "c0\nc1\nc0\n");

    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "dfp_serve_batches_total"), 0, "{metrics}");
    handle.shutdown();
}

/// Malformed rows keep their exact client-facing diagnostics on the
/// cached parse path.
#[test]
fn parse_errors_survive_the_cached_path() {
    let _guard = lock_faults();
    let handle = serve_with(ServerConfig::default().with_threads(1));
    let addr = handle.addr();

    // Warm the cache with a valid line, then send a body mixing a cached
    // line with a malformed one: the malformed line's row number must
    // still be exact.
    let (status, _) = http(addr, "POST", "/predict", "v1,v1,v0\n");
    assert_eq!(status, 200);
    let (status, body) = http(addr, "POST", "/predict", "v1,v1,v0\npurple,v1,v0\n");
    assert_eq!(status, 400);
    assert!(body.contains("row 2") && body.contains("purple"), "{body}");

    let (status, body) = http(addr, "POST", "/predict", "v1,v1\n");
    assert_eq!(status, 400);
    assert!(body.contains("expected 3 fields, got 2"), "{body}");
    handle.shutdown();
}

/// Shutdown-order regression: requests racing server shutdown must either
/// get a full correct `200` or a connection refusal — never a spurious
/// `500` from a batch drained after the batcher is gone. The batcher is
/// joined before the worker pool, and refused submissions predict inline.
#[test]
fn shutdown_never_yields_spurious_500() {
    let _guard = lock_faults();
    for round in 0..5 {
        let handle = serve_with(
            ServerConfig::default()
                .with_threads(4)
                .with_batch_max(8)
                // A long linger keeps requests parked in the batcher queue
                // when shutdown lands, maximizing the drain window.
                .with_batch_wait(Duration::from_millis(20)),
        );
        let addr = handle.addr();
        let clients: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    // Some of these race the listener teardown: a refused /
                    // reset connection is fine, a served answer must be
                    // complete and correct.
                    let mut stream = match TcpStream::connect(addr) {
                        Ok(s) => s,
                        Err(_) => return None,
                    };
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let body = "v1,v1,v0\n";
                    let request = format!(
                        "POST /predict HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                    if stream.write_all(request.as_bytes()).is_err() {
                        return None;
                    }
                    let mut response = String::new();
                    if stream.read_to_string(&mut response).is_err() || response.is_empty() {
                        return None;
                    }
                    let status: u16 = response
                        .split_whitespace()
                        .nth(1)
                        .expect("status line")
                        .parse()
                        .expect("numeric status");
                    let payload = response
                        .split_once("\r\n\r\n")
                        .map(|(_, b)| b.to_string())
                        .unwrap_or_default();
                    Some((status, payload))
                })
            })
            .collect();
        // Let some requests reach the batcher queue, then pull the plug
        // while others are still mid-flight.
        std::thread::sleep(Duration::from_millis(5));
        handle.shutdown();
        for c in clients {
            if let Some((status, body)) = c.join().expect("client thread") {
                assert_ne!(status, 500, "round {round}: spurious 500: {body}");
                if status == 200 {
                    assert_eq!(body, "c0\n", "round {round}: truncated answer");
                }
            }
        }
    }
}
