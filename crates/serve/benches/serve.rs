//! Serving-path benchmarks: single-row predict latency and batch throughput
//! for every model kind, through the same code path `/predict` uses
//! (CSV parse → transform → predict_batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfp_classify::svm::KernelSvmParams;
use dfp_classify::tree::C45Params;
use dfp_classify::Classifier;
use dfp_core::{FrameworkConfig, ModelKind, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_serve::parse_rows;

fn confusable(n: u32) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..n {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn model_kinds() -> Vec<(&'static str, ModelKind)> {
    vec![
        ("linear_svm", ModelKind::default()),
        (
            "kernel_svm",
            ModelKind::KernelSvm(KernelSvmParams::rbf(1.0, 0.5)),
        ),
        ("c45", ModelKind::C45(C45Params::default())),
        ("naive_bayes", ModelKind::NaiveBayes),
        ("knn", ModelKind::Knn(3)),
    ]
}

fn bench_single_row(c: &mut Criterion) {
    let data = confusable(120);
    let mut group = c.benchmark_group("predict_single_row");
    group.sample_size(20);
    for (name, kind) in model_kinds() {
        let cfg = FrameworkConfig::pat_fs().with_model(kind);
        let fitted = PatternClassifier::fit(&data, &cfg).expect("fit");
        let model = dfp_model::from_bytes(&dfp_model::to_bytes(&fitted)).expect("roundtrip");
        let schema = model.schema().expect("schema").clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| {
                let ds = parse_rows(&schema, "v1,v1,v0\n").expect("parse");
                model.predict(&ds).expect("predict")
            })
        });
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let data = confusable(120);
    let batch: String = (0..512)
        .map(|i| {
            if i % 2 == 0 {
                "v1,v1,v0\n"
            } else {
                "v1,v2,v1\n"
            }
        })
        .collect();
    let mut group = c.benchmark_group("predict_batch_512");
    group.sample_size(20);
    for (name, kind) in model_kinds() {
        let cfg = FrameworkConfig::pat_fs().with_model(kind);
        let fitted = PatternClassifier::fit(&data, &cfg).expect("fit");
        let model = dfp_model::from_bytes(&dfp_model::to_bytes(&fitted)).expect("roundtrip");
        let schema = model.schema().expect("schema").clone();
        let matrix = model
            .transform(&parse_rows(&schema, &batch).expect("parse"))
            .expect("transform");
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            b.iter(|| model.model().predict_batch(&matrix.rows))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_row, bench_batch_throughput);
criterion_main!(benches);
