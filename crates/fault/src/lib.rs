//! # dfp-fault — named failpoints for fault-injection testing
//!
//! A std-only failpoint substrate: code marks named injection sites with
//! [`faultpoint!`], and a test (or an operator, via the `DFP_FAILPOINTS`
//! environment variable) arms sites with an [`Action`] — inject an error,
//! panic, sleep, or truncate I/O. When nothing is armed the whole machinery
//! collapses to one relaxed atomic load per site, so production code pays
//! nothing for carrying the sites.
//!
//! ## Arming sites
//!
//! From the environment, before the first site is evaluated:
//!
//! ```text
//! DFP_FAILPOINTS='serve.worker=panic;model.save=trunc;mining.growth=sleep:50'
//! ```
//!
//! Each clause is `site=action` where `action` is one of `err`, `panic`,
//! `sleep:<ms>`, `trunc`, optionally prefixed with a trigger budget
//! `<n>*` (`3*err` fires three times, then the site disarms itself).
//! Clauses are separated by `;` or `,`.
//!
//! Programmatically (tests):
//!
//! ```
//! dfp_fault::arm("mining.count", dfp_fault::Action::Err);
//! assert!(dfp_fault::evaluate("mining.count").is_some());
//! dfp_fault::disarm("mining.count");
//! assert!(dfp_fault::evaluate("mining.count").is_none());
//! ```
//!
//! ## Site semantics
//!
//! * `err` — the site's [`faultpoint!`] error arm runs (typically an early
//!   `return Err(..)` with a crate-specific "injected" error);
//! * `panic` — the site panics with a recognisable message; worker threads
//!   are expected to contain it (the serve pool catches and respawns);
//! * `sleep:<ms>` — the site blocks for the given latency, then proceeds;
//! * `trunc` — I/O sites cut their payload short (e.g. a model save writes
//!   only a prefix of the artifact), exercising corrupt-input handling.
//!
//! The registry of sites wired across the workspace is [`REGISTRY`]; CI's
//! fault-injection matrix iterates it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Duration;

/// What an armed failpoint does when its site is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Make the site fail with its crate-specific injected error.
    Err,
    /// Panic at the site (message contains `dfp-fault` and the site name).
    Panic,
    /// Block for the given latency, then continue normally.
    Sleep(u64),
    /// Truncate the site's I/O payload (site-specific interpretation).
    Trunc,
}

/// Every failpoint site wired into the workspace, with the layer it lives
/// in. CI's fault-injection matrix and the operations docs iterate this.
pub const REGISTRY: &[(&str, &str)] = &[
    ("data.ingest", "streaming CSV segment refill (dfp-data)"),
    (
        "mining.count",
        "counting-only enumeration worker (dfp-mining)",
    ),
    ("mining.growth", "FP-growth top-level task (dfp-mining)"),
    ("mining.closed", "closed-set DFS branch task (dfp-mining)"),
    (
        "mining.nodeset",
        "PPC-tree nodeset mining engine (dfp-nodeset)",
    ),
    (
        "mining.per_class",
        "per-class partition mining (dfp-mining)",
    ),
    ("model.save", "artifact serialization + write (dfp-model)"),
    ("model.load", "artifact read + deserialization (dfp-model)"),
    ("serve.accept", "listener accept loop (dfp-serve)"),
    (
        "serve.worker",
        "worker thread, before request handling (dfp-serve)",
    ),
    ("serve.predict", "/predict route body (dfp-serve)"),
    (
        "serve.batch",
        "batch scheduler dispatch, before predict (dfp-serve)",
    ),
    ("cv.fold", "outer cross-validation fold fit (dfp-core)"),
    (
        "cv.inner_fold",
        "inner cross-validation fold fit (dfp-classify)",
    ),
    (
        "client.request",
        "dfpc-score remote request attempt (dfp-serve)",
    ),
    (
        "registry.write",
        "registry artifact/pointer tmp write (dfp-registry)",
    ),
    (
        "registry.rename",
        "registry atomic rename into place (dfp-registry)",
    ),
    (
        "registry.validate",
        "registry canary validation before pointer flip (dfp-registry)",
    ),
    (
        "registry.drain",
        "registry old-version drain after swap (dfp-registry)",
    ),
];

/// One armed site: the action plus an optional remaining-trigger budget.
#[derive(Debug, Clone, Copy)]
struct Armed {
    action: Action,
    /// `None` = fire every time; `Some(n)` = fire `n` more times.
    remaining: Option<u64>,
}

/// Fast path: `false` means no site is armed anywhere and [`evaluate`]
/// returns `None` after a single relaxed load.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// Forces the one-time `DFP_FAILPOINTS` parse. `evaluate` must run this
/// before trusting the `ANY_ARMED` fast path: a process whose only arming
/// comes from the environment has nothing else that would touch the table.
/// After the first call this is a single atomic load.
fn ensure_env_init() {
    static ENV_INIT: Once = Once::new();
    ENV_INIT.call_once(|| {
        let _ = table();
    });
}

fn table() -> &'static Mutex<HashMap<String, Armed>> {
    static TABLE: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("DFP_FAILPOINTS") {
            for (site, armed) in parse_spec(&spec) {
                map.insert(site, armed);
            }
        }
        if !map.is_empty() {
            ANY_ARMED.store(true, Ordering::Release);
        }
        Mutex::new(map)
    })
}

/// Parses a `DFP_FAILPOINTS` specification. Unparseable clauses are skipped
/// (fault injection must never be able to take the process down by itself).
fn parse_spec(spec: &str) -> Vec<(String, Armed)> {
    spec.split([';', ','])
        .filter_map(|clause| {
            let (site, action) = clause.split_once('=')?;
            let action = action.trim();
            let (remaining, action) = match action.split_once('*') {
                Some((n, rest)) => (Some(n.trim().parse::<u64>().ok()?), rest.trim()),
                None => (None, action),
            };
            let action = match action {
                "err" => Action::Err,
                "panic" => Action::Panic,
                "trunc" => Action::Trunc,
                other => {
                    let ms = other.strip_prefix("sleep:")?.parse::<u64>().ok()?;
                    Action::Sleep(ms)
                }
            };
            Some((site.trim().to_string(), Armed { action, remaining }))
        })
        .collect()
}

/// Arms `site` with `action`, firing on every evaluation until disarmed.
pub fn arm(site: &str, action: Action) {
    arm_times(site, action, None);
}

/// Arms `site` with `action` for at most `times` evaluations (`None` =
/// unlimited); after the budget is spent the site disarms itself.
pub fn arm_times(site: &str, action: Action, times: Option<u64>) {
    let mut map = lock_table();
    map.insert(
        site.to_string(),
        Armed {
            action,
            remaining: times,
        },
    );
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarms `site` (no-op when it was not armed).
pub fn disarm(site: &str) {
    let mut map = lock_table();
    map.remove(site);
    if map.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    let mut map = lock_table();
    map.clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// `true` when `site` is currently armed (any action).
pub fn is_armed(site: &str) -> bool {
    ensure_env_init();
    ANY_ARMED.load(Ordering::Acquire) && lock_table().contains_key(site)
}

/// `true` when *any* site is armed (programmatically or via
/// `DFP_FAILPOINTS`). Caching layers consult this to disable themselves
/// while chaos testing is active: a cache hit would silently skip armed
/// sites on the cached path, masking the very faults being injected.
pub fn any_armed() -> bool {
    ensure_env_init();
    ANY_ARMED.load(Ordering::Acquire)
}

fn lock_table() -> std::sync::MutexGuard<'static, HashMap<String, Armed>> {
    table().lock().unwrap_or_else(|e| e.into_inner())
}

/// Evaluates a site: returns `None` instantly when nothing is armed.
///
/// When the site is armed, `Sleep` blocks here and returns `None` (the site
/// then proceeds normally), `Panic` panics here, and `Err` / `Trunc` are
/// returned for the site to interpret (fail with its injected error /
/// truncate its payload).
pub fn evaluate(site: &str) -> Option<Action> {
    ensure_env_init();
    if !ANY_ARMED.load(Ordering::Acquire) {
        return None;
    }
    let action = {
        let mut map = lock_table();
        let armed = map.get_mut(site)?;
        let action = armed.action;
        if let Some(n) = &mut armed.remaining {
            *n -= 1;
            if *n == 0 {
                map.remove(site);
            }
        }
        action
    };
    match action {
        Action::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("dfp-fault: injected panic at failpoint '{site}'"),
        Action::Err | Action::Trunc => Some(action),
    }
}

/// Marks a named failpoint.
///
/// * `faultpoint!("site")` — handles `panic` and `sleep` in place; `err` and
///   `trunc` are ignored (use this form at sites with nothing to fail).
/// * `faultpoint!("site", expr)` — additionally, when armed with `err`, does
///   an early `return Err(expr)` from the enclosing function.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        let _ = $crate::evaluate($site);
    };
    ($site:expr, $err:expr) => {
        if let Some($crate::Action::Err) = $crate::evaluate($site) {
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed table is process-global; tests serialise through this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_site_is_a_noop() {
        let _g = lock();
        disarm_all();
        assert_eq!(evaluate("nope"), None);
        assert!(!is_armed("nope"));
    }

    #[test]
    fn arm_evaluate_disarm_roundtrip() {
        let _g = lock();
        disarm_all();
        arm("t.err", Action::Err);
        arm("t.trunc", Action::Trunc);
        assert_eq!(evaluate("t.err"), Some(Action::Err));
        assert_eq!(evaluate("t.trunc"), Some(Action::Trunc));
        assert_eq!(evaluate("t.other"), None);
        disarm("t.err");
        assert_eq!(evaluate("t.err"), None);
        disarm_all();
        assert_eq!(evaluate("t.trunc"), None);
    }

    #[test]
    fn trigger_budget_disarms_after_n_fires() {
        let _g = lock();
        disarm_all();
        arm_times("t.budget", Action::Err, Some(2));
        assert_eq!(evaluate("t.budget"), Some(Action::Err));
        assert_eq!(evaluate("t.budget"), Some(Action::Err));
        assert_eq!(evaluate("t.budget"), None);
        assert!(!is_armed("t.budget"));
    }

    #[test]
    fn sleep_blocks_then_proceeds() {
        let _g = lock();
        disarm_all();
        arm("t.sleep", Action::Sleep(30));
        let start = std::time::Instant::now();
        assert_eq!(evaluate("t.sleep"), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
        disarm_all();
    }

    #[test]
    fn injected_panic_carries_site_name() {
        let _g = lock();
        disarm_all();
        arm("t.panic", Action::Panic);
        let r = std::panic::catch_unwind(|| evaluate("t.panic"));
        disarm_all();
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("t.panic"), "{msg}");
    }

    #[test]
    fn err_macro_form_returns_early() {
        let _g = lock();
        disarm_all();
        fn guarded() -> Result<u32, &'static str> {
            faultpoint!("t.macro", "injected");
            Ok(7)
        }
        assert_eq!(guarded(), Ok(7));
        arm("t.macro", Action::Err);
        assert_eq!(guarded(), Err("injected"));
        disarm_all();
    }

    #[test]
    fn spec_parsing() {
        let parsed = parse_spec("a=err; b=sleep:25,c=3*panic;bad;d=nope;e=trunc");
        let map: HashMap<String, Armed> = parsed.into_iter().collect();
        assert_eq!(map["a"].action, Action::Err);
        assert_eq!(map["b"].action, Action::Sleep(25));
        assert_eq!(map["c"].action, Action::Panic);
        assert_eq!(map["c"].remaining, Some(3));
        assert_eq!(map["e"].action, Action::Trunc);
        assert!(!map.contains_key("bad"));
        assert!(!map.contains_key("d"));
    }

    #[test]
    fn registry_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(REGISTRY.iter().all(|(n, _)| n.contains('.')));
    }
}
