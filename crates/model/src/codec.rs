//! The `DFPM` artifact codec: header, tagged sections, trailing CRC-32.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +---------+---------+---------------+---------------------+---------+
//! | "DFPM"  | version | section count | sections …          | CRC-32  |
//! | 4 bytes | u16     | u16           | tag u8, len u64, …  | u32     |
//! +---------+---------+---------------+---------------------+---------+
//! ```
//!
//! The checksum covers every byte before it. Unknown section tags are
//! skipped on read (their length is known), so later format versions can add
//! sections without breaking old readers of the parts they understand.

use crate::crc32::crc32;
use crate::error::ModelError;
use crate::wire::{Reader, Writer};
use dfp_classify::knn::Knn;
use dfp_classify::naive_bayes::BernoulliNb;
use dfp_classify::svm::{BinaryModel, Kernel, KernelSvm, LinearSvm};
use dfp_classify::tree::{FlatNode, C45};
use dfp_core::{FitInfo, PatternClassifier, TrainedModel};
use dfp_data::discretize::DiscretizationModel;
use dfp_data::schema::{Attribute, AttributeKind, ClassId, Schema};
use dfp_data::transactions::{Item, ItemMap};
use dfp_select::FeatureSpace;

/// The four magic bytes every artifact starts with.
pub const MAGIC: [u8; 4] = *b"DFPM";

/// Current artifact format version.
pub const FORMAT_VERSION: u16 = 1;

const SEC_SCHEMA: u8 = 1;
const SEC_DISCRETIZATION: u8 = 2;
const SEC_ITEM_MAP: u8 = 3;
const SEC_FEATURE_SPACE: u8 = 4;
const SEC_MODEL: u8 = 5;
const SEC_FIT_INFO: u8 = 6;
/// Optional training-data cache key: fingerprint algorithm version (u16) +
/// FNV-1a dataset fingerprint (u64). Old readers skip the unknown tag; new
/// readers drop the fingerprint when the algorithm version disagrees with
/// [`dfp_mining::memo::FINGERPRINT_VERSION`], so a stale key can never be
/// compared against freshly computed fingerprints.
const SEC_CACHE_KEY: u8 = 7;

const MODEL_LINEAR: u8 = 0;
const MODEL_KERNEL: u8 = 1;
const MODEL_TREE: u8 = 2;
const MODEL_NB: u8 = 3;
const MODEL_KNN: u8 = 4;

// ---------------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------------

fn section(out: &mut Writer, tag: u8, body: Writer) {
    out.u8(tag);
    out.usize(body.len());
    out.raw(&body.into_bytes());
}

fn write_string_vec(w: &mut Writer, v: &[String]) {
    w.usize(v.len());
    for s in v {
        w.str(s);
    }
}

fn write_f64_vec(w: &mut Writer, v: &[f64]) {
    w.usize(v.len());
    for &x in v {
        w.f64(x);
    }
}

fn write_u32_vec(w: &mut Writer, v: &[u32]) {
    w.usize(v.len());
    for &x in v {
        w.u32(x);
    }
}

fn encode_schema(schema: &Schema) -> Writer {
    let mut w = Writer::new();
    w.usize(schema.attributes.len());
    for attr in &schema.attributes {
        w.str(&attr.name);
        match &attr.kind {
            AttributeKind::Categorical { values } => {
                w.u8(0);
                write_string_vec(&mut w, values);
            }
            AttributeKind::Numeric => w.u8(1),
        }
    }
    write_string_vec(&mut w, &schema.class_names);
    w
}

fn encode_discretization(model: &DiscretizationModel) -> Writer {
    let mut w = Writer::new();
    let cuts = model.all_cuts();
    w.usize(cuts.len());
    for c in cuts {
        match c {
            None => w.u8(0),
            Some(points) => {
                w.u8(1);
                write_f64_vec(&mut w, points);
            }
        }
    }
    w
}

fn encode_item_map(map: &ItemMap) -> Writer {
    let mut w = Writer::new();
    write_u32_vec(&mut w, map.offsets());
    w.usize(map.pairs().len());
    for &(a, v) in map.pairs() {
        w.u32(a);
        w.u32(v);
    }
    write_string_vec(&mut w, map.names());
    w
}

fn encode_feature_space(fs: &FeatureSpace) -> Writer {
    let mut w = Writer::new();
    w.usize(fs.n_items);
    w.bool(fs.include_all_items);
    w.usize(fs.patterns.len());
    for p in &fs.patterns {
        w.usize(p.len());
        for item in p {
            w.u32(item.0);
        }
    }
    w.usize(fs.n_classes);
    w
}

fn encode_model(model: &TrainedModel) -> Writer {
    let mut w = Writer::new();
    match model {
        TrainedModel::Linear(svm) => {
            w.u8(MODEL_LINEAR);
            w.usize(svm.n_features());
            w.usize(svm.weight_vectors().len());
            for wv in svm.weight_vectors() {
                write_f64_vec(&mut w, wv);
            }
        }
        TrainedModel::Kernel(svm) => {
            w.u8(MODEL_KERNEL);
            match svm.kernel() {
                Kernel::Linear => w.u8(0),
                Kernel::Rbf { gamma } => {
                    w.u8(1);
                    w.f64(gamma);
                }
            }
            w.usize(svm.binary_models().len());
            for m in svm.binary_models() {
                w.usize(m.sv_rows.len());
                for row in &m.sv_rows {
                    write_u32_vec(&mut w, row);
                }
                write_f64_vec(&mut w, &m.sv_coef);
                w.f64(m.b);
            }
        }
        TrainedModel::Tree(tree) => {
            w.u8(MODEL_TREE);
            w.usize(tree.n_classes());
            let nodes = tree.flatten();
            w.usize(nodes.len());
            for node in &nodes {
                match node {
                    FlatNode::Leaf { class, counts } => {
                        w.u8(0);
                        w.u32(class.0);
                        write_u32_vec(&mut w, counts);
                    }
                    FlatNode::Split {
                        feature,
                        present,
                        absent,
                        counts,
                    } => {
                        w.u8(1);
                        w.u32(*feature);
                        w.usize(*present);
                        w.usize(*absent);
                        write_u32_vec(&mut w, counts);
                    }
                }
            }
        }
        TrainedModel::Nb(nb) => {
            w.u8(MODEL_NB);
            write_f64_vec(&mut w, nb.log_priors());
            w.usize(nb.log_present().len());
            for row in nb.log_present() {
                write_f64_vec(&mut w, row);
            }
            w.usize(nb.log_absent().len());
            for row in nb.log_absent() {
                write_f64_vec(&mut w, row);
            }
        }
        TrainedModel::Knn(knn) => {
            w.u8(MODEL_KNN);
            w.usize(knn.rows().len());
            for row in knn.rows() {
                write_u32_vec(&mut w, row);
            }
            w.usize(knn.labels().len());
            for l in knn.labels() {
                w.u32(l.0);
            }
            w.usize(knn.n_classes());
            w.usize(knn.k());
        }
    }
    w
}

fn encode_fit_info(info: &FitInfo) -> Writer {
    let mut w = Writer::new();
    w.usize(info.n_items);
    w.usize(info.n_patterns_mined);
    w.usize(info.n_selected);
    w.usize(info.n_features);
    match info.min_sup_abs {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.usize(v);
        }
    }
    w
}

/// Serializes a fitted classifier into the `DFPM` byte format.
pub fn to_bytes(model: &PatternClassifier) -> Vec<u8> {
    let mut out = Writer::new();
    out.raw(&MAGIC);
    out.u16(FORMAT_VERSION);

    let mut sections: Vec<(u8, Writer)> = Vec::new();
    if let Some(schema) = model.schema() {
        sections.push((SEC_SCHEMA, encode_schema(schema)));
    }
    if let Some(disc) = model.discretization() {
        sections.push((SEC_DISCRETIZATION, encode_discretization(disc)));
    }
    if let Some(map) = model.item_map() {
        sections.push((SEC_ITEM_MAP, encode_item_map(map)));
    }
    sections.push((
        SEC_FEATURE_SPACE,
        encode_feature_space(model.feature_space()),
    ));
    sections.push((SEC_MODEL, encode_model(model.model())));
    sections.push((SEC_FIT_INFO, encode_fit_info(model.info())));
    if let Some(fp) = model.dataset_fingerprint() {
        let mut w = Writer::new();
        w.u16(dfp_mining::memo::FINGERPRINT_VERSION);
        w.u64(fp);
        sections.push((SEC_CACHE_KEY, w));
    }

    out.u16(sections.len() as u16);
    for (tag, body) in sections {
        section(&mut out, tag, body);
    }

    let mut bytes = out.into_bytes();
    let sum = crc32(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

fn read_string_vec(r: &mut Reader) -> Result<Vec<String>, ModelError> {
    let n = r.len_prefix(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

fn read_f64_vec(r: &mut Reader) -> Result<Vec<f64>, ModelError> {
    let n = r.len_prefix(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

fn read_u32_vec(r: &mut Reader) -> Result<Vec<u32>, ModelError> {
    let n = r.len_prefix(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn decode_schema(r: &mut Reader) -> Result<Schema, ModelError> {
    let n = r.len_prefix(1)?;
    let mut attributes = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let kind = match r.u8()? {
            0 => AttributeKind::Categorical {
                values: read_string_vec(r)?,
            },
            1 => AttributeKind::Numeric,
            t => return Err(ModelError::Malformed(format!("bad attribute kind tag {t}"))),
        };
        attributes.push(Attribute { name, kind });
    }
    let class_names = read_string_vec(r)?;
    Ok(Schema::new(attributes, class_names))
}

fn decode_discretization(r: &mut Reader) -> Result<DiscretizationModel, ModelError> {
    let n = r.len_prefix(1)?;
    let mut cuts = Vec::with_capacity(n);
    for _ in 0..n {
        cuts.push(match r.u8()? {
            0 => None,
            1 => Some(read_f64_vec(r)?),
            t => return Err(ModelError::Malformed(format!("bad cut-option tag {t}"))),
        });
    }
    Ok(DiscretizationModel::from_cuts(cuts))
}

fn decode_item_map(r: &mut Reader) -> Result<ItemMap, ModelError> {
    let offsets = read_u32_vec(r)?;
    let n = r.len_prefix(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((r.u32()?, r.u32()?));
    }
    let names = read_string_vec(r)?;
    if pairs.len() != names.len() {
        return Err(ModelError::Malformed(
            "item map pairs/names length mismatch".into(),
        ));
    }
    for (a, &off) in offsets.iter().enumerate() {
        if off != u32::MAX && off as usize > pairs.len() {
            return Err(ModelError::Malformed(format!(
                "item map offset {off} of attribute {a} out of range"
            )));
        }
    }
    Ok(ItemMap::from_parts(offsets, pairs, names))
}

fn decode_feature_space(r: &mut Reader) -> Result<FeatureSpace, ModelError> {
    let n_items = r.usize()?;
    let include_all_items = r.bool()?;
    let n = r.len_prefix(8)?;
    let mut patterns = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.len_prefix(4)?;
        let mut p = Vec::with_capacity(m);
        for _ in 0..m {
            let id = r.u32()?;
            if id as usize >= n_items {
                return Err(ModelError::Malformed(format!(
                    "pattern item {id} outside the {n_items}-item universe"
                )));
            }
            p.push(Item(id));
        }
        patterns.push(p);
    }
    let n_classes = r.usize()?;
    Ok(FeatureSpace {
        n_items,
        include_all_items,
        patterns,
        n_classes,
    })
}

fn decode_model(r: &mut Reader) -> Result<TrainedModel, ModelError> {
    match r.u8()? {
        MODEL_LINEAR => {
            let n_features = r.usize()?;
            let n = r.len_prefix(8)?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push(read_f64_vec(r)?);
            }
            if weights.is_empty() {
                return Err(ModelError::Malformed("linear SVM has no classes".into()));
            }
            if weights.iter().any(|w| w.len() != n_features + 1) {
                return Err(ModelError::Malformed(
                    "linear SVM weight vector length mismatch".into(),
                ));
            }
            Ok(TrainedModel::Linear(LinearSvm::from_parts(
                weights, n_features,
            )))
        }
        MODEL_KERNEL => {
            let kernel = match r.u8()? {
                0 => Kernel::Linear,
                1 => Kernel::Rbf { gamma: r.f64()? },
                t => return Err(ModelError::Malformed(format!("bad kernel tag {t}"))),
            };
            let n = r.len_prefix(8)?;
            let mut models = Vec::with_capacity(n);
            for _ in 0..n {
                let n_sv = r.len_prefix(8)?;
                let mut sv_rows = Vec::with_capacity(n_sv);
                for _ in 0..n_sv {
                    sv_rows.push(read_u32_vec(r)?);
                }
                let sv_coef = read_f64_vec(r)?;
                let b = r.f64()?;
                if sv_rows.len() != sv_coef.len() {
                    return Err(ModelError::Malformed(
                        "kernel SVM support-vector/coefficient mismatch".into(),
                    ));
                }
                models.push(BinaryModel {
                    sv_rows,
                    sv_coef,
                    b,
                });
            }
            if models.is_empty() {
                return Err(ModelError::Malformed("kernel SVM has no classes".into()));
            }
            Ok(TrainedModel::Kernel(KernelSvm::from_parts(kernel, models)))
        }
        MODEL_TREE => {
            let n_classes = r.usize()?;
            let n = r.len_prefix(1)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(match r.u8()? {
                    0 => FlatNode::Leaf {
                        class: ClassId(r.u32()?),
                        counts: read_u32_vec(r)?,
                    },
                    1 => FlatNode::Split {
                        feature: r.u32()?,
                        present: r.usize()?,
                        absent: r.usize()?,
                        counts: read_u32_vec(r)?,
                    },
                    t => return Err(ModelError::Malformed(format!("bad tree node tag {t}"))),
                });
            }
            let tree = C45::from_flat(&nodes, n_classes)
                .map_err(|e| ModelError::Malformed(format!("invalid tree: {e}")))?;
            Ok(TrainedModel::Tree(tree))
        }
        MODEL_NB => {
            let log_prior = read_f64_vec(r)?;
            let n_p = r.len_prefix(8)?;
            let mut log_p = Vec::with_capacity(n_p);
            for _ in 0..n_p {
                log_p.push(read_f64_vec(r)?);
            }
            let n_q = r.len_prefix(8)?;
            let mut log_q = Vec::with_capacity(n_q);
            for _ in 0..n_q {
                log_q.push(read_f64_vec(r)?);
            }
            let m = log_prior.len();
            if m == 0
                || log_p.len() != m
                || log_q.len() != m
                || log_p.iter().zip(&log_q).any(|(p, q)| p.len() != q.len())
            {
                return Err(ModelError::Malformed(
                    "naive Bayes table dimensions disagree".into(),
                ));
            }
            Ok(TrainedModel::Nb(BernoulliNb::from_parts(
                log_prior, log_p, log_q,
            )))
        }
        MODEL_KNN => {
            let n = r.len_prefix(8)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(read_u32_vec(r)?);
            }
            let n_l = r.len_prefix(4)?;
            let mut labels = Vec::with_capacity(n_l);
            for _ in 0..n_l {
                labels.push(ClassId(r.u32()?));
            }
            let n_classes = r.usize()?;
            let k = r.usize()?;
            if rows.is_empty() || rows.len() != labels.len() || k == 0 {
                return Err(ModelError::Malformed("invalid k-NN training store".into()));
            }
            Ok(TrainedModel::Knn(Knn::from_parts(
                rows, labels, n_classes, k,
            )))
        }
        t => Err(ModelError::Malformed(format!("bad model kind tag {t}"))),
    }
}

fn decode_fit_info(r: &mut Reader) -> Result<FitInfo, ModelError> {
    Ok(FitInfo {
        n_items: r.usize()?,
        n_patterns_mined: r.usize()?,
        n_selected: r.usize()?,
        n_features: r.usize()?,
        min_sup_abs: match r.u8()? {
            0 => None,
            1 => Some(r.usize()?),
            t => return Err(ModelError::Malformed(format!("bad min_sup option tag {t}"))),
        },
    })
}

/// Verifies the `DFPM` envelope — magic, format version and trailing
/// CRC-32 — without decoding the payload. The cheap integrity pre-check
/// admin upload paths run before accepting bytes for a swap; a passing
/// envelope does not guarantee [`from_bytes`] succeeds (the payload may
/// still be structurally malformed), only that the bytes arrived intact.
pub fn verify_bytes(bytes: &[u8]) -> Result<(), ModelError> {
    if bytes.len() < 12 {
        return Err(ModelError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(ModelError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(ModelError::UnsupportedVersion(version));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(body) != stored {
        return Err(ModelError::ChecksumMismatch);
    }
    Ok(())
}

/// Deserializes a classifier from `DFPM` bytes, verifying magic, version and
/// checksum before touching the payload.
pub fn from_bytes(bytes: &[u8]) -> Result<PatternClassifier, ModelError> {
    // Header + checksum minimum: magic(4) + version(2) + count(2) + crc(4).
    if bytes.len() < 12 {
        return Err(ModelError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(ModelError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(ModelError::UnsupportedVersion(version));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(body) != stored {
        return Err(ModelError::ChecksumMismatch);
    }

    let mut r = Reader::new(&body[6..]);
    let n_sections = r.u16()?;

    let mut schema = None;
    let mut discretization = None;
    let mut item_map = None;
    let mut feature_space = None;
    let mut model = None;
    let mut info = None;
    let mut dataset_fingerprint = None;

    for _ in 0..n_sections {
        let tag = r.u8()?;
        let len = r.usize()?;
        let mut sec = r.sub(len)?;
        match tag {
            SEC_SCHEMA => schema = Some(decode_schema(&mut sec)?),
            SEC_DISCRETIZATION => discretization = Some(decode_discretization(&mut sec)?),
            SEC_ITEM_MAP => item_map = Some(decode_item_map(&mut sec)?),
            SEC_FEATURE_SPACE => feature_space = Some(decode_feature_space(&mut sec)?),
            SEC_MODEL => model = Some(decode_model(&mut sec)?),
            SEC_FIT_INFO => info = Some(decode_fit_info(&mut sec)?),
            SEC_CACHE_KEY => {
                // Compatibility check: only a fingerprint computed by the
                // algorithm version this build runs is meaningful to keep.
                // A future version's body layout is unknown — skip it whole.
                if sec.u16()? != dfp_mining::memo::FINGERPRINT_VERSION {
                    continue;
                }
                dataset_fingerprint = Some(sec.u64()?);
            }
            // Unknown sections from future minor revisions are skipped.
            _ => continue,
        }
        if !sec.is_empty() {
            return Err(ModelError::Malformed(format!(
                "section {tag} has {} trailing bytes",
                sec.remaining()
            )));
        }
    }
    if !r.is_empty() {
        return Err(ModelError::Malformed(
            "trailing bytes after sections".into(),
        ));
    }

    let feature_space = feature_space
        .ok_or_else(|| ModelError::Malformed("missing feature-space section".into()))?;
    let model = model.ok_or_else(|| ModelError::Malformed("missing model section".into()))?;
    let info = info.ok_or_else(|| ModelError::Malformed("missing fit-info section".into()))?;

    let mut classifier =
        PatternClassifier::from_parts(model, feature_space, discretization, item_map, schema, info);
    classifier.set_dataset_fingerprint(dataset_fingerprint);
    Ok(classifier)
}
