//! # dfp-model — versioned binary artifacts for fitted classifiers
//!
//! Persists a fitted [`PatternClassifier`] — discretization cut points, the
//! `(attribute, value) ↔ item` map, the selected feature space and the
//! trained model (any of the five [`dfp_core::ModelKind`] variants) — to a
//! compact, versioned binary file, and loads it back for serving.
//!
//! The format is hand-rolled (the workspace deliberately avoids serde; see
//! DESIGN.md): `DFPM` magic, a `u16` format version, length-prefixed tagged
//! sections and a trailing CRC-32. A loaded model reproduces the in-memory
//! model's predictions exactly: every float travels as its IEEE-754 bit
//! pattern. Corrupt input fails with a typed [`ModelError`], never a panic.
//!
//! ```no_run
//! use dfp_core::{FrameworkConfig, PatternClassifier};
//! # fn demo(train: &dfp_data::dataset::Dataset) -> Result<(), Box<dyn std::error::Error>> {
//! let model = PatternClassifier::fit(train, &FrameworkConfig::pat_fs())?;
//! dfp_model::save(&model, "model.dfpm")?;
//! let loaded = dfp_model::load("model.dfpm")?;
//! assert_eq!(loaded.predict(train)?, model.predict(train)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod crc32;
mod error;
mod wire;

pub use codec::{from_bytes, to_bytes, verify_bytes, FORMAT_VERSION, MAGIC};
pub use error::ModelError;

use dfp_core::PatternClassifier;
use std::path::Path;

/// Saves a fitted classifier to `path` in the `DFPM` format.
///
/// The `model.save` failpoint can inject an I/O error (`err`) or write a
/// truncated artifact (`trunc`) to exercise crash-during-save recovery.
pub fn save(model: &PatternClassifier, path: impl AsRef<Path>) -> Result<(), ModelError> {
    let mut sp = dfp_obs::span("model.save");
    let mut bytes = to_bytes(model);
    sp.attr("bytes", bytes.len());
    match dfp_fault::evaluate("model.save") {
        Some(dfp_fault::Action::Err) => {
            return Err(ModelError::Io(std::io::Error::other(
                "fault injected at failpoint 'model.save'",
            )))
        }
        Some(dfp_fault::Action::Trunc) => bytes.truncate(bytes.len() / 2),
        _ => {}
    }
    std::fs::write(path, bytes)?;
    dfp_obs::metrics::dfp::model_saves().inc();
    Ok(())
}

/// Loads a fitted classifier from a `DFPM` file.
///
/// The `model.load` failpoint can inject an I/O error (`err`) or truncate
/// the bytes before decoding (`trunc` — surfaces as a typed decode error).
pub fn load(path: impl AsRef<Path>) -> Result<PatternClassifier, ModelError> {
    let mut sp = dfp_obs::span("model.load");
    let mut bytes = std::fs::read(path)?;
    sp.attr("bytes", bytes.len());
    match dfp_fault::evaluate("model.load") {
        Some(dfp_fault::Action::Err) => {
            return Err(ModelError::Io(std::io::Error::other(
                "fault injected at failpoint 'model.load'",
            )))
        }
        Some(dfp_fault::Action::Trunc) => bytes.truncate(bytes.len() / 2),
        _ => {}
    }
    let model = from_bytes(&bytes)?;
    dfp_obs::metrics::dfp::model_loads().inc();
    Ok(model)
}
