//! Typed errors for artifact encoding and decoding.

use std::fmt;

/// Everything that can go wrong reading or writing a model artifact.
#[derive(Debug)]
pub enum ModelError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `DFPM` magic bytes.
    BadMagic,
    /// The artifact was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The byte stream ended before a complete value could be read.
    Truncated,
    /// The trailing CRC-32 does not match the artifact contents.
    ChecksumMismatch,
    /// Structurally invalid contents (bad tag, inconsistent dimensions, …).
    Malformed(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
            ModelError::BadMagic => write!(f, "not a dfp model artifact (bad magic)"),
            ModelError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact format version {v}")
            }
            ModelError::Truncated => write!(f, "artifact truncated"),
            ModelError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            ModelError::Malformed(why) => write!(f, "malformed artifact: {why}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}
