//! Little-endian wire primitives: a growable byte writer and a bounds-checked
//! cursor reader. Every multi-byte integer is little-endian; `f64` travels as
//! its IEEE-754 bit pattern so round-trips are exact (including negative
//! zero, subnormals and infinities); strings are length-prefixed UTF-8;
//! containers are length-prefixed element sequences.

use crate::error::ModelError;

/// Byte-buffer writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes without a length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ModelError> {
        if self.remaining() < n {
            return Err(ModelError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ModelError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, ModelError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ModelError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ModelError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts to `usize`, rejecting values that do not
    /// fit the platform.
    pub fn usize(&mut self) -> Result<usize, ModelError> {
        usize::try_from(self.u64()?)
            .map_err(|_| ModelError::Malformed("length exceeds platform usize".into()))
    }

    /// Reads a length prefix that is about to govern `min_elem_bytes`-wide
    /// elements; rejects lengths the remaining bytes cannot possibly hold, so
    /// corrupt files cannot trigger huge allocations.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, ModelError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(ModelError::Truncated);
        }
        Ok(n)
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, ModelError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, ModelError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ModelError::Malformed(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ModelError> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ModelError::Malformed("invalid UTF-8 in string".into()))
    }

    /// Splits off the next `n` bytes as a sub-reader (for sections).
    pub fn sub(&mut self, n: usize) -> Result<Reader<'a>, ModelError> {
        Ok(Reader::new(self.take(n)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.f64(-0.0);
        w.f64(f64::INFINITY);
        w.bool(true);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::INFINITY);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.u32(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(r.u32(), Err(ModelError::Truncated)));
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.len_prefix(8), Err(ModelError::Truncated)));
    }

    #[test]
    fn bad_bool_and_utf8_are_malformed() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(r.bool(), Err(ModelError::Malformed(_))));
        let mut w = Writer::new();
        w.usize(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(ModelError::Malformed(_))));
    }
}
