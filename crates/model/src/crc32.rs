//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
//!
//! Hand-rolled because the workspace has no crates.io access and the
//! artifact format needs an integrity check that is cheap, stable across
//! platforms, and has a well-known reference implementation to test against.

const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (initial value `!0`, final XOR `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib crc32 implementation.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
