//! Artifact round-trip coverage: save → load → predict must reproduce the
//! in-memory model's predictions exactly for every model kind and feature
//! mode, and corrupt input must fail with a typed error, never a panic.

use dfp_classify::svm::KernelSvmParams;
use dfp_classify::tree::C45Params;
use dfp_core::{FrameworkConfig, ModelKind, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_data::synth::profile_by_name;
use dfp_model::{from_bytes, load, save, to_bytes, ModelError, FORMAT_VERSION, MAGIC};

/// Two-class categorical data where the pair (a0=1, a1=1) marks class 0 and
/// (a0=1, a1=2) marks class 1 — patterns matter, single items are weak.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn all_model_kinds() -> Vec<ModelKind> {
    vec![
        ModelKind::default(), // LinearSvm
        ModelKind::KernelSvm(KernelSvmParams::rbf(1.0, 0.5)),
        ModelKind::C45(C45Params::default()),
        ModelKind::NaiveBayes,
        ModelKind::Knn(3),
    ]
}

fn assert_roundtrip(data: &Dataset, cfg: &FrameworkConfig) {
    let fitted = PatternClassifier::fit(data, cfg).expect("fit");
    let bytes = to_bytes(&fitted);
    let loaded = from_bytes(&bytes).expect("decode");
    assert_eq!(
        loaded.predict(data).expect("loaded predict"),
        fitted.predict(data).expect("fitted predict"),
        "loaded model diverges for {cfg:?}"
    );
    assert_eq!(loaded.info().n_features, fitted.info().n_features);
}

#[test]
fn every_model_kind_roundtrips() {
    let data = confusable();
    for kind in all_model_kinds() {
        let cfg = FrameworkConfig::pat_fs().with_model(kind);
        assert_roundtrip(&data, &cfg);
    }
}

#[test]
fn every_feature_mode_roundtrips() {
    let data = confusable();
    for cfg in [
        FrameworkConfig::item_all(),
        FrameworkConfig::item_fs(),
        FrameworkConfig::item_rbf(1.0, 0.5),
        FrameworkConfig::pat_all(),
        FrameworkConfig::pat_fs(),
    ] {
        assert_roundtrip(&data, &cfg);
    }
}

#[test]
fn every_model_kind_roundtrips_with_discretization() {
    // Fully numeric data → schema, cut points and item map all persist.
    let data = profile_by_name("iris").expect("iris profile").generate();
    for kind in all_model_kinds() {
        let cfg = FrameworkConfig::pat_fs().with_model(kind);
        assert_roundtrip(&data, &cfg);
    }
}

#[test]
fn file_save_load_roundtrip() {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let path = std::env::temp_dir().join(format!(
        "dfpm-roundtrip-{}-{}.dfpm",
        std::process::id(),
        line!()
    ));
    save(&fitted, &path).expect("save");
    let loaded = load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        loaded.predict(&data).unwrap(),
        fitted.predict(&data).unwrap()
    );
}

#[test]
fn loaded_model_keeps_schema_and_diagnostics() {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let loaded = from_bytes(&to_bytes(&fitted)).unwrap();
    assert_eq!(loaded.schema(), fitted.schema());
    assert!(loaded.schema().is_some());
    assert_eq!(loaded.info().n_items, fitted.info().n_items);
    assert_eq!(loaded.info().min_sup_abs, fitted.info().min_sup_abs);
    assert_eq!(
        loaded.describe_pattern_features(),
        fitted.describe_pattern_features()
    );
}

#[test]
fn dataset_fingerprint_roundtrips() {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    assert!(fitted.dataset_fingerprint().is_some());
    let loaded = from_bytes(&to_bytes(&fitted)).unwrap();
    assert_eq!(loaded.dataset_fingerprint(), fitted.dataset_fingerprint());
}

#[test]
fn incompatible_fingerprint_version_is_dropped_on_load() {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let mut bytes = to_bytes(&fitted);
    // Walk the sections to the cache-key section (tag 7) and bump its
    // algorithm version field; the loader must drop the stale fingerprint
    // rather than compare it against freshly computed ones.
    let mut cursor = 8;
    let mut patched = false;
    while cursor + 9 <= bytes.len() - 4 {
        let tag = bytes[cursor];
        let len = u64::from_le_bytes(bytes[cursor + 1..cursor + 9].try_into().unwrap()) as usize;
        if tag == 7 {
            bytes[cursor + 9] = 0xFE;
            bytes[cursor + 10] = 0xFF;
            patched = true;
            break;
        }
        cursor += 9 + len;
    }
    assert!(patched, "cache-key section not found in artifact");
    fix_checksum(&mut bytes);
    let loaded = from_bytes(&bytes).expect("artifact still loads");
    assert_eq!(loaded.dataset_fingerprint(), None);
    // Everything else is intact.
    assert_eq!(
        loaded.predict(&data).unwrap(),
        fitted.predict(&data).unwrap()
    );
}

// ---------------------------------------------------------------------------
// negative coverage
// ---------------------------------------------------------------------------

fn artifact() -> Vec<u8> {
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    to_bytes(&fitted)
}

#[test]
fn empty_and_tiny_inputs_are_truncated() {
    assert!(matches!(from_bytes(&[]), Err(ModelError::Truncated)));
    assert!(matches!(
        from_bytes(&MAGIC[..3]),
        Err(ModelError::Truncated)
    ));
    let mut short = MAGIC.to_vec();
    short.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    assert!(matches!(from_bytes(&short), Err(ModelError::Truncated)));
}

#[test]
fn wrong_magic_detected() {
    let mut bytes = artifact();
    bytes[0] = b'X';
    assert!(matches!(from_bytes(&bytes), Err(ModelError::BadMagic)));
}

#[test]
fn wrong_version_detected() {
    let mut bytes = artifact();
    bytes[4] = 0xFF;
    bytes[5] = 0xFF;
    assert!(matches!(
        from_bytes(&bytes),
        Err(ModelError::UnsupportedVersion(0xFFFF))
    ));
}

#[test]
fn bit_flips_fail_the_checksum() {
    let bytes = artifact();
    // Flip one bit at several positions spread across the payload.
    for frac in [3, 5, 7, 11] {
        let mut corrupt = bytes.clone();
        let pos = 12 + (corrupt.len() - 16) / frac;
        corrupt[pos] ^= 0x10;
        assert!(
            matches!(from_bytes(&corrupt), Err(ModelError::ChecksumMismatch)),
            "flip at byte {pos} not caught"
        );
    }
}

#[test]
fn every_truncation_point_errors_without_panicking() {
    let bytes = artifact();
    for n in 0..bytes.len() {
        assert!(
            from_bytes(&bytes[..n]).is_err(),
            "prefix of length {n} decoded successfully"
        );
    }
}

/// Rewrites the trailing CRC so structural corruption is reached by the
/// section decoders instead of being caught by the checksum.
fn fix_checksum(bytes: &mut [u8]) {
    let body_len = bytes.len() - 4;
    let sum = {
        // Independent bit-by-bit IEEE CRC-32 (also cross-checks the
        // table-driven implementation inside dfp-model).
        let mut c = !0u32;
        for &b in &bytes[..body_len] {
            c ^= b as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
        }
        !c
    };
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn missing_sections_are_malformed() {
    // A checksum-valid artifact with zero sections must fail with Malformed,
    // not panic on a missing model.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    fix_checksum(&mut bytes);
    assert!(matches!(from_bytes(&bytes), Err(ModelError::Malformed(_))));
}

#[test]
fn corrupt_section_tag_is_structurally_rejected() {
    // Overwrite the model section's tag and repair the checksum: the unknown
    // tag is skipped, so a required section goes missing → Malformed.
    let mut bytes = artifact();
    let mut patched = false;
    // First section tag sits after magic(4) + version(2) + section count(2).
    let mut cursor = 8;
    while cursor + 9 <= bytes.len() - 4 {
        let tag = bytes[cursor];
        let len = u64::from_le_bytes(bytes[cursor + 1..cursor + 9].try_into().unwrap()) as usize;
        if tag == 5 {
            // SEC_MODEL
            bytes[cursor] = 0xEE;
            patched = true;
            break;
        }
        cursor += 9 + len;
    }
    assert!(patched, "model section not found in artifact");
    fix_checksum(&mut bytes);
    assert!(matches!(from_bytes(&bytes), Err(ModelError::Malformed(_))));
}
