//! Artifact corruption sweep: for **every** model kind, every single-byte
//! flip and every truncation point of its `DFPM` artifact must surface a
//! typed [`ModelError`] or decode to a usable model — never panic, never
//! attempt an absurd allocation. Also exercises the `model.save` /
//! `model.load` failpoints end to end.

use dfp_classify::svm::KernelSvmParams;
use dfp_classify::tree::C45Params;
use dfp_core::{FrameworkConfig, ModelKind, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_model::{from_bytes, load, save, to_bytes, ModelError};
use std::sync::{Mutex, MutexGuard};

/// Failpoint state is process-global; tests that arm sites serialise here.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two-class categorical data where the pair (a0=1, a1=1) marks class 0 and
/// (a0=1, a1=2) marks class 1.
fn confusable() -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn artifact_for(kind: ModelKind) -> Vec<u8> {
    let data = confusable();
    let cfg = FrameworkConfig::pat_fs().with_model(kind);
    let fitted = PatternClassifier::fit(&data, &cfg).expect("fit");
    to_bytes(&fitted)
}

fn all_model_kinds() -> Vec<ModelKind> {
    vec![
        ModelKind::default(), // LinearSvm
        ModelKind::KernelSvm(KernelSvmParams::rbf(1.0, 0.5)),
        ModelKind::C45(C45Params::default()),
        ModelKind::NaiveBayes,
        ModelKind::Knn(3),
    ]
}

#[test]
fn every_byte_flip_is_typed_for_every_model_kind() {
    for kind in all_model_kinds() {
        let bytes = artifact_for(kind.clone());
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xA5;
            // Every flip must yield a typed error — a flip can land in the
            // magic, the version, a length, the payload, or the CRC itself,
            // and each path must degrade to Err, not panic.
            match from_bytes(&corrupt) {
                Err(
                    ModelError::BadMagic
                    | ModelError::UnsupportedVersion(_)
                    | ModelError::ChecksumMismatch
                    | ModelError::Truncated
                    | ModelError::Malformed(_),
                ) => {}
                Err(other) => panic!("{kind:?}: flip at {pos} gave unexpected error {other:?}"),
                Ok(_) => panic!("{kind:?}: flip at {pos} decoded successfully (CRC missed it)"),
            }
        }
    }
}

#[test]
fn every_truncation_is_typed_for_every_model_kind() {
    for kind in all_model_kinds() {
        let bytes = artifact_for(kind.clone());
        for n in 0..bytes.len() {
            assert!(
                from_bytes(&bytes[..n]).is_err(),
                "{kind:?}: prefix of length {n} decoded successfully"
            );
        }
    }
}

#[test]
fn oversized_length_prefix_does_not_balloon_memory() {
    // Write an absurd section length and repair nothing: the decoder must
    // bounds-check against the remaining bytes instead of pre-allocating.
    let mut bytes = artifact_for(ModelKind::default());
    // First section length sits after magic(4)+version(2)+count(2)+tag(1).
    bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(from_bytes(&bytes).is_err());
}

#[test]
fn save_failpoint_surfaces_io_error() {
    let _guard = lock_faults();
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let path = std::env::temp_dir().join(format!("dfpm-fp-save-{}.dfpm", std::process::id()));

    dfp_fault::arm("model.save", dfp_fault::Action::Err);
    let r = save(&fitted, &path);
    dfp_fault::disarm("model.save");
    std::fs::remove_file(&path).ok();
    assert!(matches!(r, Err(ModelError::Io(_))), "{r:?}");
}

#[test]
fn truncated_save_fails_the_reload_checksum() {
    let _guard = lock_faults();
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let path = std::env::temp_dir().join(format!("dfpm-fp-trunc-{}.dfpm", std::process::id()));

    dfp_fault::arm("model.save", dfp_fault::Action::Trunc);
    let saved = save(&fitted, &path);
    dfp_fault::disarm("model.save");
    assert!(
        saved.is_ok(),
        "truncation is silent at save time: {saved:?}"
    );

    // The torn write is caught on load as truncation/checksum damage.
    let r = load(&path);
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            r,
            Err(ModelError::Truncated | ModelError::ChecksumMismatch | ModelError::Malformed(_))
        ),
        "{r:?}"
    );
}

#[test]
fn load_failpoint_surfaces_io_error() {
    let _guard = lock_faults();
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let path = std::env::temp_dir().join(format!("dfpm-fp-load-{}.dfpm", std::process::id()));
    save(&fitted, &path).unwrap();

    dfp_fault::arm("model.load", dfp_fault::Action::Err);
    let r = load(&path);
    dfp_fault::disarm("model.load");
    assert!(matches!(r, Err(ModelError::Io(_))), "{r:?}");

    // Once disarmed, the same artifact loads cleanly — the fault was
    // injected, not real damage.
    let ok = load(&path);
    std::fs::remove_file(&path).ok();
    assert!(ok.is_ok());
}

#[test]
fn load_trunc_failpoint_is_caught_by_decoder() {
    let _guard = lock_faults();
    let data = confusable();
    let fitted = PatternClassifier::fit(&data, &FrameworkConfig::pat_fs()).unwrap();
    let path = std::env::temp_dir().join(format!("dfpm-fp-ltrunc-{}.dfpm", std::process::id()));
    save(&fitted, &path).unwrap();

    dfp_fault::arm("model.load", dfp_fault::Action::Trunc);
    let r = load(&path);
    dfp_fault::disarm("model.load");
    std::fs::remove_file(&path).ok();
    assert!(
        matches!(
            r,
            Err(ModelError::Truncated | ModelError::ChecksumMismatch | ModelError::Malformed(_))
        ),
        "{r:?}"
    );
}
