//! Span export: JSONL trace files and the `DFP_TRACE` environment hook.
//!
//! A [`TraceSession`] owns a trace file, enables span recording for its
//! lifetime, and appends one JSON object per completed span. Lines look
//! like:
//!
//! ```json
//! {"name":"pipeline.fit","id":7,"parent":3,"tid":1,
//!  "start_ns":12000,"end_ns":98000,"attrs":{"rows":"150"}}
//! ```
//!
//! The format converts losslessly to the Chrome trace-event format
//! (`chrome://tracing` / Perfetto): `dfp-trace-check --chrome out.json`
//! performs the conversion, mapping each line to a `ph:"X"` complete event
//! with microsecond `ts`/`dur`.
//!
//! Sessions are cheap handles over a shared writer, so a long-running
//! server can hand a clone to a background flusher thread; the file is
//! finalised when the last handle drops.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::escape_into;
use crate::span::{self, SpanRecord};

/// Environment variable naming the trace output path.
pub const TRACE_ENV: &str = "DFP_TRACE";

/// Renders one span as a single JSONL line (no trailing newline).
pub fn record_to_json(record: &SpanRecord) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"name\":");
    escape_into(&mut line, record.name);
    line.push_str(&format!(
        ",\"id\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
        record.id, record.parent, record.tid, record.start_ns, record.end_ns
    ));
    for (i, (key, value)) in record.attrs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        escape_into(&mut line, key);
        line.push(':');
        escape_into(&mut line, value);
    }
    line.push_str("}}");
    line
}

struct Inner {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Inner {
    fn flush(&self) -> io::Result<usize> {
        let records = span::drain();
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        for record in &records {
            writer.write_all(record_to_json(record).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        Ok(records.len())
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        span::set_tracing(false);
        let _ = self.flush();
    }
}

/// An active trace export: enables span recording on creation, streams
/// completed spans to a JSONL file, disables recording and finalises the
/// file when the last clone drops.
#[derive(Clone)]
pub struct TraceSession {
    inner: Arc<Inner>,
}

impl TraceSession {
    /// Starts tracing to `path` (created or truncated).
    pub fn begin(path: impl AsRef<Path>) -> io::Result<TraceSession> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        // Discard spans completed before this session so the file only
        // covers its own lifetime.
        span::drain();
        span::set_tracing(true);
        Ok(TraceSession {
            inner: Arc::new(Inner {
                path,
                writer: Mutex::new(BufWriter::new(file)),
            }),
        })
    }

    /// Starts tracing to the file named by `DFP_TRACE`, when set.
    ///
    /// Returns `Ok(None)` when the variable is unset or empty.
    pub fn from_env() -> io::Result<Option<TraceSession>> {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => Self::begin(path).map(Some),
            _ => Ok(None),
        }
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Drains completed spans to the file now; returns how many were
    /// written. Called automatically on drop — use this from a periodic
    /// flusher in long-running processes.
    pub fn flush(&self) -> io::Result<usize> {
        self.inner.flush()
    }
}

impl std::fmt::Debug for TraceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSession")
            .field("path", &self.inner.path)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dfp-obs-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn session_writes_parseable_jsonl() {
        let _guard = span::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = temp_path("session");
        {
            let session = TraceSession::begin(&path).unwrap();
            {
                let mut s = span::span("test.trace.root");
                s.attr("note", "a \"quoted\" value");
                let _child = span::span("test.trace.child");
            }
            session.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mut names = Vec::new();
        for line in text.lines().filter(|l| !l.is_empty()) {
            let v = json::parse(line).expect("line parses");
            let name = v.get("name").unwrap().as_str().unwrap().to_string();
            let start = v.get("start_ns").unwrap().as_int().unwrap();
            let end = v.get("end_ns").unwrap().as_int().unwrap();
            assert!(end >= start, "{name}");
            names.push(name);
        }
        assert!(names.contains(&"test.trace.root".to_string()), "{names:?}");
        assert!(names.contains(&"test.trace.child".to_string()));
        assert!(text.contains("a \\\"quoted\\\" value"));
        assert!(!span::tracing_enabled(), "drop disables tracing");
    }

    #[test]
    fn from_env_unset_is_none() {
        let _guard = span::TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // TRACE_ENV is never set by the test harness.
        assert!(std::env::var(TRACE_ENV).is_err());
        assert!(TraceSession::from_env().unwrap().is_none());
    }
}
