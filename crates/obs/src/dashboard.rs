//! Self-contained HTML operator dashboard.
//!
//! [`render`] produces one static page — no JavaScript, no external assets
//! — from the TSDB, the SLO engine, the tail reservoir, and the audit ring:
//! alert states up top, an inline-SVG sparkline per series (counters as
//! rates, gauges raw, histograms as per-interval means with windowed
//! p50/p99 stats), registry swap/quarantine events annotated as vertical
//! timeline markers on every sparkline, and the most recent audit events
//! and kept traces tabulated below. A `<meta http-equiv="refresh">` keeps
//! it live-ish; anything fancier belongs in a real Grafana in front of
//! `/metrics`.

use crate::audit;
use crate::slo::SloEngine;
use crate::tail::TailSampler;
use crate::tsdb::{SeriesKind, Tsdb, WINDOWS};

const SPARK_W: f64 = 240.0;
const SPARK_H: f64 = 48.0;
/// Newest points drawn per sparkline.
const SPARK_POINTS: usize = 120;

/// Escapes `&<>"` for safe embedding in HTML text and attributes.
fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders the `GET /dashboard` page.
pub fn render(
    title: &str,
    tsdb: &Tsdb,
    engine: Option<&SloEngine>,
    tail: Option<&TailSampler>,
    now_ms: u64,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    out.push_str("<meta http-equiv=\"refresh\" content=\"5\">");
    out.push_str(&format!("<title>{}</title>", html_escape(title)));
    out.push_str(
        "<style>
body{font:13px/1.4 monospace;background:#111;color:#ddd;margin:16px}
h1{font-size:16px}h2{font-size:14px;margin:18px 0 6px;border-bottom:1px solid #333}
table{border-collapse:collapse}td,th{padding:2px 10px 2px 0;text-align:left}
.grid{display:flex;flex-wrap:wrap;gap:10px}
.card{background:#1a1a1a;border:1px solid #2a2a2a;border-radius:4px;padding:6px 8px}
.name{color:#9cf}.labels{color:#777}.val{color:#fd9}
.firing{color:#f66;font-weight:bold}.ok{color:#6d6}
svg{display:block;margin-top:4px}
.warnrow{color:#f96}
</style></head><body>",
    );
    out.push_str(&format!(
        "<h1>{} <span class=\"labels\">· tsdb interval {} ms · retained {} s</span></h1>",
        html_escape(title),
        tsdb.interval_ms(),
        tsdb.retain_ms() / 1000
    ));

    // Alerts.
    out.push_str("<h2>SLO alerts</h2>");
    match engine {
        Some(engine) if !engine.specs().is_empty() => {
            out.push_str(
                "<table><tr><th>slo</th><th>severity</th><th>state</th>\
                 <th>burn (short)</th><th>burn (long)</th><th>factor</th></tr>",
            );
            for a in engine.alerts() {
                out.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td class=\"{}\">{}</td>\
                     <td>{:.2}</td><td>{:.2}</td><td>{}</td></tr>",
                    html_escape(&a.slo),
                    html_escape(&a.severity),
                    if a.firing { "firing" } else { "ok" },
                    if a.firing { "FIRING" } else { "ok" },
                    a.burn_short,
                    a.burn_long,
                    a.factor
                ));
            }
            out.push_str("</table>");
        }
        _ => out.push_str("<p class=\"labels\">no SLOs configured (set DFP_SLO_FILE)</p>"),
    }

    // Sparklines with event annotations.
    let events = audit::recent(64);
    out.push_str("<h2>Series</h2><div class=\"grid\">");
    for series in tsdb.plot_series(SPARK_POINTS) {
        if series.points.is_empty() {
            continue;
        }
        let last = series.points.last().expect("non-empty").1;
        out.push_str("<div class=\"card\">");
        out.push_str(&format!(
            "<span class=\"name\">{}</span> <span class=\"labels\">{}</span><br>\
             <span class=\"val\">{:.6}</span> <span class=\"labels\">{}</span>",
            html_escape(&series.name),
            html_escape(&series.labels),
            last,
            series.unit
        ));
        if series.kind == SeriesKind::Histogram {
            // Windowed percentiles under the sparkline.
            let mut stats = String::new();
            for (label, width) in WINDOWS {
                if let Some(q) = tsdb.window_quantiles(&series.name, &series.labels, width, now_ms)
                {
                    stats.push_str(&format!(" {label}: p50 {:.4}s p99 {:.4}s", q.p50, q.p99));
                }
            }
            if !stats.is_empty() {
                out.push_str(&format!(
                    "<br><span class=\"labels\">{}</span>",
                    html_escape(&stats)
                ));
            }
        }
        out.push_str(&sparkline(&series.points, &events));
        out.push_str("</div>");
    }
    out.push_str("</div>");

    // Audit timeline.
    out.push_str("<h2>Registry events</h2>");
    if events.is_empty() {
        out.push_str("<p class=\"labels\">none</p>");
    } else {
        out.push_str(
            "<table><tr><th>t</th><th>kind</th><th>model</th><th>version</th>\
             <th>outcome</th><th>ms</th><th>detail</th></tr>",
        );
        for e in events.iter().rev().take(20) {
            let bad = matches!(e.outcome.as_str(), "rejected" | "quarantined" | "io_error");
            out.push_str(&format!(
                "<tr{}><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.1}</td><td>{}</td></tr>",
                if bad { " class=\"warnrow\"" } else { "" },
                e.unix_ms,
                html_escape(&e.kind),
                html_escape(&e.model),
                e.version.map(|v| v.to_string()).unwrap_or_default(),
                html_escape(&e.outcome),
                e.duration_ms,
                html_escape(&e.detail)
            ));
        }
        out.push_str("</table>");
    }

    // Tail-sampled traces.
    if let Some(tail) = tail {
        let (offered, kept) = tail.stats();
        out.push_str(&format!(
            "<h2>Tail-sampled traces <span class=\"labels\">· kept {kept} of {offered} · threshold {} ns</span></h2>",
            tail.slow_threshold_ns()
        ));
        let traces = tail.traces();
        if traces.is_empty() {
            out.push_str("<p class=\"labels\">none kept</p>");
        } else {
            out.push_str(
                "<table><tr><th>request id</th><th>method</th><th>path</th>\
                 <th>status</th><th>dur ms</th><th>reason</th></tr>",
            );
            for t in traces.iter().rev().take(20) {
                out.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.3}</td><td>{}</td></tr>",
                    html_escape(&t.request_id),
                    html_escape(&t.method),
                    html_escape(&t.path),
                    t.status,
                    t.duration_ns as f64 / 1e6,
                    t.reason
                ));
            }
            out.push_str("</table>");
        }
    }

    out.push_str("</body></html>");
    out
}

/// One inline-SVG sparkline with audit events as vertical markers.
fn sparkline(points: &[(u64, f64)], events: &[audit::AuditEvent]) -> String {
    let t0 = points.first().expect("caller checks non-empty").0;
    let t1 = points
        .last()
        .expect("caller checks non-empty")
        .0
        .max(t0 + 1);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in points {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    if hi - lo < 1e-12 {
        hi = lo + 1.0;
    }
    let x = |ts: u64| (ts.saturating_sub(t0)) as f64 / (t1 - t0) as f64 * SPARK_W;
    let y = |v: f64| SPARK_H - (v - lo) / (hi - lo) * (SPARK_H - 4.0) - 2.0;
    let mut path = String::new();
    for (i, &(ts, v)) in points.iter().enumerate() {
        path.push_str(&format!(
            "{}{:.1},{:.1}",
            if i == 0 { "" } else { " " },
            x(ts),
            y(v)
        ));
    }
    let mut svg = format!(
        "<svg width=\"{SPARK_W}\" height=\"{SPARK_H}\" viewBox=\"0 0 {SPARK_W} {SPARK_H}\">\
         <polyline fill=\"none\" stroke=\"#6af\" stroke-width=\"1\" points=\"{path}\"/>"
    );
    for e in events {
        if e.unix_ms < t0 || e.unix_ms > t1 {
            continue;
        }
        let bad = matches!(e.outcome.as_str(), "rejected" | "quarantined" | "io_error");
        svg.push_str(&format!(
            "<line x1=\"{0:.1}\" x2=\"{0:.1}\" y1=\"0\" y2=\"{SPARK_H}\" stroke=\"{1}\" \
             stroke-dasharray=\"2,2\"><title>{2} {3} {4}</title></line>",
            x(e.unix_ms),
            if bad { "#f66" } else { "#6d6" },
            html_escape(&e.kind),
            html_escape(&e.model),
            html_escape(&e.outcome),
        ));
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::slo::SloSpec;
    use crate::tsdb::TsdbConfig;
    use std::time::Duration;

    #[test]
    fn dashboard_renders_svg_and_sections() {
        let r = Registry::new();
        let c = r.counter("dash_total", "d");
        let h = r.histogram("dash_lat_seconds", "d", &[0.01, 0.1]);
        let tsdb = Tsdb::new(&TsdbConfig::default());
        for i in 0..5u64 {
            c.add(10);
            h.observe_nanos(20_000_000);
            tsdb.ingest(1_000 * (i + 1), r.snapshot());
        }
        let engine = SloEngine::new(
            vec![SloSpec::new("avail", 0.99, "dash_total", "dash_err_total")],
            &r,
        );
        let tail = TailSampler::new(4);
        let html = render("dfp-serve", &tsdb, Some(&engine), Some(&tail), 5_000);
        assert!(html.contains("<svg"), "sparkline missing");
        assert!(html.contains("dash_total"));
        assert!(html.contains("SLO alerts"));
        assert!(html.contains("Tail-sampled traces"));
        // Histogram card shows windowed percentiles.
        assert!(html.contains("p99"), "{html}");
    }

    #[test]
    fn html_escaping_is_applied() {
        assert_eq!(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
