//! Declarative SLOs evaluated with multi-window multi-burn-rate rules.
//!
//! An [`SloSpec`] names an availability objective (an error-ratio budget
//! over a pair of counters) and optionally a latency objective (fraction of
//! requests under a threshold, from a histogram). The [`SloEngine`]
//! re-evaluates every spec after each TSDB collection tick using the
//! classic two-rule scheme from the Google SRE workbook:
//!
//! * **page** — burn rate > 14.4 sustained on *both* the 5 m and 1 h
//!   windows (exhausts a 30-day budget in ~6 h);
//! * **ticket** — burn rate > 6 on both 30 m and 6 h windows.
//!
//! *Burn rate* is `observed error ratio / allowed error ratio`; 1.0 means
//! spending budget exactly at the objective. Requiring both the short and
//! long window keeps alerts fast **and** hysteretic: the short window
//! trips quickly, the long window suppresses one-scrape blips, and after
//! recovery the short window also un-trips quickly.
//!
//! Windows clamp to retained data (see [`crate::tsdb`]), which is what
//! makes a burst fire within one collection interval of being sampled.
//! Specs loaded from `DFP_SLO_FILE` may override the rule windows — CI uses
//! second-scale windows so firing *and* resolution are demonstrable in a
//! smoke test.
//!
//! Evaluation surfaces three ways: `dfp_slo_burn_rate{slo=…,window=…}`
//! gauges on `/metrics`, WARN/INFO JSONL transitions on the log stream, and
//! the `GET /alerts` JSON document.

use crate::metrics::{GaugeF, Registry};
use crate::tsdb::Tsdb;
use std::sync::{Arc, Mutex};

/// One burn-rate rule: fire when both windows exceed `factor`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Alert severity label (`page`, `ticket`).
    pub severity: String,
    /// Short (fast-trip) window, milliseconds.
    pub short_ms: u64,
    /// Long (confirmation) window, milliseconds.
    pub long_ms: u64,
    /// Burn-rate threshold both windows must exceed.
    pub factor: f64,
}

/// The standard two-rule set: page on 5 m/1 h > 14.4, ticket on
/// 30 m/6 h > 6.
pub fn default_rules() -> Vec<BurnRule> {
    vec![
        BurnRule {
            severity: "page".to_string(),
            short_ms: 5 * 60 * 1000,
            long_ms: 60 * 60 * 1000,
            factor: 14.4,
        },
        BurnRule {
            severity: "ticket".to_string(),
            short_ms: 30 * 60 * 1000,
            long_ms: 6 * 60 * 60 * 1000,
            factor: 6.0,
        },
    ]
}

/// A latency objective riding on an availability spec: at least
/// `objective` of observations must sit at or under `threshold` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyObjective {
    /// Histogram family to read (e.g. `dfp_serve_predict_latency_seconds`).
    pub histogram: String,
    /// Rendered label pairs selecting the series (possibly empty).
    pub labels: String,
    /// Latency threshold in seconds.
    pub threshold: f64,
    /// Fraction of requests that must be ≤ threshold; defaults to the
    /// spec's availability objective when `None`.
    pub objective: Option<f64>,
}

/// One service-level objective over counters (+ optional latency).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Alert/gauge label for this SLO.
    pub name: String,
    /// Availability objective, e.g. `0.999` (99.9 % non-error).
    pub objective: f64,
    /// Counter family counting all requests.
    pub total: String,
    /// Label selector for `total` (possibly empty).
    pub total_labels: String,
    /// Counter family counting failed requests.
    pub errors: String,
    /// Label selector for `errors` (possibly empty).
    pub errors_labels: String,
    /// Optional latency objective.
    pub latency: Option<LatencyObjective>,
    /// Burn-rate rules; [`default_rules`] unless overridden.
    pub rules: Vec<BurnRule>,
}

impl SloSpec {
    /// An availability spec over two counters, with the default rules.
    pub fn new(
        name: impl Into<String>,
        objective: f64,
        total: impl Into<String>,
        errors: impl Into<String>,
    ) -> Self {
        SloSpec {
            name: name.into(),
            objective,
            total: total.into(),
            total_labels: String::new(),
            errors: errors.into(),
            errors_labels: String::new(),
            latency: None,
            rules: default_rules(),
        }
    }

    /// Adds a latency objective.
    pub fn with_latency(mut self, latency: LatencyObjective) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Replaces the burn-rate rules (empty input keeps the defaults).
    pub fn with_rules(mut self, rules: Vec<BurnRule>) -> Self {
        if !rules.is_empty() {
            self.rules = rules;
        }
        self
    }

    /// Parses a `DFP_SLO_FILE` document: a JSON array of spec objects.
    ///
    /// ```json
    /// [{"name": "predict-availability", "objective": 0.999,
    ///   "total": "dfp_serve_requests_total",
    ///   "errors": "dfp_serve_errors_total",
    ///   "latency": {"histogram": "dfp_serve_predict_latency_seconds",
    ///               "threshold_seconds": 0.25, "objective": 0.99},
    ///   "rules": [{"severity": "page", "short_ms": 300000,
    ///              "long_ms": 3600000, "factor": 14.4}]}]
    /// ```
    ///
    /// `total_labels` / `errors_labels` / `labels` select labelled series
    /// and default to the unlabelled one; `rules` defaults to
    /// [`default_rules`].
    pub fn parse_file(text: &str) -> Result<Vec<SloSpec>, String> {
        use crate::json::Value;
        let root = crate::json::parse(text).map_err(|e| format!("SLO file: {e:?}"))?;
        let Value::Arr(items) = root else {
            return Err("SLO file must be a JSON array of spec objects".to_string());
        };
        let mut specs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let ctx = |field: &str| format!("SLO spec #{i}: missing or invalid '{field}'");
            let name = item
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ctx("name"))?;
            let objective = item
                .get("objective")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| ctx("objective"))?;
            if !(0.0..1.0).contains(&objective) {
                return Err(format!("SLO spec #{i}: objective must be in [0, 1)"));
            }
            let total = item
                .get("total")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ctx("total"))?;
            let errors = item
                .get("errors")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ctx("errors"))?;
            let mut spec = SloSpec::new(name, objective, total, errors);
            if let Some(l) = item.get("total_labels").and_then(|v| v.as_str()) {
                spec.total_labels = l.to_string();
            }
            if let Some(l) = item.get("errors_labels").and_then(|v| v.as_str()) {
                spec.errors_labels = l.to_string();
            }
            if let Some(lat) = item.get("latency") {
                let histogram = lat
                    .get("histogram")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| ctx("latency.histogram"))?;
                let threshold = lat
                    .get("threshold_seconds")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| ctx("latency.threshold_seconds"))?;
                spec.latency = Some(LatencyObjective {
                    histogram: histogram.to_string(),
                    labels: lat
                        .get("labels")
                        .and_then(|v| v.as_str())
                        .unwrap_or_default()
                        .to_string(),
                    threshold,
                    objective: lat.get("objective").and_then(|v| v.as_f64()),
                });
            }
            if let Some(Value::Arr(rules)) = item.get("rules") {
                let mut parsed = Vec::with_capacity(rules.len());
                for rule in rules {
                    parsed.push(BurnRule {
                        severity: rule
                            .get("severity")
                            .and_then(|v| v.as_str())
                            .unwrap_or("page")
                            .to_string(),
                        short_ms: rule
                            .get("short_ms")
                            .and_then(|v| v.as_int())
                            .ok_or_else(|| ctx("rules[].short_ms"))?
                            as u64,
                        long_ms: rule
                            .get("long_ms")
                            .and_then(|v| v.as_int())
                            .ok_or_else(|| ctx("rules[].long_ms"))?
                            as u64,
                        factor: rule
                            .get("factor")
                            .and_then(|v| v.as_f64())
                            .ok_or_else(|| ctx("rules[].factor"))?,
                    });
                }
                spec = spec.with_rules(parsed);
            }
            specs.push(spec);
        }
        Ok(specs)
    }
}

/// Formats a window width for labels: `5m`, `1h`, `90s`, `250ms`.
pub fn fmt_window(ms: u64) -> String {
    if ms >= 3_600_000 && ms.is_multiple_of(3_600_000) {
        format!("{}h", ms / 3_600_000)
    } else if ms >= 60_000 && ms.is_multiple_of(60_000) {
        format!("{}m", ms / 60_000)
    } else if ms >= 1000 && ms.is_multiple_of(1000) {
        format!("{}s", ms / 1000)
    } else {
        format!("{ms}ms")
    }
}

/// Fraction of windowed observations strictly over `threshold` seconds,
/// interpolating inside the bucket that straddles the threshold.
/// Observations in the `+Inf` overflow bucket always count as over.
pub fn fraction_over(bounds: &[f64], cumulative: &[u64], threshold: f64) -> f64 {
    let total = cumulative.last().copied().unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let le_estimate = match bounds.iter().position(|&ub| threshold <= ub) {
        Some(idx) => {
            let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
            let prev = if idx == 0 { 0 } else { cumulative[idx - 1] };
            let in_bucket = (cumulative[idx] - prev) as f64;
            let width = bounds[idx] - lower;
            let frac = if width > 0.0 {
                ((threshold - lower) / width).clamp(0.0, 1.0)
            } else {
                1.0
            };
            prev as f64 + in_bucket * frac
        }
        // Threshold beyond the last finite bound: everything in the
        // overflow bucket is (conservatively) over.
        None => cumulative[bounds.len().saturating_sub(1)] as f64,
    };
    ((total as f64 - le_estimate) / total as f64).clamp(0.0, 1.0)
}

#[derive(Debug, Clone, Default)]
struct AlertState {
    firing: bool,
    since_ms: u64,
    burn_short: f64,
    burn_long: f64,
}

/// A read-only view of one alert instance (spec × rule) for rendering.
#[derive(Debug, Clone)]
pub struct AlertView {
    /// SLO name.
    pub slo: String,
    /// Rule severity.
    pub severity: String,
    /// Short window, milliseconds.
    pub short_window_ms: u64,
    /// Long window, milliseconds.
    pub long_window_ms: u64,
    /// Burn-rate threshold.
    pub factor: f64,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// When the current firing episode began (Unix ms; 0 when not firing).
    pub since_ms: u64,
    /// Last evaluated short-window burn rate.
    pub burn_short: f64,
    /// Last evaluated long-window burn rate.
    pub burn_long: f64,
}

/// Evaluates a fixed set of [`SloSpec`]s against a [`Tsdb`] after each
/// collection tick and owns the alert state machine.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    /// Per spec, per rule: `(short-window gauge, long-window gauge)`.
    gauges: Vec<Vec<(Arc<GaugeF>, Arc<GaugeF>)>>,
    states: Mutex<Vec<Vec<AlertState>>>,
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("specs", &self.specs.len())
            .finish_non_exhaustive()
    }
}

impl SloEngine {
    /// Builds the engine and registers one `dfp_slo_burn_rate` gauge per
    /// (SLO, window) in `registry` so burn rates are scrapeable.
    pub fn new(specs: Vec<SloSpec>, registry: &Registry) -> SloEngine {
        const HELP: &str =
            "Error-budget burn rate per SLO and window (1 = spending exactly at objective)";
        let gauges = specs
            .iter()
            .map(|spec| {
                spec.rules
                    .iter()
                    .map(|rule| {
                        let short = fmt_window(rule.short_ms);
                        let long = fmt_window(rule.long_ms);
                        (
                            registry.gauge_f_with(
                                "dfp_slo_burn_rate",
                                HELP,
                                &[("slo", &spec.name), ("window", &short)],
                            ),
                            registry.gauge_f_with(
                                "dfp_slo_burn_rate",
                                HELP,
                                &[("slo", &spec.name), ("window", &long)],
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        let states = specs
            .iter()
            .map(|s| vec![AlertState::default(); s.rules.len()])
            .collect();
        SloEngine {
            specs,
            gauges,
            states: Mutex::new(states),
        }
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Burn rate of `spec` over one window ending at `now_ms`: the max of
    /// the availability burn and (when configured) the latency burn.
    fn burn(&self, spec: &SloSpec, tsdb: &Tsdb, window_ms: u64, now_ms: u64) -> f64 {
        let budget = (1.0 - spec.objective).max(1e-9);
        let total = tsdb
            .counter_increase(&spec.total, &spec.total_labels, window_ms, now_ms)
            .map(|(v, _)| v)
            .unwrap_or(0);
        let errors = tsdb
            .counter_increase(&spec.errors, &spec.errors_labels, window_ms, now_ms)
            .map(|(v, _)| v)
            .unwrap_or(0);
        let availability_burn = if total == 0 {
            0.0
        } else {
            (errors.min(total) as f64 / total as f64) / budget
        };
        let latency_burn = spec
            .latency
            .as_ref()
            .and_then(|lat| {
                let (bounds, cumulative) =
                    tsdb.window_buckets(&lat.histogram, &lat.labels, window_ms, now_ms)?;
                let bad = fraction_over(&bounds, &cumulative, lat.threshold);
                let lat_budget = (1.0 - lat.objective.unwrap_or(spec.objective)).max(1e-9);
                Some(bad / lat_budget)
            })
            .unwrap_or(0.0);
        availability_burn.max(latency_burn)
    }

    /// Re-evaluates every rule: updates gauges, flips alert states, and
    /// logs WARN on fire / INFO on resolve transitions.
    pub fn evaluate(&self, tsdb: &Tsdb, now_ms: u64) {
        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        for (si, spec) in self.specs.iter().enumerate() {
            for (ri, rule) in spec.rules.iter().enumerate() {
                let burn_short = self.burn(spec, tsdb, rule.short_ms, now_ms);
                let burn_long = self.burn(spec, tsdb, rule.long_ms, now_ms);
                let (g_short, g_long) = &self.gauges[si][ri];
                g_short.set(burn_short);
                g_long.set(burn_long);
                let firing = burn_short > rule.factor && burn_long > rule.factor;
                let state = &mut states[si][ri];
                state.burn_short = burn_short;
                state.burn_long = burn_long;
                if firing && !state.firing {
                    state.firing = true;
                    state.since_ms = now_ms;
                    crate::log::warn(
                        "dfp_obs::slo",
                        "slo burn-rate alert firing",
                        &[
                            ("slo", &spec.name),
                            ("severity", &rule.severity),
                            ("burn_short", &format!("{burn_short:.2}")),
                            ("burn_long", &format!("{burn_long:.2}")),
                            ("factor", &format!("{}", rule.factor)),
                        ],
                    );
                } else if !firing && state.firing {
                    state.firing = false;
                    state.since_ms = 0;
                    crate::log::info(
                        "dfp_obs::slo",
                        "slo burn-rate alert resolved",
                        &[("slo", &spec.name), ("severity", &rule.severity)],
                    );
                }
            }
        }
    }

    /// Current state of every alert instance.
    pub fn alerts(&self) -> Vec<AlertView> {
        let states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (si, spec) in self.specs.iter().enumerate() {
            for (ri, rule) in spec.rules.iter().enumerate() {
                let state = &states[si][ri];
                out.push(AlertView {
                    slo: spec.name.clone(),
                    severity: rule.severity.clone(),
                    short_window_ms: rule.short_ms,
                    long_window_ms: rule.long_ms,
                    factor: rule.factor,
                    firing: state.firing,
                    since_ms: state.since_ms,
                    burn_short: state.burn_short,
                    burn_long: state.burn_long,
                });
            }
        }
        out
    }

    /// Number of currently firing alert instances.
    pub fn firing_count(&self) -> usize {
        self.alerts().iter().filter(|a| a.firing).count()
    }

    /// The `GET /alerts` document (parseable by [`crate::json`]).
    pub fn render_alerts_json(&self, now_ms: u64) -> String {
        let alerts = self.alerts();
        let firing = alerts.iter().filter(|a| a.firing).count();
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"now_ms\":{now_ms},\"firing\":{firing},\"alerts\":["
        ));
        for (i, a) in alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"slo\":");
            crate::json::escape_into(&mut out, &a.slo);
            out.push_str(",\"severity\":");
            crate::json::escape_into(&mut out, &a.severity);
            out.push_str(&format!(
                ",\"state\":\"{}\",\"since_ms\":{},\"burn_short\":{},\"burn_long\":{},\"short_window_ms\":{},\"long_window_ms\":{},\"factor\":{}}}",
                if a.firing { "firing" } else { "ok" },
                a.since_ms,
                finite(a.burn_short),
                finite(a.burn_long),
                a.short_window_ms,
                a.long_window_ms,
                finite(a.factor)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::tsdb::TsdbConfig;
    use std::time::Duration;

    fn tsdb() -> Tsdb {
        Tsdb::new(
            &TsdbConfig::default()
                .with_interval(Duration::from_millis(1000))
                .with_retain(Duration::from_secs(3600)),
        )
    }

    #[test]
    fn parse_file_round_trip() {
        let text = r#"[
          {"name": "avail", "objective": 0.999,
           "total": "req_total", "errors": "err_total",
           "latency": {"histogram": "lat_seconds", "threshold_seconds": 0.25},
           "rules": [{"severity": "page", "short_ms": 1000, "long_ms": 4000, "factor": 2.0}]}
        ]"#;
        let specs = SloSpec::parse_file(text).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "avail");
        assert_eq!(specs[0].rules.len(), 1);
        assert_eq!(specs[0].rules[0].short_ms, 1000);
        let lat = specs[0].latency.as_ref().unwrap();
        assert_eq!(lat.threshold, 0.25);
        assert!(SloSpec::parse_file("{}").is_err());
        assert!(SloSpec::parse_file(r#"[{"name":"x"}]"#).is_err());
    }

    #[test]
    fn window_labels() {
        assert_eq!(fmt_window(300_000), "5m");
        assert_eq!(fmt_window(3_600_000), "1h");
        assert_eq!(fmt_window(90_000), "90s");
        assert_eq!(fmt_window(250), "250ms");
    }

    #[test]
    fn fraction_over_interpolates() {
        let bounds = [0.1, 0.2];
        // 50 ≤ 0.1, 50 in (0.1, 0.2], none over.
        let cum = [50, 100, 100];
        assert!((fraction_over(&bounds, &cum, 0.2) - 0.0).abs() < 1e-12);
        assert!((fraction_over(&bounds, &cum, 0.15) - 0.25).abs() < 1e-12);
        // Overflow bucket counts as over.
        assert!((fraction_over(&bounds, &[0, 0, 10], 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(fraction_over(&bounds, &[0, 0, 0], 0.1), 0.0);
    }

    #[test]
    fn burst_fires_then_recovery_resolves() {
        let r = Registry::new();
        let total = r.counter("req_total", "t");
        let errors = r.counter("err_total", "e");
        let store = tsdb();
        let spec =
            SloSpec::new("avail", 0.99, "req_total", "err_total").with_rules(vec![BurnRule {
                severity: "page".to_string(),
                short_ms: 2_000,
                long_ms: 4_000,
                factor: 2.0,
            }]);
        let engine = SloEngine::new(vec![spec], &r);

        // Clean baseline.
        store.ingest(1_000, r.snapshot());
        total.add(100);
        store.ingest(2_000, r.snapshot());
        engine.evaluate(&store, 2_000);
        assert_eq!(engine.firing_count(), 0);

        // Error burst: next tick must fire (windows clamp to data).
        total.add(100);
        errors.add(100);
        store.ingest(3_000, r.snapshot());
        engine.evaluate(&store, 3_000);
        assert_eq!(engine.firing_count(), 1, "{:?}", engine.alerts());

        // Recovery: healthy traffic until the burst ages out of both
        // windows (ticks every second; windows are 2 s / 4 s).
        for i in 0..8u64 {
            total.add(100);
            store.ingest(4_000 + i * 1_000, r.snapshot());
            engine.evaluate(&store, 4_000 + i * 1_000);
        }
        assert_eq!(engine.firing_count(), 0, "{:?}", engine.alerts());
        let json = engine.render_alerts_json(12_000);
        let parsed = crate::json::parse(&json).expect("alerts JSON parses");
        assert_eq!(parsed.get("firing").and_then(|v| v.as_int()), Some(0));
    }

    #[test]
    fn latency_objective_burns_budget() {
        let r = Registry::new();
        let total = r.counter("req_total", "t");
        let h = r.histogram("lat_seconds", "l", &[0.01, 0.1, 1.0]);
        let store = tsdb();
        let spec = SloSpec::new("lat", 0.9, "req_total", "err_total")
            .with_latency(LatencyObjective {
                histogram: "lat_seconds".to_string(),
                labels: String::new(),
                threshold: 0.1,
                objective: None,
            })
            .with_rules(vec![BurnRule {
                severity: "page".to_string(),
                short_ms: 2_000,
                long_ms: 4_000,
                factor: 2.0,
            }]);
        let engine = SloEngine::new(vec![spec], &r);
        store.ingest(1_000, r.snapshot());
        // All requests succeed (no error counter) but are slow: 100% over
        // the 0.1 s threshold against a 10% budget → burn 10.
        total.add(10);
        for _ in 0..10 {
            h.observe_nanos(500_000_000);
        }
        store.ingest(2_000, r.snapshot());
        engine.evaluate(&store, 2_000);
        assert_eq!(engine.firing_count(), 1, "{:?}", engine.alerts());
    }
}
