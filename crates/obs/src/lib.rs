//! # dfp-obs — observability for the dfp workspace
//!
//! A std-only observability layer threaded through every crate of the
//! framework: mining, selection, the pipeline, model persistence, and
//! serving. Three instruments, one contract:
//!
//! * **Spans** ([`span`]) — monotonic wall-clock intervals with
//!   parent/child nesting, buffered per thread and exported as JSONL
//!   (`DFP_TRACE=<path>`, or [`trace::TraceSession`] programmatically).
//!   When tracing is disabled — the default — creating a span costs a
//!   single relaxed atomic load, exactly like `dfp-fault`'s disarmed path.
//! * **Metrics** ([`metrics`]) — named counters, gauges and histograms in
//!   a registry rendered in the Prometheus text exposition format. The
//!   process-wide [`metrics::global`] registry carries the mining /
//!   selection / pipeline families; `dfp-serve` additionally keeps a
//!   per-server registry so tests observe isolated counters.
//! * **Events** ([`log`]) — structured JSONL lines on stderr, levelled via
//!   `DFP_LOG=<error|warn|info|debug|trace>` (silent when unset).
//!
//! Layered on top, the temporal stack: [`tsdb`] (a background collector
//! samples registries into ring-buffered history with windowed
//! percentiles), [`slo`] (multi-window multi-burn-rate alerting over that
//! history), [`tail`] (tail-sampled slow/5xx request capture), [`audit`]
//! (control-plane event ring), and [`dashboard`] (a self-contained HTML
//! operator view). The `dfp-top` binary renders `/metrics/history` live in
//! a terminal.
//!
//! ## Determinism contract
//!
//! Observability never alters results. Span guards and counters only read
//! clocks and bump atomics — they never branch on data, never allocate on
//! the disabled path, and are safe to leave in the hottest loops. The
//! workspace-level proptest suite (`tests/observability.rs`) enforces that
//! miner / MMRFS / CV outputs are bit-identical with tracing on vs off and
//! at 1 vs 4 worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod dashboard;
pub mod json;
pub mod log;
pub mod metrics;
pub mod promcheck;
pub mod slo;
pub mod span;
pub mod tail;
pub mod trace;
pub mod tsdb;

pub use log::{debug, error, info, trace_event, warn, Level};
pub use metrics::{Counter, Gauge, GaugeF, Histogram, Registry};
pub use slo::{SloEngine, SloSpec};
pub use span::{set_tracing, span, tracing_enabled, Span};
pub use tail::TailSampler;
pub use trace::TraceSession;
pub use tsdb::{Collector, Tsdb, TsdbConfig};
