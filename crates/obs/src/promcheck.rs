//! A Prometheus text-exposition conformance checker.
//!
//! [`check`] parses an entire `/metrics` payload and verifies the
//! invariants a real Prometheus scraper relies on:
//!
//! * every sample belongs to a family announced by a `# HELP` **and**
//!   `# TYPE` pair appearing before its first sample;
//! * every sample value parses as a float; no series appears twice;
//! * histograms are well-formed: `le` labels parse, are strictly
//!   ascending, never use scientific notation, buckets are cumulative,
//!   a `+Inf` bucket exists and equals `_count`, and `_sum` is present;
//! * OpenMetrics exemplar suffixes (`… # {k="v"} value ts`) are accepted
//!   on `_bucket` lines only, and their label set, value, and timestamp
//!   must themselves parse.
//!
//! Used by the serve conformance tests and the `dfp-metrics-check` binary
//! that CI runs against a live scrape.

use std::collections::{BTreeMap, HashMap, HashSet};

/// What the checker verified, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Families with a HELP/TYPE header.
    pub families: usize,
    /// Distinct (name, labels) series seen.
    pub series: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Bucket lines carrying a well-formed exemplar suffix.
    pub exemplars: usize,
}

/// One conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// 1-based line number (0 for whole-document errors).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[derive(Debug)]
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
    line: usize,
}

/// Checks `text` as a Prometheus text exposition.
pub fn check(text: &str) -> Result<Stats, Vec<CheckError>> {
    let mut errors = Vec::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut exemplars = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            match rest.split_once(' ') {
                Some((name, help)) if !help.is_empty() => {
                    if !helped.insert(name.to_string()) {
                        errors.push(err(line_no, format!("duplicate HELP for '{name}'")));
                    }
                }
                _ => errors.push(err(line_no, "HELP line missing name or text".into())),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            match rest.split_once(' ') {
                Some((name, kind))
                    if matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) =>
                {
                    if !helped.contains(name) {
                        errors.push(err(line_no, format!("TYPE for '{name}' precedes its HELP")));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        errors.push(err(line_no, format!("duplicate TYPE for '{name}'")));
                    }
                }
                _ => errors.push(err(
                    line_no,
                    "TYPE line with missing or unknown kind".into(),
                )),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // An OpenMetrics exemplar rides after ` # ` on a bucket line; split
        // it off so the sample itself parses, then validate it separately.
        let (sample_part, exemplar_part) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        match parse_sample(sample_part) {
            Ok((name, labels, value)) => {
                if let Some(ex) = exemplar_part {
                    if !name.ends_with("_bucket") {
                        errors.push(err(
                            line_no,
                            format!("exemplar on non-bucket sample '{name}'"),
                        ));
                    }
                    match check_exemplar(ex) {
                        Ok(()) => exemplars += 1,
                        Err(message) => errors.push(err(line_no, message)),
                    }
                }
                samples.push(Sample {
                    name,
                    labels,
                    value,
                    line: line_no,
                });
            }
            Err(message) => errors.push(err(line_no, message)),
        }
    }

    // Families announced but orphaned either way.
    for name in &helped {
        if !types.contains_key(name) {
            errors.push(err(0, format!("'{name}' has HELP but no TYPE")));
        }
    }

    let mut seen_series: HashSet<String> = HashSet::new();
    for sample in &samples {
        let family = resolve_family(&sample.name, &types);
        match family {
            Some(_) => {}
            None => errors.push(err(
                sample.line,
                format!("sample '{}' has no HELP/TYPE header", sample.name),
            )),
        }
        let key = format!("{}{:?}", sample.name, sample.labels);
        if !seen_series.insert(key) {
            errors.push(err(
                sample.line,
                format!("duplicate series for '{}'", sample.name),
            ));
        }
    }

    check_histograms(&samples, &types, &mut errors);

    if errors.is_empty() {
        Ok(Stats {
            families: types.len(),
            series: seen_series.len(),
            samples: samples.len(),
            exemplars,
        })
    } else {
        errors.sort_by_key(|e| e.line);
        Err(errors)
    }
}

/// Validates the text after a bucket line's ` # ` separator:
/// `{k="v",…} value [unix_ts]`, with a non-empty label set and finite
/// decimal value.
fn check_exemplar(text: &str) -> Result<(), String> {
    let body = text
        .strip_prefix('{')
        .ok_or_else(|| "exemplar missing label set".to_string())?;
    let (labels, after) = parse_labels(body).map_err(|e| format!("exemplar {e}"))?;
    if labels.is_empty() {
        return Err("exemplar with empty label set".to_string());
    }
    let mut fields = after.split_ascii_whitespace();
    let value = fields
        .next()
        .ok_or_else(|| "exemplar missing value".to_string())?;
    value
        .parse::<f64>()
        .map_err(|_| format!("unparseable exemplar value '{value}'"))?;
    if let Some(ts) = fields.next() {
        ts.parse::<f64>()
            .map_err(|_| format!("unparseable exemplar timestamp '{ts}'"))?;
    }
    if fields.next().is_some() {
        return Err("trailing tokens after exemplar timestamp".to_string());
    }
    Ok(())
}

fn err(line: usize, message: String) -> CheckError {
    CheckError { line, message }
}

/// Maps a sample name to its announced family, handling histogram suffixes.
fn resolve_family<'a>(name: &'a str, types: &HashMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base);
            }
        }
    }
    None
}

fn check_histograms(
    samples: &[Sample],
    types: &HashMap<String, String>,
    errors: &mut Vec<CheckError>,
) {
    // Group by (histogram family, labels-without-le).
    type Group = (Vec<(f64, f64, usize, String)>, Option<f64>, Option<f64>);
    let mut groups: BTreeMap<(String, String), Group> = BTreeMap::new();
    for sample in samples {
        let Some(base) = resolve_family(&sample.name, types) else {
            continue;
        };
        if types.get(base).map(String::as_str) != Some("histogram") {
            continue;
        }
        let mut labels = sample.labels.clone();
        let le = labels.remove("le");
        let group_key = (base.to_string(), format!("{labels:?}"));
        let entry = groups.entry(group_key).or_default();
        if sample.name.ends_with("_bucket") {
            let Some(le_text) = le else {
                errors.push(err(
                    sample.line,
                    format!("'{}' bucket without le", sample.name),
                ));
                continue;
            };
            let bound = if le_text == "+Inf" {
                f64::INFINITY
            } else {
                if le_text.contains('e') || le_text.contains('E') {
                    errors.push(err(
                        sample.line,
                        format!("scientific-notation le label '{le_text}'"),
                    ));
                }
                match le_text.parse::<f64>() {
                    Ok(b) => b,
                    Err(_) => {
                        errors.push(err(sample.line, format!("unparseable le '{le_text}'")));
                        continue;
                    }
                }
            };
            entry.0.push((bound, sample.value, sample.line, le_text));
        } else if sample.name.ends_with("_sum") {
            entry.1 = Some(sample.value);
        } else if sample.name.ends_with("_count") {
            entry.2 = Some(sample.value);
        }
    }

    for ((family, labels), (mut buckets, sum, count)) in groups {
        let ctx = if labels == "{}" {
            family.clone()
        } else {
            format!("{family}{labels}")
        };
        if buckets.is_empty() {
            errors.push(err(0, format!("histogram '{ctx}' has no buckets")));
            continue;
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are not NaN"));
        for window in buckets.windows(2) {
            if window[0].0 == window[1].0 {
                errors.push(err(
                    window[1].2,
                    format!("histogram '{ctx}' repeats le=\"{}\"", window[1].3),
                ));
            }
            if window[1].1 < window[0].1 {
                errors.push(err(
                    window[1].2,
                    format!(
                        "histogram '{ctx}' buckets not cumulative: le=\"{}\" ({}) < le=\"{}\" ({})",
                        window[1].3, window[1].1, window[0].3, window[0].1
                    ),
                ));
            }
        }
        let last = buckets.last().expect("non-empty");
        if !last.0.is_infinite() {
            errors.push(err(
                last.2,
                format!("histogram '{ctx}' missing +Inf bucket"),
            ));
        }
        match count {
            None => errors.push(err(0, format!("histogram '{ctx}' missing _count"))),
            Some(c) if last.0.is_infinite() && c != last.1 => errors.push(err(
                last.2,
                format!("histogram '{ctx}' _count {c} != +Inf bucket {}", last.1),
            )),
            Some(_) => {}
        }
        if sum.is_none() {
            errors.push(err(0, format!("histogram '{ctx}' missing _sum")));
        }
    }
}

/// Parses `name{k="v",...} value` (labels optional).
fn parse_sample(line: &str) -> Result<(String, BTreeMap<String, String>, f64), String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or_else(|| "sample line without value".to_string())?;
    let name = &line[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name '{name}'"));
    }
    let mut labels = BTreeMap::new();
    let mut rest = &line[name_end..];
    if let Some(body) = rest.strip_prefix('{') {
        let (parsed, after) = parse_labels(body)?;
        labels = parsed;
        rest = after;
    }
    let value_text = rest.trim();
    if value_text.is_empty() {
        return Err("missing sample value".to_string());
    }
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("unparseable value '{other}'"))?,
    };
    Ok((name.to_string(), labels, value))
}

/// Parses the inside of a label set; returns remaining text after `}`.
fn parse_labels(body: &str) -> Result<(BTreeMap<String, String>, &str), String> {
    let mut labels = BTreeMap::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches([' ', ',']);
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without '='".to_string())?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| "label value not quoted".to_string())?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| "unterminated label value".to_string())?;
            match c {
                '"' => {
                    rest = &rest[i + 1..];
                    break;
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| "dangling escape in label".to_string())?;
                    match esc {
                        '"' => value.push('"'),
                        '\\' => value.push('\\'),
                        'n' => value.push('\n'),
                        other => return Err(format!("unknown label escape '\\{other}'")),
                    }
                }
                c => value.push(c),
            }
        }
        if labels.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate label '{key}'"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP req_total Requests.\n\
# TYPE req_total counter\n\
req_total 4\n\
# HELP lat_seconds Latency.\n\
# TYPE lat_seconds histogram\n\
lat_seconds_bucket{le=\"0.001\"} 1\n\
lat_seconds_bucket{le=\"0.1\"} 3\n\
lat_seconds_bucket{le=\"+Inf\"} 4\n\
lat_seconds_sum 0.123456789\n\
lat_seconds_count 4\n";

    #[test]
    fn accepts_conformant_text() {
        let stats = check(GOOD).unwrap();
        assert_eq!(stats.families, 2);
        assert_eq!(stats.samples, 6);
    }

    #[test]
    fn rejects_sample_without_header() {
        let errs = check("orphan_total 1\n").unwrap_err();
        assert!(errs[0].message.contains("no HELP/TYPE"), "{errs:?}");
    }

    #[test]
    fn rejects_type_without_help() {
        let errs = check("# TYPE x counter\nx 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("precedes its HELP")));
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = GOOD.replace("le=\"0.1\"} 3", "le=\"0.1\"} 0");
        let errs = check(&text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("not cumulative")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = GOOD.replace("lat_seconds_count 4", "lat_seconds_count 5");
        let errs = check(&text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("_count")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let text = GOOD.replace("lat_seconds_bucket{le=\"+Inf\"} 4\n", "");
        let errs = check(&text).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("+Inf")), "{errs:?}");
    }

    #[test]
    fn rejects_scientific_le() {
        let text = GOOD.replace("le=\"0.001\"", "le=\"1e-3\"");
        let errs = check(&text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("scientific")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_duplicate_series() {
        let text = format!("{GOOD}req_total 9\n");
        let errs = check(&text).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate series")));
    }

    #[test]
    fn accepts_exemplar_on_bucket_lines() {
        let text = GOOD.replace(
            "lat_seconds_bucket{le=\"0.1\"} 3",
            "lat_seconds_bucket{le=\"0.1\"} 3 # {request_id=\"req-7\"} 0.02 1700000000.123",
        );
        let stats = check(&text).unwrap();
        assert_eq!(stats.exemplars, 1);
        assert_eq!(stats.samples, 6);
    }

    #[test]
    fn rejects_exemplar_off_bucket_lines() {
        let text = GOOD.replace("req_total 4", "req_total 4 # {request_id=\"x\"} 1");
        let errs = check(&text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("non-bucket")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_malformed_exemplar() {
        let text = GOOD.replace(
            "lat_seconds_bucket{le=\"0.1\"} 3",
            "lat_seconds_bucket{le=\"0.1\"} 3 # {} 0.02",
        );
        let errs = check(&text).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("empty label set")),
            "{errs:?}"
        );
    }

    #[test]
    fn parses_labelled_samples() {
        let (name, labels, value) = parse_sample("x_total{a=\"1\",b=\"two \\\"2\\\"\"} 7").unwrap();
        assert_eq!(name, "x_total");
        assert_eq!(labels.get("a").map(String::as_str), Some("1"));
        assert_eq!(labels.get("b").map(String::as_str), Some("two \"2\""));
        assert_eq!(value, 7.0);
    }
}
