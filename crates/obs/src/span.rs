//! Span guards: monotonic wall-clock intervals with parent/child nesting.
//!
//! A [`span`] call returns a [`Span`] guard; the interval closes when the
//! guard drops. Spans nest per thread — the innermost open span on the
//! current thread becomes the parent of the next one — and completed
//! records accumulate in a per-thread buffer that flushes into a global
//! sink when it grows past a watermark, when a root span completes, or
//! when the thread exits. [`drain`] empties the sink for export.
//!
//! ## Cost model
//!
//! Tracing is off by default. On the disabled path `span()` performs one
//! relaxed atomic load and returns an inert guard — no clock read, no
//! allocation, no thread-local access — mirroring `dfp-fault`'s disarmed
//! fast path. Instrumentation must therefore never be *conditionally
//! compiled out*: leaving it in place costs nothing measurable and keeps
//! release and traced binaries identical in behaviour.
//!
//! Spans never alter results: guards only read the monotonic clock and
//! append to buffers. The workspace proptest suite verifies bit-identical
//! pipeline outputs with tracing on vs off.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Completed-span sink, drained by [`drain`] for export.
static SINK: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Per-thread buffer watermark: flush to the sink once this many records
/// accumulate (long-lived worker threads also flush on root completion).
const FLUSH_AT: usize = 256;

/// Whether span recording is currently enabled (one relaxed load).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Globally enables or disables span recording.
///
/// Usually managed by [`crate::trace::TraceSession`]; direct use is for
/// tests and embedders.
pub fn set_tracing(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are meaningful.
        epoch();
    }
    TRACING.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// One completed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, dot-separated by convention (`"mine.fpgrowth"`).
    pub name: &'static str,
    /// Unique id (> 0) within the process.
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Attributes attached via [`Span::attr`], in insertion order.
    pub attrs: Vec<(&'static str, String)>,
}

struct ThreadBuf {
    tid: u64,
    /// Ids of currently-open spans, innermost last.
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.append(&mut self.buf);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
    });
}

struct SpanMeta {
    name: &'static str,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

/// A live span guard; the interval closes when it drops.
///
/// Inert (all methods are no-ops) when tracing was disabled at creation.
pub struct Span {
    meta: Option<SpanMeta>,
}

/// Opens a span named `name` on the current thread.
///
/// With tracing disabled this is a single relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !tracing_enabled() {
        return Span { meta: None };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let meta = TLS
        .try_with(|tls| {
            let mut tls = tls.borrow_mut();
            let parent = tls.stack.last().copied().unwrap_or(0);
            tls.stack.push(id);
            SpanMeta {
                name,
                id,
                parent,
                tid: tls.tid,
                start_ns: now_ns(),
                attrs: Vec::new(),
            }
        })
        .ok();
    Span { meta }
}

impl Span {
    /// Whether this guard is recording.
    pub fn is_active(&self) -> bool {
        self.meta.is_some()
    }

    /// Attaches a key/value attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(meta) = &mut self.meta {
            meta.attrs.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(meta) = self.meta.take() else {
            return;
        };
        let end_ns = now_ns();
        let record = SpanRecord {
            name: meta.name,
            id: meta.id,
            parent: meta.parent,
            tid: meta.tid,
            start_ns: meta.start_ns,
            end_ns,
            attrs: meta.attrs,
        };
        let pushed = TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            // Spans drop in LIFO order, so this id is the innermost open one;
            // defend anyway against a guard smuggled across scopes.
            if tls.stack.last() == Some(&record.id) {
                tls.stack.pop();
            } else {
                tls.stack.retain(|&open| open != record.id);
            }
            tls.buf.push(record.clone());
            if tls.buf.len() >= FLUSH_AT || tls.stack.is_empty() {
                tls.flush();
            }
        });
        if pushed.is_err() {
            // Thread-local already destroyed (thread teardown): go direct.
            let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
            sink.push(record);
        }
    }
}

/// Flushes the calling thread's buffer and takes every completed span
/// accumulated so far. Other threads' *unflushed* buffers are not included,
/// but worker threads flush whenever a root span completes, so steady-state
/// loss is limited to spans still open elsewhere.
pub fn drain() -> Vec<SpanRecord> {
    let _ = TLS.try_with(|tls| tls.borrow_mut().flush());
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

/// Serialises access to the global tracing toggle across unit tests.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing(false);
        drain();
        {
            let mut s = span("test.span.disabled");
            s.attr("k", 1);
            assert!(!s.is_active());
        }
        assert!(drain().iter().all(|r| r.name != "test.span.disabled"));
    }

    #[test]
    fn disabled_span_is_a_single_atomic_load() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing(false);
        let start = std::time::Instant::now();
        const N: u32 = 1_000_000;
        for _ in 0..N {
            let _sp = span("test.span.noop");
        }
        let per_ns = start.elapsed().as_nanos() / u128::from(N);
        eprintln!("disabled span: ~{per_ns} ns/call over {N} calls");
        // Release builds measure ~1 ns; the ceiling only guards against the
        // fast path accidentally growing a lock or allocation (debug builds
        // included).
        assert!(per_ns < 1_000, "disabled span cost {per_ns} ns/call");
    }

    #[test]
    fn spans_nest_and_record() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing(true);
        drain();
        {
            let mut outer = span("test.span.outer");
            outer.attr("n", 42);
            let _inner = span("test.span.inner");
        }
        set_tracing(false);
        let records = drain();
        let outer = records
            .iter()
            .find(|r| r.name == "test.span.outer")
            .expect("outer recorded");
        let inner = records
            .iter()
            .find(|r| r.name == "test.span.inner")
            .expect("inner recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.tid, inner.tid);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(outer.attrs, vec![("n", "42".to_string())]);
        // Inner drops first, so it is buffered before outer.
        let io = records.iter().position(|r| r.id == inner.id).unwrap();
        let oo = records.iter().position(|r| r.id == outer.id).unwrap();
        assert!(io < oo);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing(true);
        drain();
        {
            let _root = span("test.span.root");
            let _ = span("test.span.a");
            let _ = span("test.span.b");
        }
        set_tracing(false);
        let records = drain();
        let root = records.iter().find(|r| r.name == "test.span.root").unwrap();
        for child in ["test.span.a", "test.span.b"] {
            let r = records.iter().find(|r| r.name == child).unwrap();
            assert_eq!(r.parent, root.id, "{child}");
        }
    }

    #[test]
    fn cross_thread_spans_are_roots_with_distinct_tids() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_tracing(true);
        drain();
        let main_tid = {
            let _s = span("test.span.main");
            std::thread::spawn(|| {
                let _w = span("test.span.worker");
            })
            .join()
            .unwrap();
            TLS.with(|t| t.borrow().tid)
        };
        set_tracing(false);
        let records = drain();
        let worker = records
            .iter()
            .find(|r| r.name == "test.span.worker")
            .expect("worker flushed on thread exit");
        assert_eq!(worker.parent, 0);
        assert_ne!(worker.tid, main_tid);
    }
}
