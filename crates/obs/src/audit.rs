//! Structured audit events for control-plane actions.
//!
//! The model registry records every swap / promote / rollback / quarantine
//! / prune here. Each event goes two places at once: a JSONL log line (via
//! [`crate::log`], so `DFP_LOG=info` operators see them in the stream) and
//! a process-global bounded ring that the dashboard and `/metrics/history`
//! read back to annotate timelines. The ring is deliberately small — audit
//! events are rare, human-scale actions, not metrics.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Maximum events retained in the process-global ring.
pub const RING_CAP: usize = 256;

/// One control-plane action, as recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// Wall-clock time of the action, Unix milliseconds.
    pub unix_ms: u64,
    /// Action kind: `swap`, `rollback`, `quarantine`, `prune`, `recover`.
    pub kind: String,
    /// Model name the action applied to.
    pub model: String,
    /// Artifact version, when one is in play.
    pub version: Option<u64>,
    /// Outcome: `promoted`, `rejected`, `quarantined`, `deleted`, …
    pub outcome: String,
    /// How long the action took, milliseconds.
    pub duration_ms: f64,
    /// Free-form detail (error text, file names).
    pub detail: String,
}

impl AuditEvent {
    /// Appends this event as a JSON object.
    pub fn render_json_into(&self, out: &mut String) {
        out.push_str(&format!("{{\"unix_ms\":{},\"kind\":", self.unix_ms));
        crate::json::escape_into(out, &self.kind);
        out.push_str(",\"model\":");
        crate::json::escape_into(out, &self.model);
        match self.version {
            Some(v) => out.push_str(&format!(",\"version\":{v}")),
            None => out.push_str(",\"version\":null"),
        }
        out.push_str(",\"outcome\":");
        crate::json::escape_into(out, &self.outcome);
        out.push_str(&format!(
            ",\"duration_ms\":{}",
            if self.duration_ms.is_finite() {
                format!("{}", self.duration_ms)
            } else {
                "0".to_string()
            }
        ));
        out.push_str(",\"detail\":");
        crate::json::escape_into(out, &self.detail);
        out.push('}');
    }
}

fn ring() -> &'static Mutex<VecDeque<AuditEvent>> {
    static RING: OnceLock<Mutex<VecDeque<AuditEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Records one control-plane action: pushes it onto the global ring and
/// emits a JSONL log event (WARN for failure outcomes, INFO otherwise).
pub fn record(
    kind: &str,
    model: &str,
    version: Option<u64>,
    outcome: &str,
    duration: Duration,
    detail: &str,
) {
    let event = AuditEvent {
        unix_ms: crate::tsdb::now_unix_ms(),
        kind: kind.to_string(),
        model: model.to_string(),
        version,
        outcome: outcome.to_string(),
        duration_ms: duration.as_secs_f64() * 1000.0,
        detail: detail.to_string(),
    };
    let version_text = version.map(|v| v.to_string()).unwrap_or_default();
    let duration_text = format!("{:.3}", event.duration_ms);
    let fields: &[(&str, &str)] = &[
        ("kind", kind),
        ("model", model),
        ("version", &version_text),
        ("outcome", outcome),
        ("duration_ms", &duration_text),
        ("detail", detail),
    ];
    let failed = matches!(outcome, "rejected" | "quarantined" | "io_error" | "error");
    if failed {
        crate::log::warn("dfp_registry::audit", "registry action", fields);
    } else {
        crate::log::info("dfp_registry::audit", "registry action", fields);
    }
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.push_back(event);
    while ring.len() > RING_CAP {
        ring.pop_front();
    }
}

/// The newest `limit` events, oldest first.
pub fn recent(limit: usize) -> Vec<AuditEvent> {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    let skip = ring.len().saturating_sub(limit);
    ring.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_ring_and_render() {
        record(
            "swap",
            "audit-test-model",
            Some(3),
            "promoted",
            Duration::from_millis(12),
            "",
        );
        let events = recent(usize::MAX);
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.model == "audit-test-model")
            .collect();
        assert!(!mine.is_empty());
        let mut out = String::new();
        mine[0].render_json_into(&mut out);
        let parsed = crate::json::parse(&out).expect("event JSON parses");
        assert_eq!(parsed.get("kind").and_then(|v| v.as_str()), Some("swap"));
        assert_eq!(parsed.get("version").and_then(|v| v.as_int()), Some(3));
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(RING_CAP + 50) {
            record(
                "prune",
                "audit-bound-model",
                Some(i as u64),
                "deleted",
                Duration::ZERO,
                "",
            );
        }
        assert!(recent(usize::MAX).len() <= RING_CAP);
    }
}
