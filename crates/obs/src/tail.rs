//! Tail-sampled slow-request capture.
//!
//! Head sampling (decide at request start) cannot catch "the slow one in a
//! thousand" without keeping everything. Tail sampling decides at request
//! *end*, when the verdict is in: every request offers its timing capture,
//! and the sampler keeps it only if the response was a 5xx or the duration
//! beat the live windowed p99 (pushed down from the TSDB after each
//! collection tick). Kept captures land in a bounded ring exported via
//! `GET /debug/traces`, and serving attaches the request id as an exemplar
//! on the latency histogram so a dashboard can jump from a p99 spike to a
//! concrete trace.
//!
//! Cost contract: when disabled, [`TailSampler::begin`] is one relaxed
//! atomic load returning `None` — no allocation, no clock read (the
//! workspace overhead bench asserts allocation-freeness). When enabled, a
//! capture is one `Instant` plus an empty `Vec` (which does not allocate
//! until the first stage mark), and the ring mutex is only taken for
//! requests that are actually kept.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A per-request timing capture; create via [`TailSampler::begin`], mark
/// stages as they finish, hand back via [`TailSampler::finish`].
#[derive(Debug)]
pub struct TailCapture {
    started: Instant,
    /// `(stage, start offset ns, duration ns)` relative to capture start.
    stages: Vec<(&'static str, u64, u64)>,
}

impl TailCapture {
    /// Records `name` as having run from `started` until now.
    pub fn mark_since(&mut self, name: &'static str, started: Instant) {
        let start_ns = started
            .saturating_duration_since(self.started)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let dur_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.stages.push((name, start_ns, dur_ns));
    }

    /// Nanoseconds since the capture began.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// One kept trace, as exported on `/debug/traces`.
#[derive(Debug, Clone)]
pub struct KeptTrace {
    /// Wall-clock completion time, Unix milliseconds.
    pub unix_ms: u64,
    /// The request's `X-Request-Id`.
    pub request_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// End-to-end duration, nanoseconds.
    pub duration_ns: u64,
    /// Queue wait before a worker picked the request up, nanoseconds.
    pub queue_wait_ns: u64,
    /// Why it was kept: `5xx` or `slow_p99`.
    pub reason: &'static str,
    /// `(stage, start offset ns, duration ns)` marks.
    pub stages: Vec<(&'static str, u64, u64)>,
}

#[derive(Debug, Default)]
struct TailInner {
    ring: VecDeque<KeptTrace>,
}

/// The bounded tail-sampling reservoir.
#[derive(Debug)]
pub struct TailSampler {
    enabled: AtomicBool,
    slow_threshold_ns: AtomicU64,
    // Counters live outside the ring mutex: the overwhelmingly common
    // discard path in [`TailSampler::finish`] must not contend a lock.
    offered: AtomicU64,
    kept: AtomicU64,
    cap: usize,
    inner: Mutex<TailInner>,
}

impl TailSampler {
    /// A sampler keeping at most `cap` traces; `cap == 0` builds a
    /// permanently disabled sampler.
    pub fn new(cap: usize) -> Self {
        TailSampler {
            enabled: AtomicBool::new(cap > 0),
            slow_threshold_ns: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            cap,
            inner: Mutex::new(TailInner::default()),
        }
    }

    /// Turns sampling on or off (off wins over a nonzero cap).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on && self.cap > 0, Ordering::Relaxed);
    }

    /// Whether [`TailSampler::begin`] currently hands out captures.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts a capture, or `None` when disabled — the disabled path is a
    /// single relaxed load with no allocation.
    pub fn begin(&self) -> Option<TailCapture> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        Some(TailCapture {
            started: Instant::now(),
            stages: Vec::new(),
        })
    }

    /// Updates the slow-keep threshold — the collector pushes the live
    /// windowed p99 here after each tick. `0` disables slow keeps (5xx
    /// keeps still apply).
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The current slow-keep threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Ends a capture: keeps it if the status is 5xx or the duration met
    /// the slow threshold. Returns the end-to-end duration in nanoseconds
    /// when kept (callers use it to attach histogram exemplars).
    pub fn finish(
        &self,
        capture: TailCapture,
        request_id: &str,
        method: &str,
        path: &str,
        status: u16,
        queue_wait_ns: u64,
    ) -> Option<u64> {
        let duration_ns = capture.elapsed_ns();
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        self.offered.fetch_add(1, Ordering::Relaxed);
        let reason = if status >= 500 {
            "5xx"
        } else if threshold > 0 && duration_ns >= threshold {
            "slow_p99"
        } else {
            // Discard: no lock on the hot path.
            return None;
        };
        let trace = KeptTrace {
            unix_ms: crate::tsdb::now_unix_ms(),
            request_id: request_id.to_string(),
            method: method.to_string(),
            path: path.to_string(),
            status,
            duration_ns,
            queue_wait_ns,
            reason,
            stages: capture.stages,
        };
        self.kept.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.push_back(trace);
        while inner.ring.len() > self.cap {
            inner.ring.pop_front();
        }
        Some(duration_ns)
    }

    /// `(offered, kept)` counts since start.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.offered.load(Ordering::Relaxed),
            self.kept.load(Ordering::Relaxed),
        )
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> Vec<KeptTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ring.iter().cloned().collect()
    }

    /// The `GET /debug/traces` document (parseable by [`crate::json`]).
    pub fn render_traces_json(&self, now_ms: u64) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"now_ms\":{now_ms},\"enabled\":{},\"slow_threshold_ns\":{},\"offered\":{},\"kept\":{},\"traces\":[",
            self.is_enabled(),
            self.slow_threshold_ns(),
            self.offered.load(Ordering::Relaxed),
            self.kept.load(Ordering::Relaxed)
        ));
        for (i, t) in inner.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"unix_ms\":{},\"request_id\":", t.unix_ms));
            crate::json::escape_into(&mut out, &t.request_id);
            out.push_str(",\"method\":");
            crate::json::escape_into(&mut out, &t.method);
            out.push_str(",\"path\":");
            crate::json::escape_into(&mut out, &t.path);
            out.push_str(&format!(
                ",\"status\":{},\"duration_ns\":{},\"queue_wait_ns\":{},\"reason\":\"{}\",\"stages\":[",
                t.status, t.duration_ns, t.queue_wait_ns, t.reason
            ));
            for (si, (name, start_ns, dur_ns)) in t.stages.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}}}"
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_sampler_hands_out_nothing() {
        let sampler = TailSampler::new(0);
        assert!(!sampler.is_enabled());
        assert!(sampler.begin().is_none());
        let live = TailSampler::new(4);
        live.set_enabled(false);
        assert!(live.begin().is_none());
    }

    #[test]
    fn keeps_5xx_and_slow_drops_fast_ok() {
        let sampler = TailSampler::new(4);
        // Fast 200 → dropped.
        let cap = sampler.begin().unwrap();
        assert!(sampler.finish(cap, "r1", "GET", "/ok", 200, 0).is_none());
        // 500 → kept regardless of threshold.
        let cap = sampler.begin().unwrap();
        assert!(sampler
            .finish(cap, "r2", "POST", "/boom", 500, 10)
            .is_some());
        // Slow 200 with threshold armed → kept.
        sampler.set_slow_threshold_ns(1_000_000); // 1 ms
        let mut cap = sampler.begin().unwrap();
        let stage_start = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        cap.mark_since("predict", stage_start);
        assert!(sampler
            .finish(cap, "r3", "POST", "/predict", 200, 0)
            .is_some());
        let traces = sampler.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].reason, "5xx");
        assert_eq!(traces[1].reason, "slow_p99");
        assert_eq!(traces[1].stages.len(), 1);
        assert_eq!(traces[1].stages[0].0, "predict");
        assert_eq!(sampler.stats(), (3, 2));
    }

    #[test]
    fn ring_bounded_and_json_parses() {
        let sampler = TailSampler::new(2);
        for i in 0..5 {
            let cap = sampler.begin().unwrap();
            sampler.finish(cap, &format!("r{i}"), "GET", "/x", 503, 0);
        }
        let traces = sampler.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[1].request_id, "r4");
        let json = sampler.render_traces_json(1_000);
        let parsed = crate::json::parse(&json).expect("traces JSON parses");
        assert_eq!(parsed.get("kept").and_then(|v| v.as_int()), Some(5));
        let Some(crate::json::Value::Arr(items)) = parsed.get("traces") else {
            panic!("traces array missing");
        };
        assert_eq!(items.len(), 2);
    }
}
