//! The unified metrics registry: named counters, gauges and histograms
//! rendered in the Prometheus text exposition format.
//!
//! A [`Registry`] owns metric *families* (one name, one HELP/TYPE pair) with
//! one or more labelled series each. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`s shared between the registry and the
//! instrumented code; all updates are relaxed atomics, so recording is
//! wait-free and safe in the hottest loops. Torn cross-metric reads are
//! tolerated — each individual value is always consistent.
//!
//! The process-wide [`global`] registry carries the mining / selection /
//! pipeline families (see [`dfp`]); `dfp-serve` keeps an additional
//! per-server registry so its tests observe isolated counters, and renders
//! both on `/metrics`.
//!
//! Rendering is Prometheus-parser-safe by construction: histogram `le`
//! labels use plain decimal notation (`0.0001`, never `1e-4`), and
//! `_sum` values are emitted as exact nanosecond→second decimals rather
//! than default float formatting.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float-valued gauge (f64 bits behind an atomic), for derived values
/// that are not integral — SLO burn rates, ratios, seconds-since.
#[derive(Debug, Default)]
pub struct GaugeF(AtomicU64);

impl GaugeF {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An OpenMetrics exemplar: one traced observation attached to the bucket
/// that contains it, rendered as `… # {request_id="…"} 0.12 1700000000.000`.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Single exemplar label key (we only ever attach one label).
    pub label_key: String,
    /// Label value — for serving, the `X-Request-Id` of a captured trace.
    pub label_value: String,
    /// Observed value in seconds.
    pub value: f64,
    /// Unix timestamp of the observation, in milliseconds.
    pub unix_ms: u64,
}

/// A fixed-bucket histogram of durations, stored in nanoseconds so the
/// rendered `_sum` is exact.
#[derive(Debug)]
pub struct Histogram {
    /// Bucket upper bounds in seconds, ascending; `+Inf` implied.
    bounds: Box<[f64]>,
    /// One slot per bound plus the `+Inf` overflow slot (non-cumulative).
    counts: Box<[AtomicU64]>,
    sum_nanos: AtomicU64,
    count: AtomicU64,
    /// Most recent exemplar, set off the hot path (tail-sampled keeps only).
    exemplar: Mutex<Option<Exemplar>>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            exemplar: Mutex::new(None),
        }
    }

    /// Records one duration observation.
    pub fn observe(&self, elapsed: Duration) {
        self.observe_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation given in whole nanoseconds.
    pub fn observe_nanos(&self, nanos: u64) {
        let secs = nanos as f64 / 1e9;
        let idx = self
            .bounds
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Attaches an exemplar (replacing any previous one). Called off the
    /// request hot path — only when a tail-sampled trace is kept — so the
    /// mutex never contends with `observe`.
    pub fn set_exemplar(&self, label_key: &str, label_value: &str, value_secs: f64, unix_ms: u64) {
        if !value_secs.is_finite() {
            return;
        }
        let mut slot = self.exemplar.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Exemplar {
            label_key: label_key.to_string(),
            label_value: label_value.to_string(),
            value: value_secs,
            unix_ms,
        });
    }

    /// The currently attached exemplar, if any.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// A point-in-time copy with *cumulative* bucket counts. Relaxed reads:
    /// the snapshot may be torn against concurrent observes, but every slot
    /// is individually monotone over successive snapshots, which is all the
    /// TSDB window diffing needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for c in self.counts.iter() {
            acc += c.load(Ordering::Relaxed);
            cumulative.push(acc);
        }
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            cumulative,
            sum_nanos: self.sum_nanos(),
            count: self.count(),
        }
    }
}

/// A point-in-time copy of one histogram series with cumulative bucket
/// counts (the `+Inf` slot last).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds in seconds; `+Inf` implied after the last.
    pub bounds: Vec<f64>,
    /// Cumulative count per bound plus the `+Inf` slot (`bounds.len() + 1`).
    pub cumulative: Vec<u64>,
    /// Sum of all observations, in nanoseconds.
    pub sum_nanos: u64,
    /// Total observation count.
    pub count: u64,
}

/// The value part of a [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value (integer gauges widen to `f64`).
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One series sampled from a [`Registry`] — the read side consumed by the
/// TSDB collector.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Family name, e.g. `dfp_serve_requests_total`.
    pub name: String,
    /// Rendered label pairs without braces (possibly empty), e.g.
    /// `stage="mine"`.
    pub labels: String,
    /// The sampled value.
    pub value: SampleValue,
}

/// Formats a float in plain decimal notation — Prometheus label values such
/// as `le` must never be scientific (`0.0001`, not `1e-4`). Rust's `{}`
/// Display for floats is always non-scientific shortest-round-trip, which
/// is exactly the stable form we want; this wrapper pins that contract in
/// one place (with a unit test) rather than scattering bare `{}`s.
pub fn fmt_decimal(x: f64) -> String {
    format!("{x}")
}

/// Renders a nanosecond total as an exact decimal number of seconds
/// (`123456789` → `"0.123456789"`), avoiding lossy `f64` division for
/// histogram `_sum` lines.
pub fn fmt_secs_from_nanos(nanos: u64) -> String {
    format!("{}.{:09}", nanos / 1_000_000_000, nanos % 1_000_000_000)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    GaugeF,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            // Integer and float gauges are one exposition TYPE.
            Kind::Gauge | Kind::GaugeF => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    GaugeF(Arc<GaugeF>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// `(rendered label pairs without braces, metric)`, e.g. `stage="mine"`.
    series: Vec<(String, Metric)>,
}

/// A collection of metric families rendered together.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the unlabelled counter `name`, registering it on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Returns the counter `name{labels}`, registering it on first use.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series(name, help, Kind::Counter, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind enforced by series()"),
        }
    }

    /// Returns the unlabelled gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Returns the gauge `name{labels}`, registering it on first use.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series(name, help, Kind::Gauge, labels, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind enforced by series()"),
        }
    }

    /// Returns the unlabelled float gauge `name`, registering it on first
    /// use.
    pub fn gauge_f(&self, name: &str, help: &str) -> Arc<GaugeF> {
        self.gauge_f_with(name, help, &[])
    }

    /// Returns the float gauge `name{labels}`, registering it on first use.
    pub fn gauge_f_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<GaugeF> {
        match self.series(name, help, Kind::GaugeF, labels, || {
            Metric::GaugeF(Arc::new(GaugeF::default()))
        }) {
            Metric::GaugeF(g) => g,
            _ => unreachable!("kind enforced by series()"),
        }
    }

    /// Returns the unlabelled histogram `name`, registering it on first use
    /// with `bounds` (seconds, ascending; `+Inf` implied).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Returns the histogram `name{labels}`, registering it on first use.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind enforced by series()"),
        }
    }

    /// Finds or creates the `(family, labels)` series. Registration is
    /// idempotent: asking again for the same series returns the same handle.
    ///
    /// # Panics
    /// Panics if `name` is re-registered with a different metric kind — a
    /// programming error that would render an invalid exposition.
    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                family.kind, kind,
                "metric '{name}' re-registered as a different kind"
            );
            if let Some((_, metric)) = family.series.iter().find(|(l, _)| *l == rendered) {
                return metric.clone();
            }
            let metric = make();
            family.series.push((rendered, metric.clone()));
            return metric;
        }
        let metric = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![(rendered, metric.clone())],
        });
        metric
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        self.render_into(&mut out);
        out
    }

    /// Appends the exposition to `out` (for composing registries).
    pub fn render_into(&self, out: &mut String) {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for family in families.iter() {
            let name = &family.name;
            out.push_str(&format!(
                "# HELP {name} {}\n# TYPE {name} {}\n",
                family.help.replace('\n', " "),
                family.kind.as_str()
            ));
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        push_series_line(out, name, labels, &c.get().to_string());
                    }
                    Metric::Gauge(g) => {
                        push_series_line(out, name, labels, &g.get().to_string());
                    }
                    Metric::GaugeF(g) => {
                        push_series_line(out, name, labels, &fmt_float_value(g.get()));
                    }
                    Metric::Histogram(h) => render_histogram(out, name, labels, h),
                }
            }
        }
    }

    /// Samples every registered series into owned [`Sample`]s — the read
    /// side used by the TSDB collector. Reads are relaxed atomics; tearing
    /// across series is tolerated (each sample is individually consistent).
    pub fn snapshot(&self) -> Vec<Sample> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for family in families.iter() {
            for (labels, metric) in &family.series {
                let value = match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get() as f64),
                    Metric::GaugeF(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                };
                out.push(Sample {
                    name: family.name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        out
    }
}

/// Formats an exposition float value: plain decimal for finite values,
/// Prometheus spellings for the non-finite ones (`+Inf`/`-Inf`/`NaN` — the
/// Rust `Display` forms `inf`/`NaN` are not parser-safe).
fn fmt_float_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        fmt_decimal(v)
    }
}

fn push_exemplar(out: &mut String, e: &Exemplar) {
    out.push_str(&format!(
        " # {{{}=\"{}\"}} {} {}.{:03}",
        e.label_key,
        e.label_value.replace('\\', "\\\\").replace('"', "\\\""),
        fmt_decimal(e.value),
        e.unix_ms / 1000,
        e.unix_ms % 1000
    ));
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(",")
}

fn push_series_line(out: &mut String, name: &str, labels: &str, value: &str) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let joiner = if labels.is_empty() { "" } else { "," };
    // The exemplar rides on the first bucket whose bound contains its value
    // (OpenMetrics-style `… # {k="v"} value ts` suffix on the bucket line).
    let exemplar = h.exemplar();
    let exemplar_idx = exemplar.as_ref().map(|e| {
        h.bounds
            .iter()
            .position(|&ub| e.value <= ub)
            .unwrap_or(h.bounds.len())
    });
    let mut cumulative = 0u64;
    for (i, &ub) in h.bounds.iter().enumerate() {
        cumulative += h.counts[i].load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{{labels}{joiner}le=\"{}\"}} {cumulative}",
            fmt_decimal(ub)
        ));
        if exemplar_idx == Some(i) {
            push_exemplar(out, exemplar.as_ref().expect("index implies exemplar"));
        }
        out.push('\n');
    }
    cumulative += h.counts[h.bounds.len()].load(Ordering::Relaxed);
    out.push_str(&format!(
        "{name}_bucket{{{labels}{joiner}le=\"+Inf\"}} {cumulative}"
    ));
    if exemplar_idx == Some(h.bounds.len()) {
        push_exemplar(out, exemplar.as_ref().expect("index implies exemplar"));
    }
    out.push('\n');
    push_series_line(
        out,
        &format!("{name}_sum"),
        labels,
        &fmt_secs_from_nanos(h.sum_nanos()),
    );
    push_series_line(
        out,
        &format!("{name}_count"),
        labels,
        &h.count().to_string(),
    );
}

/// The process-wide registry carrying the mining / selection / pipeline
/// families. Library crates record here; serving renders it alongside its
/// per-server registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The dfp workspace's well-known global metric families.
///
/// Each accessor registers its family in [`global`] on first use and caches
/// the handle in a static, so hot paths pay one pointer load plus a relaxed
/// atomic add. [`dfp::touch`] registers everything up front — serving calls
/// it before rendering so `/metrics` always exposes the full schema, even
/// when no mining has happened in-process yet.
pub mod dfp {
    use super::*;

    /// Bucket bounds for pipeline stage durations (seconds).
    pub const STAGE_BUCKETS: [f64; 11] = [
        0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
    ];

    macro_rules! counter_fn {
        ($(#[$doc:meta])* $fn:ident, $name:expr, $help:expr) => {
            $(#[$doc])*
            pub fn $fn() -> &'static Counter {
                static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
                CELL.get_or_init(|| global().counter($name, $help))
            }
        };
    }

    counter_fn!(
        /// Patterns emitted by any miner (pre-dedup, pre-filter).
        mine_patterns_emitted,
        "dfp_mine_patterns_emitted_total",
        "Patterns emitted by the miners (before dedup and closedness filtering)"
    );
    counter_fn!(
        /// Search-space nodes explored by any miner.
        mine_nodes_explored,
        "dfp_mine_nodes_explored_total",
        "Search-space nodes explored by the miners (DFS nodes, level candidates)"
    );
    counter_fn!(
        /// Closure-merge checks performed by the closed-set miner.
        mine_closure_checks,
        "dfp_mine_closure_checks_total",
        "Closure-merge candidate checks performed by the closed-set miner"
    );
    counter_fn!(
        /// Candidate slots scanned across MMRFS argmax rounds.
        select_candidates_scanned,
        "dfp_select_candidates_scanned_total",
        "Candidate slots scanned across MMRFS argmax rounds"
    );
    counter_fn!(
        /// MMRFS argmax rounds run.
        select_argmax_rounds,
        "dfp_select_argmax_rounds_total",
        "MMRFS argmax rounds (one per considered candidate)"
    );
    counter_fn!(
        /// Incremental redundancy-cache cell updates in MMRFS.
        select_redundancy_updates,
        "dfp_select_redundancy_updates_total",
        "Incremental redundancy-cache cell updates performed by MMRFS"
    );
    counter_fn!(
        /// Mining-memoization cache hits (a mine call answered from cache).
        cache_mining_hits,
        "dfp_cache_mining_hits_total",
        "Mining-memoization cache hits (mine calls answered from the cache)"
    );
    counter_fn!(
        /// Mining-memoization cache misses (a mine call ran the miner).
        cache_mining_misses,
        "dfp_cache_mining_misses_total",
        "Mining-memoization cache misses (mine calls that ran the miner)"
    );
    counter_fn!(
        /// Pipeline fits completed.
        pipeline_fits,
        "dfp_pipeline_fits_total",
        "Pipeline fits completed (PatternClassifier::fit and fit_transactions)"
    );
    counter_fn!(
        /// Cross-validation folds fitted (outer framework CV).
        cv_folds,
        "dfp_cv_folds_total",
        "Outer cross-validation folds fitted"
    );
    counter_fn!(
        /// Model artifacts saved.
        model_saves,
        "dfp_model_saves_total",
        "Model artifacts saved"
    );
    counter_fn!(
        /// Model artifacts loaded.
        model_loads,
        "dfp_model_loads_total",
        "Model artifacts loaded"
    );

    /// `1` when the most recent pipeline fit in this process was degraded
    /// (anytime mining stopped early), else `0`.
    pub fn pipeline_degraded() -> &'static Gauge {
        static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
        CELL.get_or_init(|| {
            global().gauge(
                "dfp_pipeline_degraded",
                "1 when the most recent pipeline fit was degraded (anytime mining stopped early)",
            )
        })
    }

    /// Per-stage pipeline duration histogram
    /// (`dfp_pipeline_stage_seconds{stage="mine"}`, …).
    ///
    /// `stage` must be a `'static` name so series stay bounded.
    pub fn pipeline_stage(stage: &'static str) -> Arc<Histogram> {
        global().histogram_with(
            "dfp_pipeline_stage_seconds",
            "Wall-clock duration of each pipeline stage",
            &STAGE_BUCKETS,
            &[("stage", stage)],
        )
    }

    /// The canonical stage names instrumented by `dfp-core`.
    pub const STAGES: [&str; 7] = [
        "discretize",
        "itemize",
        "mine",
        "select",
        "transform",
        "train",
        "predict",
    ];

    /// Registers every well-known family (idempotent). Serving calls this
    /// before rendering so the full schema is always exposed.
    pub fn touch() {
        mine_patterns_emitted();
        mine_nodes_explored();
        mine_closure_checks();
        select_candidates_scanned();
        select_argmax_rounds();
        select_redundancy_updates();
        cache_mining_hits();
        cache_mining_misses();
        pipeline_fits();
        cv_folds();
        model_saves();
        model_loads();
        pipeline_degraded();
        for stage in STAGES {
            pipeline_stage(stage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("test_total", "help text");
        let g = r.gauge("test_gauge", "a gauge");
        c.add(3);
        g.set(-2);
        let text = r.render();
        assert!(text.contains("# HELP test_total help text\n"));
        assert!(text.contains("# TYPE test_total counter\n"));
        assert!(text.contains("test_total 3\n"));
        assert!(text.contains("# TYPE test_gauge gauge\n"));
        assert!(text.contains("test_gauge -2\n"));
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // one family, one series
        assert_eq!(r.render().matches("\nx_total 2\n").count(), 1);
    }

    #[test]
    fn labelled_series_share_one_family_header() {
        let r = Registry::new();
        r.counter_with("y_total", "y", &[("k", "a")]).inc();
        r.counter_with("y_total", "y", &[("k", "b")]).add(2);
        let text = r.render();
        assert_eq!(text.matches("# HELP y_total").count(), 1);
        assert!(text.contains("y_total{k=\"a\"} 1\n"));
        assert!(text.contains("y_total{k=\"b\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_cumulative_and_sum_exact() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.0001, 0.005]);
        h.observe(Duration::from_micros(50));
        h.observe(Duration::from_millis(2));
        h.observe(Duration::from_secs(2));
        let text = r.render();
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.0001\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_bucket{le=\"0.005\"} 2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_seconds_count 3\n"));
        // 50µs + 2ms + 2s = 2.002050000 s, exactly.
        assert!(text.contains("lat_seconds_sum 2.002050000\n"), "{text}");
    }

    #[test]
    fn le_labels_never_scientific() {
        assert_eq!(fmt_decimal(0.0001), "0.0001");
        assert_eq!(fmt_decimal(0.000001), "0.000001");
        assert_eq!(fmt_decimal(0.5), "0.5");
        assert_eq!(fmt_decimal(10.0), "10");
        for s in [0.0001, 0.000001, 1e-9, 5e8].map(fmt_decimal) {
            assert!(!s.contains('e') && !s.contains('E'), "{s}");
        }
    }

    #[test]
    fn sum_formatting_is_exact() {
        assert_eq!(fmt_secs_from_nanos(0), "0.000000000");
        assert_eq!(fmt_secs_from_nanos(123), "0.000000123");
        assert_eq!(fmt_secs_from_nanos(1_500_000_000), "1.500000000");
        // A value that would lose precision through f64 division:
        assert_eq!(
            fmt_secs_from_nanos(9_007_199_254_740_993),
            "9007199.254740993"
        );
    }

    #[test]
    fn well_known_families_register() {
        dfp::touch();
        let text = global().render();
        for family in [
            "dfp_mine_patterns_emitted_total",
            "dfp_mine_nodes_explored_total",
            "dfp_select_candidates_scanned_total",
            "dfp_pipeline_stage_seconds",
            "dfp_pipeline_degraded",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
        assert!(text.contains("dfp_pipeline_stage_seconds_bucket{stage=\"mine\",le=\"0.0001\"}"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("z_metric", "z");
        r.gauge("z_metric", "z");
    }

    #[test]
    fn float_gauge_renders_plain_decimal() {
        let r = Registry::new();
        let g = r.gauge_f_with("burn", "burn rate", &[("slo", "avail")]);
        g.set(14.4);
        let text = r.render();
        assert!(text.contains("# TYPE burn gauge\n"), "{text}");
        assert!(text.contains("burn{slo=\"avail\"} 14.4\n"), "{text}");
        g.set(f64::INFINITY);
        assert!(r.render().contains("burn{slo=\"avail\"} +Inf\n"));
        g.set(f64::NAN);
        assert!(r.render().contains("burn{slo=\"avail\"} NaN\n"));
    }

    #[test]
    fn exemplar_rides_containing_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.001, 0.1]);
        h.observe(Duration::from_millis(20));
        h.set_exemplar("request_id", "req-1", 0.02, 1_700_000_000_123);
        let text = r.render();
        assert!(
            text.contains(
                "lat_seconds_bucket{le=\"0.1\"} 1 # {request_id=\"req-1\"} 0.02 1700000000.123\n"
            ),
            "{text}"
        );
        // The other bucket lines carry no exemplar.
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 0\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn snapshot_captures_all_kinds_cumulatively() {
        let r = Registry::new();
        r.counter("c_total", "c").add(7);
        r.gauge("g", "g").set(-3);
        r.gauge_f("gf", "gf").set(0.5);
        let h = r.histogram("h_seconds", "h", &[0.001, 0.1]);
        h.observe(Duration::from_micros(500));
        h.observe(Duration::from_secs(1));
        let samples = r.snapshot();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].value, SampleValue::Counter(7));
        assert_eq!(samples[1].value, SampleValue::Gauge(-3.0));
        assert_eq!(samples[2].value, SampleValue::Gauge(0.5));
        match &samples[3].value {
            SampleValue::Histogram(s) => {
                assert_eq!(s.bounds, vec![0.001, 0.1]);
                assert_eq!(s.cumulative, vec![1, 1, 2]);
                assert_eq!(s.count, 2);
                assert_eq!(s.sum_nanos, 1_000_500_000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
