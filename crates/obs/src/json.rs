//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace deliberately avoids external dependencies (see DESIGN.md),
//! so the observability layer carries its own JSON: the writer emits span
//! and event lines, and the parser validates them in tests, in the
//! `dfp-trace-check` binary, and in the JSONL round-trip suite. Numbers are
//! kept as `f64` except that integers up to 2^63 round-trip through a
//! dedicated variant, since span timestamps in nanoseconds exceed the 2^53
//! exact-integer range of doubles.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i128` (covers `u64` nanosecond timestamps).
    Int(i128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` gives deterministic iteration in tests.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The integer value, when `self` is [`Value::Int`] (or an integral
    /// [`Value::Num`]).
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Num(x) if x.fract() == 0.0 && x.is_finite() => Some(*x as i128),
            _ => None,
        }
    }

    /// The float value of any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: &'static str) -> ParseError {
    ParseError { offset, message }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8, message: &'static str) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, message))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: Value,
) -> Result<Value, ParseError> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':' after object key")?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        if bytes.len() < *pos + 4 {
                            return Err(err(*pos, "truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own output;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
            }
            _ => {
                // Re-synchronise on UTF-8 boundaries: back up and take the
                // full scalar from the source.
                let start = *pos - 1;
                let s = std::str::from_utf8(&bytes[start..])
                    .map_err(|_| err(start, "invalid UTF-8 in string"))?;
                let c = s.chars().next().expect("non-empty suffix");
                if (c as u32) < 0x20 {
                    return Err(err(start, "unescaped control character"));
                }
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected a value"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i128>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse("2.5").unwrap(), Value::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn large_timestamps_are_exact() {
        let ns: u64 = 1_234_567_890_123_456_789;
        let v = parse(&ns.to_string()).unwrap();
        assert_eq!(v.as_int(), Some(ns as i128));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},null],"d":true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![
                Value::Int(1),
                Value::Obj([("b".to_string(), Value::Str("c".into()))].into()),
                Value::Null,
            ])
        );
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a \"b\"\\\n\tπ\u{1}";
        let mut doc = String::from("{\"k\":");
        escape_into(&mut doc, nasty);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "1 2", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn rejects_unescaped_control_chars() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }
}
