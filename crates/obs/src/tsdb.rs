//! In-process metrics history: ring-buffered time series sampled from
//! [`crate::metrics::Registry`] snapshots by a background collector.
//!
//! The TSDB is deliberately boring: one mutex around a vector of series,
//! touched only by the collector thread (once per `interval`) and by the
//! query endpoints (`/metrics/history`, `/dashboard`, the SLO evaluator).
//! The request hot path never takes the lock — instrumented code keeps
//! writing plain relaxed atomics in the registry, and the collector reads
//! them out-of-band via [`crate::metrics::Registry::snapshot`].
//!
//! * **Counters** are stored raw and differenced at query time with reset
//!   awareness (a later value smaller than an earlier one means the counter
//!   restarted; the increase is then the later value itself).
//! * **Gauges** are stored raw.
//! * **Histograms** store the full cumulative bucket vector per point, so a
//!   window is the *difference of two snapshots* — from which
//!   [`bucket_quantile`] interpolates p50/p90/p99/p999 exactly the way
//!   Prometheus' `histogram_quantile` would.
//!
//! Retention is bounded twice over: points older than `retain` are evicted,
//! and each series keeps at most `capacity()` points, so a misconfigured
//! interval cannot grow memory without bound. Windows *clamp* to the data
//! actually retained: asking for a 1 h window two minutes after boot
//! answers over those two minutes (this is what lets SLO burn alerts fire
//! within one collection interval of an error burst).

use crate::metrics::{HistogramSnapshot, Sample, SampleValue};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Collector cadence and retention knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsdbConfig {
    /// Sampling cadence (`DFP_TSDB_INTERVAL_MS`, default 1 s, min 10 ms).
    pub interval: Duration,
    /// How much history each series keeps (`DFP_TSDB_RETAIN`, default 1 h;
    /// accepts `3600`, `90s`, `15m`, `2h`).
    pub retain: Duration,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            interval: Duration::from_secs(1),
            retain: Duration::from_secs(3600),
        }
    }
}

impl TsdbConfig {
    /// Defaults overridden by `DFP_TSDB_INTERVAL_MS` / `DFP_TSDB_RETAIN`.
    /// Unparseable values keep the default.
    pub fn from_env() -> Self {
        let mut cfg = TsdbConfig::default();
        if let Some(ms) = std::env::var("DFP_TSDB_INTERVAL_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            cfg.interval = Duration::from_millis(ms.max(10));
        }
        if let Some(d) = std::env::var("DFP_TSDB_RETAIN")
            .ok()
            .and_then(|v| parse_duration(&v))
        {
            cfg.retain = d;
        }
        cfg
    }

    /// Replaces the sampling cadence (clamped to ≥ 10 ms).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval.max(Duration::from_millis(10));
        self
    }

    /// Replaces the retention horizon.
    pub fn with_retain(mut self, retain: Duration) -> Self {
        self.retain = retain.max(Duration::from_secs(1));
        self
    }

    /// Points per series implied by `retain / interval`, bounded to
    /// `[2, 100_000]` so pathological configs stay cheap.
    pub fn capacity(&self) -> usize {
        let ticks = self.retain.as_millis() / self.interval.as_millis().max(1);
        (ticks as usize + 1).clamp(2, 100_000)
    }
}

/// Parses `"3600"` (seconds), `"250ms"`, `"90s"`, `"15m"`, or `"2h"`.
pub fn parse_duration(text: &str) -> Option<Duration> {
    let t = text.trim();
    let (digits, scale_ms) = if let Some(n) = t.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = t.strip_suffix('s') {
        (n, 1000)
    } else if let Some(n) = t.strip_suffix('m') {
        (n, 60_000)
    } else if let Some(n) = t.strip_suffix('h') {
        (n, 3_600_000)
    } else {
        (t, 1000)
    };
    let n: u64 = digits.trim().parse().ok()?;
    Some(Duration::from_millis(n.checked_mul(scale_ms)?))
}

/// Milliseconds since the Unix epoch (wall clock; the collector stamps
/// every tick with this so exported history lines up with external logs).
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_millis() as u64
}

/// What a series stores per point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotonic counter (differenced at query time).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Cumulative bucket snapshot.
    Histogram,
}

impl SeriesKind {
    /// Lowercase name used in exported JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum PointValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        cumulative: Box<[u64]>,
        sum_nanos: u64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
struct Point {
    ts_ms: u64,
    value: PointValue,
}

#[derive(Debug)]
struct Series {
    name: String,
    labels: String,
    kind: SeriesKind,
    /// Histogram bucket bounds (empty for counters/gauges). If a histogram
    /// is ever re-registered with different bounds its history resets.
    bounds: Vec<f64>,
    points: VecDeque<Point>,
}

#[derive(Debug, Default)]
struct Inner {
    series: Vec<Series>,
    last_ts_ms: u64,
}

/// The ring-buffered store. Cheap to share (`Arc<Tsdb>`); all mutation goes
/// through [`Tsdb::ingest`].
#[derive(Debug)]
pub struct Tsdb {
    interval_ms: u64,
    retain_ms: u64,
    cap: usize,
    inner: Mutex<Inner>,
}

/// Windowed quantiles for one histogram series, derived from the snapshot
/// difference across the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileSet {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of observations inside the window, nanoseconds.
    pub sum_nanos: u64,
    /// 50th percentile, seconds.
    pub p50: f64,
    /// 90th percentile, seconds.
    pub p90: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// 99.9th percentile, seconds.
    pub p999: f64,
}

/// The quantile windows exported on `/metrics/history` (label, width ms).
pub const WINDOWS: [(&str, u64); 3] = [("1m", 60_000), ("5m", 300_000), ("1h", 3_600_000)];

impl Tsdb {
    /// An empty store with the given cadence/retention.
    pub fn new(config: &TsdbConfig) -> Self {
        Tsdb {
            interval_ms: config.interval.as_millis().max(1) as u64,
            retain_ms: config.retain.as_millis().max(1) as u64,
            cap: config.capacity(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Configured sampling cadence in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Configured retention horizon in milliseconds.
    pub fn retain_ms(&self) -> u64 {
        self.retain_ms
    }

    /// Appends one tick of samples at wall-clock `ts_ms`. Timestamps are
    /// forced strictly monotone (a wall clock stepping backwards is clamped
    /// to `last + 1 ms`) so window lookups stay well-defined. Eviction
    /// enforces both the retention horizon and the per-series point cap.
    pub fn ingest(&self, ts_ms: u64, samples: Vec<Sample>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let ts_ms = if ts_ms <= inner.last_ts_ms {
            inner.last_ts_ms + 1
        } else {
            ts_ms
        };
        inner.last_ts_ms = ts_ms;
        let retain_ms = self.retain_ms;
        let cap = self.cap;
        for sample in samples {
            let (kind, value, bounds) = match sample.value {
                SampleValue::Counter(v) => (SeriesKind::Counter, PointValue::Counter(v), None),
                SampleValue::Gauge(v) => (SeriesKind::Gauge, PointValue::Gauge(v), None),
                SampleValue::Histogram(snap) => {
                    let HistogramSnapshot {
                        bounds,
                        cumulative,
                        sum_nanos,
                        count,
                    } = snap;
                    (
                        SeriesKind::Histogram,
                        PointValue::Histogram {
                            cumulative: cumulative.into(),
                            sum_nanos,
                            count,
                        },
                        Some(bounds),
                    )
                }
            };
            let series = match inner
                .series
                .iter_mut()
                .find(|s| s.name == sample.name && s.labels == sample.labels)
            {
                Some(s) => s,
                None => {
                    inner.series.push(Series {
                        name: sample.name,
                        labels: sample.labels,
                        kind,
                        bounds: bounds.clone().unwrap_or_default(),
                        points: VecDeque::new(),
                    });
                    inner.series.last_mut().expect("just pushed")
                }
            };
            if series.kind != kind {
                continue; // name/label collision across kinds; drop sample
            }
            if let Some(b) = &bounds {
                if series.bounds != *b {
                    // Re-registered with different buckets: history resets.
                    series.bounds = b.clone();
                    series.points.clear();
                }
            }
            series.points.push_back(Point { ts_ms, value });
            while series.points.len() > cap
                || series
                    .points
                    .front()
                    .is_some_and(|p| p.ts_ms.saturating_add(retain_ms) < ts_ms)
            {
                series.points.pop_front();
            }
        }
    }

    /// Number of retained points for a series, if it exists (test hook).
    pub fn series_len(&self, name: &str, labels: &str) -> Option<usize> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.points.len())
    }

    /// Timestamp of the most recent ingested tick (0 before the first).
    pub fn last_ts_ms(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last_ts_ms
    }

    /// Counter increase over the trailing window, with reset handling, plus
    /// the actual span the increase was measured over (clamped to retained
    /// data). `None` until the series has two points.
    pub fn counter_increase(
        &self,
        name: &str,
        labels: &str,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<(u64, u64)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let series = inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels && s.kind == SeriesKind::Counter)?;
        let (base, end) = window_endpoints(&series.points, window_ms, now_ms)?;
        let (PointValue::Counter(b), PointValue::Counter(e)) = (&base.value, &end.value) else {
            return None;
        };
        let increase = counter_delta(*e, *b);
        Some((increase, end.ts_ms.saturating_sub(base.ts_ms).max(1)))
    }

    /// Counter rate (per second) over the trailing window.
    pub fn counter_rate(
        &self,
        name: &str,
        labels: &str,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<f64> {
        let (increase, span_ms) = self.counter_increase(name, labels, window_ms, now_ms)?;
        Some(increase as f64 / (span_ms as f64 / 1000.0))
    }

    /// Most recent gauge value.
    pub fn gauge_last(&self, name: &str, labels: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let series = inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels && s.kind == SeriesKind::Gauge)?;
        match series.points.back()?.value {
            PointValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Windowed quantiles for a histogram series: the bucket-count
    /// difference between the window's endpoints, interpolated by
    /// [`bucket_quantile`]. `None` until two points exist or when the
    /// window saw no observations.
    pub fn window_quantiles(
        &self,
        name: &str,
        labels: &str,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<QuantileSet> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let series = inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels && s.kind == SeriesKind::Histogram)?;
        let (base, end) = window_endpoints(&series.points, window_ms, now_ms)?;
        let (
            PointValue::Histogram {
                cumulative: bc,
                sum_nanos: bs,
                count: bn,
            },
            PointValue::Histogram {
                cumulative: ec,
                sum_nanos: es,
                count: en,
            },
        ) = (&base.value, &end.value)
        else {
            return None;
        };
        if bc.len() != ec.len() {
            return None;
        }
        // A reset anywhere (restart) invalidates the base snapshot: fall
        // back to the end snapshot alone, exactly like counter resets.
        let reset = ec.iter().zip(bc.iter()).any(|(e, b)| e < b);
        let deltas: Vec<u64> = if reset {
            ec.to_vec()
        } else {
            ec.iter().zip(bc.iter()).map(|(e, b)| e - b).collect()
        };
        let count = if reset { *en } else { counter_delta(*en, *bn) };
        let sum_nanos = if reset { *es } else { counter_delta(*es, *bs) };
        if deltas.last().copied().unwrap_or(0) == 0 {
            return None;
        }
        Some(QuantileSet {
            count,
            sum_nanos,
            p50: bucket_quantile(&series.bounds, &deltas, 0.50),
            p90: bucket_quantile(&series.bounds, &deltas, 0.90),
            p99: bucket_quantile(&series.bounds, &deltas, 0.99),
            p999: bucket_quantile(&series.bounds, &deltas, 0.999),
        })
    }

    /// The bucket-count difference across the trailing window for a
    /// histogram series: `(bounds, cumulative deltas)` with the `+Inf` slot
    /// last. Same clamping and reset rules as [`Tsdb::window_quantiles`];
    /// `None` until two points exist.
    pub fn window_buckets(
        &self,
        name: &str,
        labels: &str,
        window_ms: u64,
        now_ms: u64,
    ) -> Option<(Vec<f64>, Vec<u64>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let series = inner
            .series
            .iter()
            .find(|s| s.name == name && s.labels == labels && s.kind == SeriesKind::Histogram)?;
        let (base, end) = window_endpoints(&series.points, window_ms, now_ms)?;
        let (
            PointValue::Histogram { cumulative: bc, .. },
            PointValue::Histogram { cumulative: ec, .. },
        ) = (&base.value, &end.value)
        else {
            return None;
        };
        if bc.len() != ec.len() {
            return None;
        }
        let reset = ec.iter().zip(bc.iter()).any(|(e, b)| e < b);
        let deltas: Vec<u64> = if reset {
            ec.to_vec()
        } else {
            ec.iter().zip(bc.iter()).map(|(e, b)| e - b).collect()
        };
        Some((series.bounds.clone(), deltas))
    }

    /// Derived plottable series for dashboards: counters become
    /// per-interval rates (per second), gauges raw values, histograms the
    /// per-interval mean observation in seconds. At most `max_points` of
    /// the newest points per series.
    pub fn plot_series(&self, max_points: usize) -> Vec<PlotSeries> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(inner.series.len());
        for series in &inner.series {
            let pts: Vec<&Point> = series.points.iter().collect();
            let mut plotted: Vec<(u64, f64)> = Vec::new();
            match series.kind {
                SeriesKind::Gauge => {
                    for p in &pts {
                        if let PointValue::Gauge(v) = p.value {
                            plotted.push((p.ts_ms, v));
                        }
                    }
                }
                SeriesKind::Counter => {
                    for pair in pts.windows(2) {
                        let (PointValue::Counter(a), PointValue::Counter(b)) =
                            (&pair[0].value, &pair[1].value)
                        else {
                            continue;
                        };
                        let dt = pair[1].ts_ms.saturating_sub(pair[0].ts_ms).max(1);
                        plotted.push((
                            pair[1].ts_ms,
                            counter_delta(*b, *a) as f64 * 1000.0 / dt as f64,
                        ));
                    }
                }
                SeriesKind::Histogram => {
                    for pair in pts.windows(2) {
                        let (
                            PointValue::Histogram {
                                sum_nanos: s0,
                                count: n0,
                                ..
                            },
                            PointValue::Histogram {
                                sum_nanos: s1,
                                count: n1,
                                ..
                            },
                        ) = (&pair[0].value, &pair[1].value)
                        else {
                            continue;
                        };
                        let dn = counter_delta(*n1, *n0);
                        if dn == 0 {
                            plotted.push((pair[1].ts_ms, 0.0));
                        } else {
                            let ds = counter_delta(*s1, *s0);
                            plotted.push((pair[1].ts_ms, ds as f64 / dn as f64 / 1e9));
                        }
                    }
                }
            }
            if plotted.len() > max_points {
                plotted.drain(..plotted.len() - max_points);
            }
            out.push(PlotSeries {
                name: series.name.clone(),
                labels: series.labels.clone(),
                kind: series.kind,
                unit: match series.kind {
                    SeriesKind::Counter => "/s",
                    SeriesKind::Gauge => "",
                    SeriesKind::Histogram => "s (mean)",
                },
                points: plotted,
            });
        }
        out
    }

    /// Serializes retained history as JSON (parseable by [`crate::json`]):
    /// raw points per series, windowed quantiles for histograms, and recent
    /// audit events for timeline annotation. At most `max_points` newest
    /// points per series.
    pub fn render_history_json(&self, now_ms: u64, max_points: usize) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"now_ms\":{now_ms},\"interval_ms\":{},\"retain_ms\":{},\"series\":[",
            self.interval_ms, self.retain_ms
        ));
        for (si, series) in inner.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::json::escape_into(&mut out, &series.name);
            out.push_str(",\"labels\":");
            crate::json::escape_into(&mut out, &series.labels);
            out.push_str(&format!(
                ",\"kind\":\"{}\",\"points\":[",
                series.kind.as_str()
            ));
            let skip = series.points.len().saturating_sub(max_points);
            for (pi, point) in series.points.iter().skip(skip).enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                match &point.value {
                    PointValue::Counter(v) => out.push_str(&format!("[{},{v}]", point.ts_ms)),
                    PointValue::Gauge(v) => {
                        out.push_str(&format!("[{},{}]", point.ts_ms, json_num(*v)))
                    }
                    PointValue::Histogram {
                        sum_nanos, count, ..
                    } => out.push_str(&format!("[{},{count},{sum_nanos}]", point.ts_ms)),
                }
            }
            out.push(']');
            if series.kind == SeriesKind::Histogram {
                out.push_str(",\"windows\":{");
                let mut first = true;
                for (label, width) in WINDOWS {
                    let Some((base, end)) = window_endpoints(&series.points, width, now_ms) else {
                        continue;
                    };
                    let q = quantiles_between(&series.bounds, base, end);
                    let Some(q) = q else { continue };
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!(
                        "\"{label}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        q.count,
                        json_num(q.p50),
                        json_num(q.p90),
                        json_num(q.p99),
                        json_num(q.p999)
                    ));
                }
                out.push('}');
            }
            out.push('}');
        }
        drop(inner);
        out.push_str("],\"events\":[");
        for (i, event) in crate::audit::recent(64).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.render_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// One derived, directly plottable series (see [`Tsdb::plot_series`]).
#[derive(Debug, Clone)]
pub struct PlotSeries {
    /// Family name.
    pub name: String,
    /// Rendered label pairs (possibly empty).
    pub labels: String,
    /// Underlying series kind.
    pub kind: SeriesKind,
    /// Unit suffix for display.
    pub unit: &'static str,
    /// `(unix_ms, value)` points, oldest first.
    pub points: Vec<(u64, f64)>,
}

/// `later - earlier` with counter-reset handling: a later value below the
/// earlier one means the process restarted, so the increase is the later
/// value alone.
pub fn counter_delta(later: u64, earlier: u64) -> u64 {
    if later >= earlier {
        later - earlier
    } else {
        later
    }
}

/// Picks the window's endpoints from a point ring: the newest point as the
/// end, and the youngest point at-or-before `now - window` as the base —
/// falling back to the oldest retained point when the window predates the
/// data (window clamping). `None` when fewer than two points exist.
fn window_endpoints(
    points: &VecDeque<Point>,
    window_ms: u64,
    now_ms: u64,
) -> Option<(&Point, &Point)> {
    let end = points.back()?;
    let start_ts = now_ms.saturating_sub(window_ms);
    let mut base = points.front()?;
    for p in points.iter() {
        if p.ts_ms <= start_ts {
            base = p;
        } else {
            break;
        }
    }
    if std::ptr::eq(base, end) {
        return None;
    }
    Some((base, end))
}

fn quantiles_between(bounds: &[f64], base: &Point, end: &Point) -> Option<QuantileSet> {
    let (
        PointValue::Histogram {
            cumulative: bc,
            sum_nanos: bs,
            count: bn,
        },
        PointValue::Histogram {
            cumulative: ec,
            sum_nanos: es,
            count: en,
        },
    ) = (&base.value, &end.value)
    else {
        return None;
    };
    if bc.len() != ec.len() {
        return None;
    }
    let reset = ec.iter().zip(bc.iter()).any(|(e, b)| e < b);
    let deltas: Vec<u64> = if reset {
        ec.to_vec()
    } else {
        ec.iter().zip(bc.iter()).map(|(e, b)| e - b).collect()
    };
    if deltas.last().copied().unwrap_or(0) == 0 {
        return None;
    }
    Some(QuantileSet {
        count: if reset { *en } else { counter_delta(*en, *bn) },
        sum_nanos: if reset { *es } else { counter_delta(*es, *bs) },
        p50: bucket_quantile(bounds, &deltas, 0.50),
        p90: bucket_quantile(bounds, &deltas, 0.90),
        p99: bucket_quantile(bounds, &deltas, 0.99),
        p999: bucket_quantile(bounds, &deltas, 0.999),
    })
}

/// Interpolated quantile over cumulative bucket counts, following the
/// `histogram_quantile` convention: linear interpolation inside the bucket
/// containing the rank, and the largest finite bound when the rank lands in
/// the `+Inf` overflow bucket. `cumulative` has `bounds.len() + 1` slots.
/// Returns `0.0` for an empty histogram.
pub fn bucket_quantile(bounds: &[f64], cumulative: &[u64], q: f64) -> f64 {
    debug_assert_eq!(cumulative.len(), bounds.len() + 1);
    let total = cumulative.last().copied().unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let idx = cumulative
        .iter()
        .position(|&c| c as f64 >= rank)
        .unwrap_or(cumulative.len() - 1);
    if idx >= bounds.len() {
        // Rank falls in the +Inf bucket: report the largest finite bound.
        return bounds.last().copied().unwrap_or(0.0);
    }
    let lower = if idx == 0 { 0.0 } else { bounds[idx - 1] };
    let upper = bounds[idx];
    let prev = if idx == 0 { 0 } else { cumulative[idx - 1] };
    let in_bucket = cumulative[idx] - prev;
    if in_bucket == 0 {
        return upper;
    }
    lower + (upper - lower) * ((rank - prev as f64) / in_bucket as f64)
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Produces one tick's worth of samples (e.g. a registry snapshot closure).
pub type Source = Box<dyn Fn() -> Vec<Sample> + Send>;

/// Runs after each tick with the store and the tick timestamp — SLO
/// evaluation and tail-sampler threshold updates hang off this.
pub type OnTick = Box<dyn Fn(&Tsdb, u64) + Send>;

#[derive(Default)]
struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// The background collector thread: samples every source into the store at
/// the configured cadence, then runs the `on_tick` callbacks. The first
/// tick happens immediately on start. Dropping the handle stops the thread
/// promptly (condvar wakeup, not a sleep timeout).
pub struct Collector {
    stop: Arc<StopFlag>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").finish_non_exhaustive()
    }
}

impl Collector {
    /// Spawns the collector thread. Fails only if the OS refuses a thread.
    pub fn start(
        tsdb: Arc<Tsdb>,
        sources: Vec<Source>,
        on_tick: Vec<OnTick>,
    ) -> std::io::Result<Collector> {
        let stop = Arc::new(StopFlag::default());
        let thread_stop = Arc::clone(&stop);
        let interval = Duration::from_millis(tsdb.interval_ms());
        let handle = std::thread::Builder::new()
            .name("dfp-tsdb-collect".into())
            .spawn(move || loop {
                let now = now_unix_ms();
                let mut samples = Vec::new();
                for source in &sources {
                    samples.extend(source());
                }
                tsdb.ingest(now, samples);
                for hook in &on_tick {
                    hook(&tsdb, now);
                }
                let guard = thread_stop
                    .stopped
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let (guard, _) = thread_stop
                    .cv
                    .wait_timeout_while(guard, interval, |stopped| !*stopped)
                    .unwrap_or_else(|e| e.into_inner());
                if *guard {
                    return;
                }
            })?;
        Ok(Collector {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        *self.stop.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.stop.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn cfg(interval_ms: u64, retain_ms: u64) -> TsdbConfig {
        TsdbConfig::default()
            .with_interval(Duration::from_millis(interval_ms))
            .with_retain(Duration::from_millis(retain_ms.max(1000)))
    }

    #[test]
    fn duration_parsing_units() {
        assert_eq!(parse_duration("3600"), Some(Duration::from_secs(3600)));
        assert_eq!(parse_duration("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration("90s"), Some(Duration::from_secs(90)));
        assert_eq!(parse_duration("15m"), Some(Duration::from_secs(900)));
        assert_eq!(parse_duration("2h"), Some(Duration::from_secs(7200)));
        assert_eq!(parse_duration("nope"), None);
    }

    #[test]
    fn counter_windows_difference_and_clamp() {
        let r = Registry::new();
        let c = r.counter("req_total", "x");
        let tsdb = Tsdb::new(&cfg(1000, 3_600_000));
        tsdb.ingest(1_000, r.snapshot());
        c.add(10);
        tsdb.ingest(2_000, r.snapshot());
        c.add(30);
        tsdb.ingest(3_000, r.snapshot());
        // Full window: 40 over 2 s.
        assert_eq!(
            tsdb.counter_increase("req_total", "", 10_000, 3_000),
            Some((40, 2_000))
        );
        // 1 s window: base is the point at ts=2000.
        assert_eq!(
            tsdb.counter_increase("req_total", "", 1_000, 3_000),
            Some((30, 1_000))
        );
        // Single point → no answer.
        let fresh = Tsdb::new(&cfg(1000, 3_600_000));
        fresh.ingest(1_000, r.snapshot());
        assert_eq!(fresh.counter_increase("req_total", "", 1_000, 1_000), None);
    }

    #[test]
    fn counter_reset_counts_later_value() {
        assert_eq!(counter_delta(5, 100), 5);
        assert_eq!(counter_delta(100, 5), 95);
    }

    #[test]
    fn retention_evicts_old_points_and_caps_length() {
        let r = Registry::new();
        let c = r.counter("x_total", "x");
        let tsdb = Tsdb::new(&cfg(1000, 5_000));
        let cap = cfg(1000, 5_000).capacity();
        for i in 0..50u64 {
            c.inc();
            tsdb.ingest(1_000 * (i + 1), r.snapshot());
        }
        let len = tsdb.series_len("x_total", "").unwrap();
        assert!(len <= cap, "{len} > cap {cap}");
        // Oldest retained point must be within the horizon.
        let (increase, span) = tsdb
            .counter_increase("x_total", "", u64::MAX, 50_000)
            .unwrap();
        assert!(span <= 5_000, "span {span} exceeds retention");
        assert!(increase <= 6);
    }

    #[test]
    fn monotone_timestamps_enforced() {
        let r = Registry::new();
        r.counter("t_total", "t").inc();
        let tsdb = Tsdb::new(&cfg(1000, 3_600_000));
        tsdb.ingest(5_000, r.snapshot());
        tsdb.ingest(4_000, r.snapshot()); // clock stepped back
        assert_eq!(tsdb.last_ts_ms(), 5_001);
    }

    #[test]
    fn bucket_quantile_interpolates() {
        let bounds = [0.1, 0.2, 0.4];
        // 10 obs ≤0.1, 10 in (0.1,0.2], none in (0.2,0.4], 0 overflow.
        let cumulative = [10, 20, 20, 20];
        assert!((bucket_quantile(&bounds, &cumulative, 0.5) - 0.1).abs() < 1e-12);
        // p75 → rank 15 → bucket (0.1,0.2], halfway.
        assert!((bucket_quantile(&bounds, &cumulative, 0.75) - 0.15).abs() < 1e-12);
        // Rank in overflow → largest finite bound.
        assert_eq!(bucket_quantile(&bounds, &[0, 0, 0, 5], 0.99), 0.4);
        // Empty histogram.
        assert_eq!(bucket_quantile(&bounds, &[0, 0, 0, 0], 0.5), 0.0);
    }

    #[test]
    fn histogram_windows_diff_snapshots() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "x", &[0.1, 0.2, 0.4]);
        let tsdb = Tsdb::new(&cfg(1000, 3_600_000));
        tsdb.ingest(10, r.snapshot()); // empty baseline tick
        for _ in 0..100 {
            h.observe_nanos(50_000_000); // 0.05 s, all in first bucket
        }
        tsdb.ingest(1_000, r.snapshot());
        for _ in 0..100 {
            h.observe_nanos(300_000_000); // 0.3 s, third bucket
        }
        tsdb.ingest(2_000, r.snapshot());
        // Over the last second only the 0.3 s observations count.
        let q = tsdb
            .window_quantiles("lat_seconds", "", 1_000, 2_000)
            .unwrap();
        assert_eq!(q.count, 100);
        assert!(q.p50 > 0.2 && q.p50 <= 0.4, "{q:?}");
        // Over everything, the median sits in the first bucket.
        let q = tsdb
            .window_quantiles("lat_seconds", "", 10_000, 2_000)
            .unwrap();
        assert_eq!(q.count, 200);
        assert!(q.p50 <= 0.1, "{q:?}");
    }

    #[test]
    fn history_json_parses_and_round_trips() {
        let r = Registry::new();
        r.counter("a_total", "a").add(3);
        r.gauge("g", "g").set(7);
        let h = r.histogram("lat_seconds", "x", &[0.1]);
        h.observe_nanos(50_000_000);
        let tsdb = Tsdb::new(&cfg(1000, 3_600_000));
        tsdb.ingest(1_000, r.snapshot());
        tsdb.ingest(2_000, r.snapshot());
        let text = tsdb.render_history_json(2_000, 100);
        let value = crate::json::parse(&text).expect("history JSON parses");
        assert!(value.get("events").is_some());
        let Some(crate::json::Value::Arr(series)) = value.get("series") else {
            panic!("series array missing in {text}");
        };
        assert_eq!(series.len(), 3);
    }

    #[test]
    fn collector_samples_and_stops() {
        let r = Arc::new(Registry::new());
        let c = r.counter("bg_total", "bg");
        c.add(5);
        let tsdb = Arc::new(Tsdb::new(
            &cfg(10, 60_000), // 10 ms cadence
        ));
        let src = Arc::clone(&r);
        let collector = Collector::start(
            Arc::clone(&tsdb),
            vec![Box::new(move || src.snapshot())],
            vec![],
        )
        .expect("spawn");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while tsdb.series_len("bg_total", "").unwrap_or(0) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "collector never ticked"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(collector); // joins promptly
        let frozen = tsdb.series_len("bg_total", "").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(tsdb.series_len("bg_total", "").unwrap(), frozen);
    }
}
