//! Structured JSONL event logging, levelled via `DFP_LOG`.
//!
//! Events are single JSON objects written to stderr:
//!
//! ```json
//! {"ts_ns":123456,"level":"warn","target":"dfp_core::pipeline",
//!  "msg":"anytime mining stopped early","fields":{"stopped_by":"deadline"}}
//! ```
//!
//! Logging is **off** unless `DFP_LOG` is set to one of `error`, `warn`,
//! `info`, `debug`, `trace` (or programmatically via [`set_level`]). The
//! disabled path is one relaxed atomic load per call site.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::json::escape_into;
use crate::span::now_ns;

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error = 1,
    /// Degraded but continuing (e.g. anytime mining stopped early).
    Warn = 2,
    /// Lifecycle milestones (server started, model loaded).
    Info = 3,
    /// Per-operation detail (per-request access lines).
    Debug = 4,
    /// Highest-volume diagnostics.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `DFP_LOG` value (case-insensitive). `"off"`/`"none"`/`""`
    /// mean disabled; unknown values also disable, rather than guess.
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Environment variable controlling the log level.
pub const LOG_ENV: &str = "DFP_LOG";

/// 0 = off, 1..=5 = max enabled level, UNINIT = read DFP_LOG on first use.
const UNINIT: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn current_max() -> u8 {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNINIT {
        return v;
    }
    let from_env = std::env::var(LOG_ENV)
        .ok()
        .and_then(|s| Level::parse(&s))
        .map_or(0, |l| l as u8);
    MAX_LEVEL.store(from_env, Ordering::Relaxed);
    from_env
}

/// Overrides the level (`None` disables). Wins over `DFP_LOG`.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= current_max()
}

/// Emits one structured event. `fields` become the `"fields"` object.
///
/// Prefer the level helpers ([`error`], [`warn`], [`info`], [`debug`],
/// [`trace_event`]); this is the escape hatch for computed levels.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str(&format!("{{\"ts_ns\":{},\"level\":\"", now_ns()));
    line.push_str(level.as_str());
    line.push_str("\",\"target\":");
    escape_into(&mut line, target);
    line.push_str(",\"msg\":");
    escape_into(&mut line, msg);
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        escape_into(&mut line, key);
        line.push(':');
        escape_into(&mut line, value);
    }
    line.push_str("}}");
    // One write per event keeps lines intact across threads.
    eprintln!("{line}");
}

/// Emits an [`Level::Error`] event.
pub fn error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Error, target, msg, fields);
}

/// Emits a [`Level::Warn`] event.
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Warn, target, msg, fields);
}

/// Emits a [`Level::Info`] event.
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Info, target, msg, fields);
}

/// Emits a [`Level::Debug`] event.
pub fn debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Debug, target, msg, fields);
}

/// Emits a [`Level::Trace`] event (named to avoid clashing with span
/// tracing in glob imports).
pub fn trace_event(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn set_level_gates_enabled() {
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(None);
        assert!(!enabled(Level::Error));
    }
}
