//! `dfp-metrics-check` — runs the Prometheus conformance checker over a
//! scraped `/metrics` payload.
//!
//! ```text
//! dfp-metrics-check [<file>|-] [--require FAMILY]... [--min-exemplars N]
//! ```
//!
//! Reads the exposition from the file (or stdin when `-`/omitted), checks
//! it with [`dfp_obs::promcheck`], and additionally asserts each
//! `--require`d family is announced and that at least `--min-exemplars`
//! well-formed OpenMetrics exemplars ride the bucket lines. Exits non-zero
//! listing every violation.

use std::io::Read;
use std::process::ExitCode;

use dfp_obs::promcheck;

fn main() -> ExitCode {
    let mut source: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut min_exemplars = 0usize;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--require" => match argv.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("dfp-metrics-check: --require needs a family name");
                    return ExitCode::FAILURE;
                }
            },
            "--min-exemplars" => match argv.next().as_deref().map(str::parse) {
                Some(Ok(n)) => min_exemplars = n,
                _ => {
                    eprintln!("dfp-metrics-check: --min-exemplars needs a count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: dfp-metrics-check [<file>|-] [--require FAMILY]... [--min-exemplars N]"
                );
                return ExitCode::SUCCESS;
            }
            other if source.is_none() => source = Some(other.to_string()),
            other => {
                eprintln!("dfp-metrics-check: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match source.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("dfp-metrics-check: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dfp-metrics-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    if text.trim().is_empty() {
        eprintln!("dfp-metrics-check: empty exposition");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    match promcheck::check(&text) {
        Ok(stats) => {
            println!(
                "ok: {} families, {} series, {} samples, {} exemplars",
                stats.families, stats.series, stats.samples, stats.exemplars
            );
            if stats.exemplars < min_exemplars {
                eprintln!(
                    "dfp-metrics-check: {} exemplar(s) found, --min-exemplars {min_exemplars}",
                    stats.exemplars
                );
                failed = true;
            }
        }
        Err(errors) => {
            for error in &errors {
                eprintln!("dfp-metrics-check: {error}");
            }
            failed = true;
        }
    }
    for family in &required {
        if !text.contains(&format!("# TYPE {family} ")) {
            eprintln!("dfp-metrics-check: required family '{family}' not exposed");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
