//! `dfp-top` — a terminal live view of a running `dfp-serve`.
//!
//! ```text
//! dfp-top --addr 127.0.0.1:8080 [--interval-ms 1000] [--once]
//! ```
//!
//! Polls `GET /metrics/history` and `GET /alerts`, parses the JSON with the
//! in-tree `dfp_obs::json` parser, and renders counters as rates, gauges
//! raw, histograms with their windowed p50/p99 — plus firing alerts and the
//! most recent registry events. `--once` prints a single frame and exits
//! (used by CI to prove the endpoint round-trips).

use dfp_obs::json::{self, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                if let Some(a) = args.next() {
                    addr = a
                        .trim_start_matches("http://")
                        .trim_end_matches('/')
                        .to_string();
                }
            }
            "--interval-ms" => match args.next().as_deref().map(str::parse) {
                Some(Ok(ms)) => interval = Duration::from_millis(ms),
                _ => return usage("--interval-ms expects a number"),
            },
            "--once" => once = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    loop {
        match frame(&addr) {
            Ok(text) => {
                if !once {
                    // ANSI clear + home.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{text}");
            }
            Err(e) => {
                eprintln!("dfp-top: {e}");
                if once {
                    return ExitCode::FAILURE;
                }
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: dfp-top --addr <host:port> [--interval-ms <n>] [--once]");
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One GET over a fresh connection (the server closes after each response).
fn get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    if status != 200 {
        return Err(format!("{path} answered {status}"));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| "no body".to_string())
}

fn frame(addr: &str) -> Result<String, String> {
    let history = json::parse(&get(addr, "/metrics/history")?)
        .map_err(|e| format!("/metrics/history JSON: {e:?}"))?;
    let alerts = get(addr, "/alerts")
        .ok()
        .and_then(|body| json::parse(&body).ok());
    let mut out = String::new();

    let now_ms = history.get("now_ms").and_then(|v| v.as_int()).unwrap_or(0);
    let interval_ms = history
        .get("interval_ms")
        .and_then(|v| v.as_int())
        .unwrap_or(0);
    out.push_str(&format!(
        "dfp-top · {addr} · now {now_ms} ms · tsdb interval {interval_ms} ms\n"
    ));

    if let Some(alerts) = &alerts {
        let firing = alerts.get("firing").and_then(|v| v.as_int()).unwrap_or(0);
        out.push_str(&format!("alerts firing: {firing}\n"));
        if let Some(Value::Arr(items)) = alerts.get("alerts") {
            for a in items {
                let state = a.get("state").and_then(|v| v.as_str()).unwrap_or("?");
                if state == "firing" {
                    out.push_str(&format!(
                        "  FIRING {} [{}] burn short {:.2} long {:.2}\n",
                        a.get("slo").and_then(|v| v.as_str()).unwrap_or("?"),
                        a.get("severity").and_then(|v| v.as_str()).unwrap_or("?"),
                        a.get("burn_short").and_then(|v| v.as_f64()).unwrap_or(0.0),
                        a.get("burn_long").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    ));
                }
            }
        }
    }

    out.push_str(&format!(
        "\n{:<44} {:<28} {:>14}\n",
        "series", "labels", "value"
    ));
    let Some(Value::Arr(series)) = history.get("series") else {
        return Err("history JSON missing series".to_string());
    };
    for s in series {
        let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        let labels = s.get("labels").and_then(|v| v.as_str()).unwrap_or("");
        let kind = s.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        let Some(Value::Arr(points)) = s.get("points") else {
            continue;
        };
        let cell = match kind {
            "counter" => counter_rate_cell(points),
            "gauge" => points
                .last()
                .and_then(|p| pt_val(p, 1))
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            "histogram" => {
                let windows = s.get("windows");
                let p99 = windows
                    .and_then(|w| w.get("1m"))
                    .and_then(|w| w.get("p99"))
                    .and_then(|v| v.as_f64());
                match p99 {
                    Some(p99) => format!("p99(1m) {p99:.4}s"),
                    None => "—".to_string(),
                }
            }
            _ => String::new(),
        };
        if !cell.is_empty() {
            out.push_str(&format!("{name:<44} {labels:<28} {cell:>14}\n"));
        }
    }

    if let Some(Value::Arr(events)) = history.get("events") {
        if !events.is_empty() {
            out.push_str("\nrecent registry events:\n");
            for e in events.iter().rev().take(5) {
                out.push_str(&format!(
                    "  {} {} v{} → {}\n",
                    e.get("kind").and_then(|v| v.as_str()).unwrap_or("?"),
                    e.get("model").and_then(|v| v.as_str()).unwrap_or("?"),
                    e.get("version").and_then(|v| v.as_int()).unwrap_or(0),
                    e.get("outcome").and_then(|v| v.as_str()).unwrap_or("?"),
                ));
            }
        }
    }
    Ok(out)
}

fn pt_val(point: &Value, idx: usize) -> Option<f64> {
    match point {
        Value::Arr(fields) => fields.get(idx).and_then(|v| v.as_f64()),
        _ => None,
    }
}

/// Rate between the last two raw counter points, per second.
fn counter_rate_cell(points: &[Value]) -> String {
    if points.len() < 2 {
        return "—".to_string();
    }
    let (a, b) = (&points[points.len() - 2], &points[points.len() - 1]);
    let (Some(t0), Some(v0), Some(t1), Some(v1)) =
        (pt_val(a, 0), pt_val(a, 1), pt_val(b, 0), pt_val(b, 1))
    else {
        return "—".to_string();
    };
    let dt = ((t1 - t0) / 1000.0).max(1e-9);
    let dv = if v1 >= v0 { v1 - v0 } else { v1 };
    format!("{:.2}/s", dv / dt)
}
