//! `dfp-trace-check` — validates a JSONL span trace and optionally converts
//! it to the Chrome trace-event format.
//!
//! ```text
//! dfp-trace-check <trace.jsonl> [--min-spans N] [--require NAME]...
//!                 [--chrome <out.json>]
//! ```
//!
//! Checks that every line is a well-formed span object, ids are unique,
//! every referenced parent exists on the same thread, and child intervals
//! nest inside their parents. Exits non-zero with a diagnostic on the first
//! class of failure. `--chrome` writes a `chrome://tracing` / Perfetto
//! compatible JSON array of `ph:"X"` complete events.

use std::collections::HashMap;
use std::process::ExitCode;

use dfp_obs::json::{self, Value};

struct SpanLine {
    name: String,
    id: i128,
    parent: i128,
    tid: i128,
    start_ns: i128,
    end_ns: i128,
    attrs: Vec<(String, String)>,
    line_no: usize,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("dfp-trace-check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = None;
    let mut min_spans = 1usize;
    let mut required: Vec<String> = Vec::new();
    let mut chrome_out: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--min-spans" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_spans = n,
                None => return fail("--min-spans needs an integer"),
            },
            "--require" => match argv.next() {
                Some(name) => required.push(name),
                None => return fail("--require needs a span name"),
            },
            "--chrome" => match argv.next() {
                Some(out) => chrome_out = Some(out),
                None => return fail("--chrome needs an output path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: dfp-trace-check <trace.jsonl> [--min-spans N] \
                     [--require NAME]... [--chrome out.json]"
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else {
        return fail("missing trace file argument");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };

    let mut spans = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            return fail(&format!("line {line_no}: blank line in JSONL trace"));
        }
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return fail(&format!("line {line_no}: {e}")),
        };
        match to_span(&value, line_no) {
            Ok(span) => spans.push(span),
            Err(msg) => return fail(&format!("line {line_no}: {msg}")),
        }
    }

    if spans.len() < min_spans {
        return fail(&format!(
            "only {} span(s), expected at least {min_spans}",
            spans.len()
        ));
    }
    for name in &required {
        if !spans.iter().any(|s| &s.name == name) {
            return fail(&format!("required span '{name}' not found"));
        }
    }

    let mut by_id: HashMap<i128, &SpanLine> = HashMap::new();
    for span in &spans {
        if by_id.insert(span.id, span).is_some() {
            return fail(&format!(
                "line {}: duplicate span id {}",
                span.line_no, span.id
            ));
        }
    }
    let mut roots = 0usize;
    for span in &spans {
        if span.parent == 0 {
            roots += 1;
            continue;
        }
        let Some(parent) = by_id.get(&span.parent) else {
            return fail(&format!(
                "line {}: span {} references missing parent {}",
                span.line_no, span.id, span.parent
            ));
        };
        if parent.tid != span.tid {
            return fail(&format!(
                "line {}: span {} has parent on a different thread",
                span.line_no, span.id
            ));
        }
        if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
            return fail(&format!(
                "line {}: span '{}' [{}, {}] not nested inside parent '{}' [{}, {}]",
                span.line_no,
                span.name,
                span.start_ns,
                span.end_ns,
                parent.name,
                parent.start_ns,
                parent.end_ns
            ));
        }
    }

    if let Some(out) = chrome_out {
        let rendered = to_chrome(&spans);
        if let Err(e) = std::fs::write(&out, rendered) {
            return fail(&format!("cannot write {out}: {e}"));
        }
        println!("wrote chrome trace to {out}");
    }

    println!(
        "ok: {} spans, {} roots, {} threads",
        spans.len(),
        roots,
        spans
            .iter()
            .map(|s| s.tid)
            .collect::<std::collections::HashSet<_>>()
            .len()
    );
    ExitCode::SUCCESS
}

fn to_span(value: &Value, line_no: usize) -> Result<SpanLine, String> {
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing 'name'")?
        .to_string();
    let int = |key: &str| -> Result<i128, String> {
        value
            .get(key)
            .and_then(Value::as_int)
            .ok_or_else(|| format!("missing integer '{key}'"))
    };
    let (id, parent, tid) = (int("id")?, int("parent")?, int("tid")?);
    let (start_ns, end_ns) = (int("start_ns")?, int("end_ns")?);
    if id <= 0 {
        return Err(format!("span id {id} must be positive"));
    }
    if parent < 0 {
        return Err("negative parent id".into());
    }
    if end_ns < start_ns {
        return Err(format!("end_ns {end_ns} precedes start_ns {start_ns}"));
    }
    let mut attrs = Vec::new();
    match value.get("attrs") {
        Some(Value::Obj(map)) => {
            for (k, v) in map {
                let v = v
                    .as_str()
                    .ok_or_else(|| format!("attr '{k}' is not a string"))?;
                attrs.push((k.clone(), v.to_string()));
            }
        }
        Some(_) => return Err("'attrs' is not an object".into()),
        None => return Err("missing 'attrs'".into()),
    }
    Ok(SpanLine {
        name,
        id,
        parent,
        tid,
        start_ns,
        end_ns,
        attrs,
        line_no,
    })
}

/// Renders spans as a Chrome trace-event JSON array (`ph:"X"` complete
/// events, microsecond timestamps).
fn to_chrome(spans: &[SpanLine]) -> String {
    let mut out = String::from("[\n");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut event = String::from("{\"name\":");
        json::escape_into(&mut event, &span.name);
        event.push_str(&format!(
            ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
            span.tid,
            span.start_ns as f64 / 1000.0,
            (span.end_ns - span.start_ns) as f64 / 1000.0
        ));
        for (j, (k, v)) in span.attrs.iter().enumerate() {
            if j > 0 {
                event.push(',');
            }
            json::escape_into(&mut event, k);
            event.push(':');
            json::escape_into(&mut event, v);
        }
        event.push_str("}}");
        out.push_str(&event);
    }
    out.push_str("\n]\n");
    out
}
