//! # dfp-registry — crash-safe multi-model artifact registry with atomic
//! hot-swap
//!
//! Owns N named, versioned `DFPM` artifacts in a managed directory and hands
//! the serving layer an always-valid snapshot per model. The two contracts:
//!
//! * **Atomic hot-swap.** [`ModelRegistry::publish_bytes`] writes the new
//!   artifact via temp-file + fsync + rename, loads it back **from disk**
//!   and smoke-validates it (one canary `predict_rows` — against the
//!   incoming probe row, or the stored `PROBE` row when none came with the
//!   publish) *before* anything else mutates: a new probe row reaches disk
//!   only after validation passes, so a rolled-back swap can never leave a
//!   poisoned `PROBE` behind for boot recovery to trip over. A failed
//!   validation quarantines the rejected artifact and leaves the pointer —
//!   and the serving snapshot — untouched
//!   (`dfp_registry_swap_failures_total`). The publish returns as soon as
//!   the `CURRENT` pointer flips; the old model keeps serving every
//!   in-flight request (snapshots are `Arc`s) and is drained and retired on
//!   a background retire thread, so neither the swap lock nor the calling
//!   worker is held for the drain window.
//! * **Crash-safe boot.** [`ModelRegistry::open`] runs a recovery scan:
//!   every artifact is CRC-verified (a full typed decode), corrupt files are
//!   quarantined to `models/<name>/quarantine/`, `.tmp` leftovers from a
//!   crash mid-write are swept, and a torn or missing `CURRENT` pointer is
//!   re-derived to the newest valid version and rewritten. A SIGKILL at any
//!   byte offset during save or swap therefore leaves the process
//!   restartable with either the old or the new model — never a torn one.
//!   Only decode/CRC failures quarantine an artifact; a canary failure at
//!   boot is environmental (a stale `PROBE` row, a broken validator hook)
//!   and **skips** the candidate instead of destroying it — and when the
//!   stored probe is what fails an otherwise servable artifact, the probe
//!   itself is quarantined and the artifact promoted without it.
//!
//! Failpoint sites for chaos testing: `registry.write` (artifact/pointer
//! tmp write; `trunc` tears the payload), `registry.rename` (the atomic
//! rename), `registry.validate` (canary validation; `err` forces a
//! rollback, `panic` is contained), `registry.drain` (old-model retirement;
//! `sleep` widens the drain window).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod store;

use dfp_core::PatternClassifier;
use dfp_model::ModelError;
use dfp_obs::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, TryLockError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bounds (seconds) of per-model latency histogram buckets; matches
/// the serve-layer buckets so dashboards can overlay them. `+Inf` implied.
pub const LATENCY_BUCKETS: [f64; 8] = [0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5];

/// How often the drain loop re-checks the old snapshot's reference count.
const DRAIN_POLL: Duration = Duration::from_millis(1);

/// A pluggable load-validation hook: given the freshly loaded candidate and
/// the model's stored `PROBE` row (a CSV line, when one exists), decide
/// whether the artifact is servable. The serving layer installs a hook that
/// parses the probe against the candidate's schema and predicts it; without
/// a hook the registry falls back to [`default_canary`].
pub type Validator =
    Arc<dyn Fn(&PatternClassifier, Option<&str>) -> Result<(), String> + Send + Sync>;

/// The built-in canary: the artifact must carry a schema (it cannot answer
/// `/predict` without one) and must predict a featureless row without
/// panicking. Cheap, model-kind-agnostic, and exactly what serving does.
pub fn default_canary(model: &PatternClassifier, _probe: Option<&str>) -> Result<(), String> {
    if model.schema().is_none() {
        return Err("artifact carries no schema; not servable".to_string());
    }
    let labels = model.predict_rows(&[Vec::new()]);
    if labels.len() != 1 {
        return Err(format!(
            "canary predict returned {} labels, expected 1",
            labels.len()
        ));
    }
    Ok(())
}

/// Registry tuning knobs, with `DFP_REGISTRY_*` environment overrides.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Managed directory holding one subdirectory per model name.
    pub root: PathBuf,
    /// Artifact versions kept on disk per model after a successful swap
    /// (`DFP_REGISTRY_KEEP`, default 4, min 1); older ones are pruned.
    pub keep_versions: usize,
    /// Longest a swap waits for in-flight requests on the old model to
    /// drain before giving up on retirement accounting
    /// (`DFP_REGISTRY_DRAIN_MS`, default 5000).
    pub drain_timeout: Duration,
}

impl RegistryConfig {
    /// Defaults rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RegistryConfig {
            root: root.into(),
            keep_versions: 4,
            drain_timeout: Duration::from_millis(5000),
        }
    }

    /// Defaults overridden by any `DFP_REGISTRY_*` variables that are set;
    /// unparseable values keep the default.
    pub fn from_env(root: impl Into<PathBuf>) -> Self {
        let mut cfg = RegistryConfig::new(root);
        if let Some(n) = env_u64("DFP_REGISTRY_KEEP") {
            cfg.keep_versions = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("DFP_REGISTRY_DRAIN_MS") {
            cfg.drain_timeout = Duration::from_millis(ms);
        }
        cfg
    }

    /// Replaces the per-model kept-version count.
    pub fn with_keep_versions(mut self, keep: usize) -> Self {
        self.keep_versions = keep.max(1);
        self
    }

    /// Replaces the drain wait budget.
    pub fn with_drain_timeout(mut self, d: Duration) -> Self {
        self.drain_timeout = d;
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Why the registry could not be opened.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying filesystem error on the root or a model directory.
    Io(std::io::Error),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Why a publish (hot-swap) failed. Every variant leaves the previous
/// version serving: the `CURRENT` pointer and the in-memory snapshot flip
/// only after validation passes.
#[derive(Debug)]
pub enum SwapError {
    /// Another swap of the same model is in flight (admin answers `409`).
    Busy,
    /// The model name is not usable as a directory name.
    InvalidName(String),
    /// The uploaded bytes are not a valid `DFPM` artifact (CRC mismatch,
    /// truncation, bad magic, …) — rejected before any disk mutation.
    InvalidArtifact(ModelError),
    /// The artifact decoded but failed smoke validation; it was quarantined
    /// and the swap rolled back.
    Rejected(String),
    /// Filesystem failure mid-swap; the pointer was not flipped.
    Io(std::io::Error),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Busy => write!(f, "another swap of this model is in progress"),
            SwapError::InvalidName(n) => write!(f, "invalid model name '{n}'"),
            SwapError::InvalidArtifact(e) => write!(f, "invalid artifact: {e}"),
            SwapError::Rejected(why) => {
                write!(f, "artifact failed validation and was rolled back: {why}")
            }
            SwapError::Io(e) => write!(f, "swap i/o error: {e}"),
        }
    }
}

impl std::error::Error for SwapError {}

/// Outcome of a successful hot-swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapReport {
    /// Model name swapped.
    pub name: String,
    /// Version now serving.
    pub version: u64,
    /// Version serving before the swap, if any.
    pub previous: Option<u64>,
    /// Whether the old version was already free of in-flight requests when
    /// the pointer flipped. `false` means retirement was handed to the
    /// background retire thread (bounded by the drain budget) — the old
    /// model still serves its stragglers safely either way.
    pub drained: bool,
}

/// One loaded, immutable model version. Serving snapshots are `Arc`s of
/// this, so an in-flight request keeps its version alive across a swap.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic artifact version (the `NNNNNN.dfpm` number).
    pub version: u64,
    /// The loaded classifier.
    pub model: PatternClassifier,
}

/// Per-model serving state: the current snapshot plus cached metric handles
/// (hot-path: one hash lookup, no registry scan per request).
#[derive(Debug)]
pub struct ModelSlot {
    name: String,
    /// Serializes the entire swap protocol (write → validate → flip →
    /// drain); `try_lock` failure is the admin `409`.
    swap: Mutex<()>,
    current: RwLock<Option<Arc<ModelVersion>>>,
    requests: Arc<Counter>,
    predictions: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl ModelSlot {
    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of the currently served version (`None` = not ready).
    pub fn current(&self) -> Option<Arc<ModelVersion>> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Requests routed to this model (`dfp_registry_requests_total`).
    pub fn requests(&self) -> &Counter {
        &self.requests
    }

    /// Rows predicted by this model (`dfp_registry_predictions_total`).
    pub fn predictions(&self) -> &Counter {
        &self.predictions
    }

    /// Per-model predict latency (`dfp_registry_predict_latency_seconds`).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    fn set_current(&self, v: Option<Arc<ModelVersion>>) -> Option<Arc<ModelVersion>> {
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        std::mem::replace(&mut *cur, v)
    }
}

/// What the boot-time recovery scan found and did for one model.
#[derive(Debug, Clone, Default)]
pub struct ModelRecovery {
    /// Version chosen to serve, if any survived verification.
    pub chosen: Option<u64>,
    /// Files moved to `quarantine/` with the typed reason — corrupt
    /// artifacts (decode/CRC failures) and, when a stored `PROBE` row fails
    /// an otherwise servable artifact, the poisoned probe itself.
    pub quarantined: Vec<(String, String)>,
    /// Versions left on disk that decoded cleanly but failed canary
    /// validation even without the stored probe. These are environmental
    /// failures (e.g. a broken validator hook), so the evidence is kept in
    /// place rather than quarantined; a later boot with a healthy
    /// environment serves them again.
    pub skipped: Vec<(String, String)>,
    /// `true` when `CURRENT` was missing, torn, or pointed at an invalid
    /// version and had to be re-derived and rewritten.
    pub pointer_rewritten: bool,
}

/// The full recovery scan outcome, per model name.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-model recovery actions, sorted by name.
    pub models: Vec<(String, ModelRecovery)>,
}

impl RecoveryReport {
    /// Total files quarantined across all models.
    pub fn total_quarantined(&self) -> usize {
        self.models.iter().map(|(_, m)| m.quarantined.len()).sum()
    }
}

/// The multi-model registry. See the crate docs for the two contracts.
pub struct ModelRegistry {
    cfg: RegistryConfig,
    models: RwLock<HashMap<String, Arc<ModelSlot>>>,
    metrics: dfp_obs::Registry,
    validator: Option<Validator>,
    recovery: RecoveryReport,
    /// Highest version ever observed per model (survives pruning), so a
    /// republish after deep pruning can never reuse a version number.
    high_water: Mutex<HashMap<String, u64>>,
    swaps_epoch: AtomicI64,
    /// Feed to the background retire thread; `None` only during
    /// construction and after `Drop` closes the channel.
    retire_tx: Option<mpsc::Sender<RetireJob>>,
    retire_thread: Option<JoinHandle<()>>,
}

/// One retirement handed to the background retire thread: wait (bounded)
/// for in-flight requests to leave `old`, then count it retired. The job
/// carries everything it needs so the thread never reaches back into the
/// registry.
struct RetireJob {
    name: String,
    old: Arc<ModelVersion>,
    retired: Arc<Counter>,
}

impl Drop for ModelRegistry {
    fn drop(&mut self) {
        // Close the retire channel, then wait out any queued retirements so
        // no drain outlives the registry. Each job's wait is bounded by the
        // drain budget, so the join is too.
        self.retire_tx.take();
        if let Some(t) = self.retire_thread.take() {
            let _ = t.join();
        }
    }
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("root", &self.cfg.root)
            .field("models", &self.names())
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// Opens (creating if needed) the registry at `cfg.root` and runs the
    /// recovery scan with the built-in canary validator.
    pub fn open(cfg: RegistryConfig) -> Result<Self, RegistryError> {
        Self::open_with_validator(cfg, None)
    }

    /// Like [`Self::open`], with a serving-layer validation hook that
    /// replaces [`default_canary`] for both recovery and publish.
    pub fn open_with_validator(
        cfg: RegistryConfig,
        validator: Option<Validator>,
    ) -> Result<Self, RegistryError> {
        let _sp = dfp_obs::span("registry.open");
        fs::create_dir_all(&cfg.root)?;
        let mut registry = ModelRegistry {
            cfg,
            models: RwLock::new(HashMap::new()),
            metrics: dfp_obs::Registry::new(),
            validator,
            recovery: RecoveryReport::default(),
            high_water: Mutex::new(HashMap::new()),
            swaps_epoch: AtomicI64::new(0),
            retire_tx: None,
            retire_thread: None,
        };
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&registry.cfg.root)? {
            let entry = entry?;
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str().filter(|n| store::valid_name(n)) {
                names.push(name.to_string());
            }
        }
        names.sort();
        let mut report = RecoveryReport::default();
        for name in names {
            let outcome = registry.recover_model(&name)?;
            report.models.push((name, outcome));
        }
        registry.recovery = report;
        let (tx, rx) = mpsc::channel();
        let drain_timeout = registry.cfg.drain_timeout;
        registry.retire_thread = Some(
            std::thread::Builder::new()
                .name("dfp-registry-retire".into())
                .spawn(move || retire_loop(rx, drain_timeout))?,
        );
        registry.retire_tx = Some(tx);
        Ok(registry)
    }

    /// The managed root directory.
    pub fn root(&self) -> &Path {
        &self.cfg.root
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The per-model slot, if `name` is registered.
    pub fn model(&self, name: &str) -> Option<Arc<ModelSlot>> {
        self.models
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// What the boot-time recovery scan found and did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Serializes a fitted classifier and publishes it as the next version
    /// of `name`.
    pub fn publish_model(
        &self,
        name: &str,
        model: &PatternClassifier,
        probe: Option<&str>,
    ) -> Result<SwapReport, SwapError> {
        self.publish_bytes(name, &dfp_model::to_bytes(model), probe)
    }

    /// Publishes raw `DFPM` bytes as the next version of `name`, performing
    /// the full atomic hot-swap protocol; `probe` (a CSV row in the model
    /// schema's order) replaces the stored canary row when given — but only
    /// lands on disk once the new artifact has passed validation with it.
    ///
    /// Swap protocol — the pointer flips only at step 5, so every failure
    /// before it is an automatic rollback:
    /// 1. decode + CRC-verify the bytes in memory (`Err(InvalidArtifact)`)
    ///    — before the model's slot or directory even exists, so a failed
    ///    first publish registers nothing;
    /// 2. acquire the per-model swap lock (`Err(Busy)` when contended);
    /// 3. write `NNNNNN.dfpm` via temp-file + fsync + rename
    ///    (`registry.write` / `registry.rename` failpoints);
    /// 4. reload **from disk** and smoke-validate against the incoming
    ///    probe row, or the stored one when none was given
    ///    (`registry.validate`; failure quarantines the new file,
    ///    `Err(Rejected)`), then persist the incoming probe;
    /// 5. flip `CURRENT` atomically, then swap the in-memory snapshot;
    /// 6. prune old artifacts and return; the old version drains and
    ///    retires on the background retire thread (`registry.drain`).
    pub fn publish_bytes(
        &self,
        name: &str,
        bytes: &[u8],
        probe: Option<&str>,
    ) -> Result<SwapReport, SwapError> {
        let started = Instant::now();
        let mut sp = dfp_obs::span("registry.swap");
        sp.attr("model", name);
        if !store::valid_name(name) {
            return Err(SwapError::InvalidName(name.to_string()));
        }
        // Reject garbage before any disk mutation — and before the slot
        // (and its directory) exists, so a failed first publish under a
        // brand-new name cannot register a phantom model. The full typed
        // decode covers magic, version, structure and the trailing CRC-32.
        if let Err(e) = dfp_model::from_bytes(bytes) {
            // Counted only against already-registered names: minting the
            // labelled counter here would itself leak the phantom name
            // into /metrics. The audit ring is free-form, so the rejection
            // is still recorded there.
            if self.model(name).is_some() {
                self.swap_failures(name).inc();
            }
            dfp_obs::audit::record(
                "swap",
                name,
                None,
                "rejected",
                started.elapsed(),
                &e.to_string(),
            );
            return Err(SwapError::InvalidArtifact(e));
        }
        let slot = self.slot(name).map_err(SwapError::Io)?;
        let _guard = match slot.swap.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return Err(SwapError::Busy),
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        };

        let dir = self.cfg.root.join(name);
        let previous = slot.current().map(|v| v.version);
        let version = self.next_version(name, &dir).map_err(SwapError::Io)?;
        let file = store::artifact_name(version);
        store::write_atomic(&dir, &file, bytes, "registry.write", "registry.rename")
            .map_err(|e| self.swap_io_failure(name, &dir, started, e))?;

        // Validate what is actually on disk — the artifact a restart would
        // boot from — against the incoming probe row (or the stored one
        // when this publish carries none). The incoming probe stays in
        // memory until validation passes: writing it first would leave a
        // poisoned PROBE behind a rolled-back swap, for boot recovery to
        // fail every healthy version against.
        let incoming_probe = probe
            .map(|row| row.trim().to_string())
            .filter(|row| !row.is_empty());
        let effective_probe = incoming_probe.clone().or_else(|| read_probe(&dir));
        let model = match self.validate_artifact(&dir, version, true, effective_probe.as_deref()) {
            Ok(m) => m,
            Err(why) => {
                let _ = store::quarantine(&dir, &dir.join(&file));
                self.swap_failures(name).inc();
                dfp_obs::log::warn(
                    "dfp_registry",
                    "swap rolled back: artifact failed validation",
                    &[("model", name), ("why", &why)],
                );
                dfp_obs::audit::record(
                    "rollback",
                    name,
                    Some(version),
                    "rejected",
                    started.elapsed(),
                    &why,
                );
                return Err(SwapError::Rejected(why));
            }
        };
        if let Some(row) = &incoming_probe {
            let body = format!("{row}\n");
            store::write_atomic(
                &dir,
                store::PROBE,
                body.as_bytes(),
                "registry.write",
                "registry.rename",
            )
            .map_err(|e| self.swap_io_failure(name, &dir, started, e))?;
        }

        store::write_current(&dir, version)
            .map_err(|e| self.swap_io_failure(name, &dir, started, e))?;
        let fresh = Arc::new(ModelVersion { version, model });
        let old = slot.set_current(Some(fresh));
        self.swaps(name).inc();
        self.current_version(name).set(version as i64);
        self.swaps_epoch.fetch_add(1, Ordering::Relaxed);
        sp.attr("version", version);

        // Retirement (drain + the retired accounting) runs on the
        // background retire thread, so the swap lock and the calling worker
        // are free the moment the pointer flips. Pruning is cheap and stays
        // inline so the on-disk version bound holds as soon as we return.
        let drained = match old {
            None => true,
            Some(old) => {
                let idle = Arc::strong_count(&old) <= 1;
                self.enqueue_retire(RetireJob {
                    name: name.to_string(),
                    old,
                    retired: self.retired(name),
                });
                idle
            }
        };
        self.prune(name, &dir, version);
        dfp_obs::log::info(
            "dfp_registry",
            "hot-swap complete",
            &[("model", name), ("version", &version.to_string())],
        );
        dfp_obs::audit::record(
            "swap",
            name,
            Some(version),
            "promoted",
            started.elapsed(),
            &match previous {
                Some(p) => format!("previous version {p}"),
                None => "first version".to_string(),
            },
        );
        Ok(SwapReport {
            name: name.to_string(),
            version,
            previous,
            drained,
        })
    }

    /// Monotonic count of completed swaps across all models — a cheap
    /// change detector for pollers.
    pub fn swaps_observed(&self) -> i64 {
        self.swaps_epoch.load(Ordering::Relaxed)
    }

    /// Appends the registry's Prometheus families (per-model labels) to
    /// `out`.
    pub fn render_metrics_into(&self, out: &mut String) {
        self.metrics.render_into(out);
    }

    /// One collector tick's worth of samples from the registry's private
    /// metrics — the serving TSDB stack feeds on this so per-model swap and
    /// latency families gain history and windowed percentiles.
    pub fn metrics_snapshot(&self) -> Vec<dfp_obs::metrics::Sample> {
        self.metrics.snapshot()
    }

    // -- internals ---------------------------------------------------------

    /// Get-or-create the slot (and directory) for `name`.
    fn slot(&self, name: &str) -> std::io::Result<Arc<ModelSlot>> {
        if let Some(slot) = self.model(name) {
            return Ok(slot);
        }
        fs::create_dir_all(self.cfg.root.join(name))?;
        store::sync_dir(&self.cfg.root);
        let mut models = self.models.write().unwrap_or_else(|e| e.into_inner());
        Ok(Arc::clone(models.entry(name.to_string()).or_insert_with(
            || {
                Arc::new(ModelSlot {
                    name: name.to_string(),
                    swap: Mutex::new(()),
                    current: RwLock::new(None),
                    requests: self.metrics.counter_with(
                        "dfp_registry_requests_total",
                        "Requests routed to this model",
                        &[("model", name)],
                    ),
                    predictions: self.metrics.counter_with(
                        "dfp_registry_predictions_total",
                        "Rows predicted by this model",
                        &[("model", name)],
                    ),
                    latency: self.metrics.histogram_with(
                        "dfp_registry_predict_latency_seconds",
                        "Per-model predict latency",
                        &LATENCY_BUCKETS,
                        &[("model", name)],
                    ),
                })
            },
        )))
    }

    /// The next artifact version for `name`: above everything on disk and
    /// everything ever seen in this process (pruning must not recycle).
    fn next_version(&self, name: &str, dir: &Path) -> std::io::Result<u64> {
        let on_disk = store::list_versions(dir)?.last().copied().unwrap_or(0);
        let mut hw = self.high_water.lock().unwrap_or_else(|e| e.into_inner());
        let next = on_disk.max(*hw.get(name).unwrap_or(&0)) + 1;
        hw.insert(name.to_string(), next);
        Ok(next)
    }

    fn swap_io_failure(
        &self,
        name: &str,
        dir: &Path,
        started: Instant,
        e: std::io::Error,
    ) -> SwapError {
        // A failed write may strand a `.tmp`; sweep it now rather than
        // waiting for the next boot.
        let _ = store::sweep_tmp(dir);
        self.swap_failures(name).inc();
        dfp_obs::audit::record(
            "swap",
            name,
            None,
            "io_error",
            started.elapsed(),
            &e.to_string(),
        );
        SwapError::Io(e)
    }

    /// Loads `dir/NNNNNN.dfpm` and runs the canary against `probe`.
    /// `with_failpoint` arms the `registry.validate` site (publish path
    /// only — an armed failpoint must not make the boot scan reject healthy
    /// artifacts). Panics from the site or from a broken model are
    /// contained and reported as validation failures.
    fn validate_artifact(
        &self,
        dir: &Path,
        version: u64,
        with_failpoint: bool,
        probe: Option<&str>,
    ) -> Result<PatternClassifier, String> {
        let path = dir.join(store::artifact_name(version));
        let model =
            dfp_model::load(&path).map_err(|e| format!("artifact failed verification: {e}"))?;
        if with_failpoint {
            match catch_unwind(|| dfp_fault::evaluate("registry.validate")) {
                Ok(Some(dfp_fault::Action::Err)) => {
                    return Err("fault injected at failpoint 'registry.validate'".to_string())
                }
                Ok(_) => {}
                Err(panic) => {
                    return Err(format!(
                        "validation panicked: {}",
                        panic_message(panic.as_ref())
                    ))
                }
            }
        }
        self.run_canary(&model, probe)?;
        Ok(model)
    }

    /// Runs the installed validator (or [`default_canary`]) on an
    /// already-loaded model, containing panics.
    fn run_canary(&self, model: &PatternClassifier, probe: Option<&str>) -> Result<(), String> {
        let validator = self.validator.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| match &validator {
            Some(v) => v(model, probe),
            None => default_canary(model, probe),
        }));
        match outcome {
            Ok(r) => r,
            Err(panic) => Err(format!(
                "validation panicked: {}",
                panic_message(panic.as_ref())
            )),
        }
    }

    /// Hands an old version to the background retire thread. A send can
    /// only fail once `Drop` has closed the channel; the old `Arc` then
    /// simply drops here, which retires it just as finally.
    fn enqueue_retire(&self, job: RetireJob) {
        if let Some(tx) = &self.retire_tx {
            let _ = tx.send(job);
        }
    }

    /// Deletes artifacts beyond `keep_versions`, newest first, never the
    /// one `CURRENT` names. Prune errors are ignored — an undeleted old
    /// version costs disk, not correctness.
    fn prune(&self, name: &str, dir: &Path, current: u64) {
        let started = Instant::now();
        let Ok(versions) = store::list_versions(dir) else {
            return;
        };
        let mut keep: Vec<u64> = versions.iter().rev().copied().collect();
        keep.truncate(self.cfg.keep_versions);
        let mut deleted: Vec<String> = Vec::new();
        for v in versions {
            if v != current
                && !keep.contains(&v)
                && fs::remove_file(dir.join(store::artifact_name(v))).is_ok()
            {
                deleted.push(v.to_string());
            }
        }
        if !deleted.is_empty() {
            dfp_obs::audit::record(
                "prune",
                name,
                Some(current),
                "deleted",
                started.elapsed(),
                &format!("removed versions {}", deleted.join(",")),
            );
        }
    }

    /// Boot-time recovery for one model directory. See the crate docs.
    fn recover_model(&mut self, name: &str) -> Result<ModelRecovery, RegistryError> {
        let started = Instant::now();
        let dir = self.cfg.root.join(name);
        let mut outcome = ModelRecovery::default();
        store::sweep_tmp(&dir)?;

        // CRC-verify (full decode) every artifact; quarantine corrupt ones.
        let mut valid: Vec<u64> = Vec::new();
        for v in store::list_versions(&dir)? {
            let path = dir.join(store::artifact_name(v));
            match dfp_model::load(&path) {
                Ok(_) => valid.push(v),
                Err(e) => {
                    let why = e.to_string();
                    let _ = store::quarantine(&dir, &path);
                    dfp_obs::log::warn(
                        "dfp_registry",
                        "quarantined corrupt artifact",
                        &[
                            ("model", name),
                            ("file", &store::artifact_name(v)),
                            ("why", &why),
                        ],
                    );
                    outcome.quarantined.push((store::artifact_name(v), why));
                }
            }
        }

        // Resolve the pointer: trust it when it names a valid version, else
        // fall back to the newest valid one. Quarantine is reserved for
        // decode/CRC failures — proof the file itself is corrupt. A canary
        // failure here is environmental (a stale or poisoned `PROBE` row, a
        // broken validator hook) and says nothing about the artifact, so
        // the candidate is skipped in place, never destroyed; and when the
        // stored probe is what fails an otherwise servable artifact, the
        // probe is quarantined and the artifact promoted without it, so one
        // bad probe can never cascade into quarantining every good version.
        let probe = read_probe(&dir);
        let pointed = store::read_current(&dir);
        let mut candidates: Vec<u64> = Vec::new();
        if let Some(p) = pointed.filter(|p| valid.contains(p)) {
            candidates.push(p);
        }
        for &v in valid.iter().rev() {
            if !candidates.contains(&v) {
                candidates.push(v);
            }
        }
        let mut chosen: Option<(u64, PatternClassifier)> = None;
        let mut probe_poisoned = false;
        for v in candidates {
            let path = dir.join(store::artifact_name(v));
            let model = match dfp_model::load(&path) {
                Ok(m) => m,
                Err(e) => {
                    // Corruption that slipped past (or raced) the CRC pass
                    // above: the one case quarantine is for.
                    let _ = store::quarantine(&dir, &path);
                    outcome
                        .quarantined
                        .push((store::artifact_name(v), e.to_string()));
                    continue;
                }
            };
            match self.run_canary(&model, probe.as_deref()) {
                Ok(()) => {
                    chosen = Some((v, model));
                    break;
                }
                Err(why) if probe.is_some() => match self.run_canary(&model, None) {
                    Ok(()) => {
                        probe_poisoned = true;
                        chosen = Some((v, model));
                        break;
                    }
                    Err(why_bare) => {
                        outcome
                            .skipped
                            .push((store::artifact_name(v), format!("{why}; {why_bare}")));
                    }
                },
                Err(why) => outcome.skipped.push((store::artifact_name(v), why)),
            }
        }
        if probe_poisoned {
            let why =
                "stored PROBE row fails canary validation against a servable artifact".to_string();
            let _ = store::quarantine(&dir, &dir.join(store::PROBE));
            dfp_obs::log::warn(
                "dfp_registry",
                "quarantined poisoned probe row; serving without it",
                &[("model", name), ("why", &why)],
            );
            outcome.quarantined.push((store::PROBE.to_string(), why));
        }
        for (file, why) in &outcome.skipped {
            dfp_obs::log::warn(
                "dfp_registry",
                "skipped unservable (but intact) artifact during recovery",
                &[("model", name), ("file", file), ("why", why)],
            );
        }

        let slot = self.slot(name)?;
        if let Some((version, model)) = chosen {
            if pointed != Some(version) {
                store::write_current(&dir, version)?;
                outcome.pointer_rewritten = true;
            }
            slot.set_current(Some(Arc::new(ModelVersion { version, model })));
            self.current_version(name).set(version as i64);
            outcome.chosen = Some(version);
            self.high_water
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(name.to_string(), version);
        }
        if !outcome.quarantined.is_empty() {
            self.quarantined(name).add(outcome.quarantined.len() as u64);
            for (file, why) in &outcome.quarantined {
                dfp_obs::audit::record(
                    "quarantine",
                    name,
                    None,
                    "quarantined",
                    Duration::ZERO,
                    &format!("{file}: {why}"),
                );
            }
        }
        dfp_obs::audit::record(
            "recover",
            name,
            outcome.chosen,
            if outcome.chosen.is_some() {
                "promoted"
            } else {
                "none"
            },
            started.elapsed(),
            &format!(
                "quarantined {}, skipped {}, pointer {}",
                outcome.quarantined.len(),
                outcome.skipped.len(),
                if outcome.pointer_rewritten {
                    "rewritten"
                } else {
                    "intact"
                }
            ),
        );
        Ok(outcome)
    }

    // -- per-model swap metrics (cold path; looked up on use) --------------

    fn swaps(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter_with(
            "dfp_registry_swaps_total",
            "Completed atomic hot-swaps",
            &[("model", name)],
        )
    }

    fn swap_failures(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter_with(
            "dfp_registry_swap_failures_total",
            "Swaps rejected or rolled back before the pointer flip",
            &[("model", name)],
        )
    }

    fn quarantined(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter_with(
            "dfp_registry_quarantined_total",
            "Artifacts quarantined as corrupt or unservable",
            &[("model", name)],
        )
    }

    fn retired(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter_with(
            "dfp_registry_retired_total",
            "Old versions fully drained and retired after a swap",
            &[("model", name)],
        )
    }

    fn current_version(&self, name: &str) -> Arc<Gauge> {
        self.metrics.gauge_with(
            "dfp_registry_current_version",
            "Artifact version currently serving",
            &[("model", name)],
        )
    }
}

/// The stored `PROBE` row for a model directory, if a non-empty one exists.
fn read_probe(dir: &Path) -> Option<String> {
    fs::read_to_string(dir.join(store::PROBE))
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// The background retire thread: drains each old version off the publish
/// path and keeps the `dfp_registry_retired_total` accounting.
fn retire_loop(rx: mpsc::Receiver<RetireJob>, drain_timeout: Duration) {
    for job in rx {
        let _sp = dfp_obs::span("registry.drain");
        if drain(&job.old, drain_timeout) {
            job.retired.inc();
        } else {
            dfp_obs::log::warn(
                "dfp_registry",
                "old version still referenced past the drain budget; released to its stragglers",
                &[
                    ("model", job.name.as_str()),
                    ("version", &job.old.version.to_string()),
                ],
            );
        }
    }
}

/// Waits (bounded) for every in-flight request holding the old snapshot to
/// finish; returns `true` when the old version fully retired in budget.
/// `registry.drain=sleep` widens the window for chaos tests; `err` skips
/// the wait entirely (an operator-forced immediate retire).
fn drain(old: &Arc<ModelVersion>, timeout: Duration) -> bool {
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate("registry.drain") {
        return Arc::strong_count(old) <= 1;
    }
    let deadline = Instant::now() + timeout;
    while Arc::strong_count(old) > 1 {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(DRAIN_POLL);
    }
    true
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
