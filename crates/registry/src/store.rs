//! On-disk layout and crash-safe filesystem primitives.
//!
//! One registry root holds one directory per model name:
//!
//! ```text
//! <root>/<name>/000001.dfpm       versioned artifacts (6-digit, ascending)
//! <root>/<name>/CURRENT           pointer file: "<version file name>\n"
//! <root>/<name>/PROBE             optional canary CSV row for validation
//! <root>/<name>/quarantine/       corrupt artifacts moved aside at boot
//! ```
//!
//! Every mutation goes through [`write_atomic`]: the payload is written to a
//! `.tmp` sibling, fsynced, renamed into place, and the directory is fsynced
//! so the rename itself is durable. A crash at any byte offset therefore
//! leaves either the old file, the new file, or a `.tmp` leftover that the
//! boot-time recovery scan deletes — never a torn visible file. (A torn
//! `CURRENT` can still appear if something outside this module scribbles on
//! it; recovery treats any unreadable pointer as absent and re-derives it.)

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the current-version pointer inside a model directory.
pub const CURRENT: &str = "CURRENT";
/// File name of the optional canary probe row inside a model directory.
pub const PROBE: &str = "PROBE";
/// Subdirectory corrupt artifacts are quarantined into.
pub const QUARANTINE: &str = "quarantine";
/// Extension of model artifacts.
pub const ARTIFACT_EXT: &str = "dfpm";

/// `true` when `name` is usable as a model name (and therefore a directory
/// name): 1–64 ASCII alphanumerics, `_`, `-` or `.` — with no leading dot,
/// so names can never traverse (`..`) or hide themselves.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// `000007.dfpm` for version 7.
pub fn artifact_name(version: u64) -> String {
    format!("{version:06}.{ARTIFACT_EXT}")
}

/// Parses `000007.dfpm` back to 7; `None` for anything else.
pub fn parse_artifact_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(&format!(".{ARTIFACT_EXT}"))?;
    if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Fsyncs `dir` so a rename inside it is durable. Best-effort: on platforms
/// where directories cannot be opened this is a no-op (the rename is still
/// atomic, just not guaranteed ordered with respect to a crash).
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `dir/final_name` crash-safely: `.tmp` sibling, fsync,
/// rename, directory fsync. `site_write` / `site_rename` are the failpoint
/// sites evaluated before the write and the rename respectively —
/// `registry.write=trunc` produces a torn payload (exercising recovery),
/// `registry.rename=err` fails after the tmp file exists (exercising the
/// `.tmp` sweep).
pub fn write_atomic(
    dir: &Path,
    final_name: &str,
    bytes: &[u8],
    site_write: &str,
    site_rename: &str,
) -> io::Result<PathBuf> {
    let tmp = dir.join(format!("{final_name}.tmp"));
    let dest = dir.join(final_name);
    let mut payload = bytes;
    match dfp_fault::evaluate(site_write) {
        Some(dfp_fault::Action::Err) => {
            return Err(io::Error::other(format!(
                "fault injected at failpoint '{site_write}'"
            )))
        }
        Some(dfp_fault::Action::Trunc) => payload = &bytes[..bytes.len() / 2],
        _ => {}
    }
    let mut f = File::create(&tmp)?;
    f.write_all(payload)?;
    f.sync_all()?;
    drop(f);
    if let Some(dfp_fault::Action::Err) = dfp_fault::evaluate(site_rename) {
        return Err(io::Error::other(format!(
            "fault injected at failpoint '{site_rename}'"
        )));
    }
    fs::rename(&tmp, &dest)?;
    sync_dir(dir);
    Ok(dest)
}

/// Moves `path` into `dir/quarantine/`, creating the subdirectory on first
/// use. A name collision gets a numeric suffix so repeated quarantines of
/// equally-named files never clobber evidence.
pub fn quarantine(dir: &Path, path: &Path) -> io::Result<PathBuf> {
    let qdir = dir.join(QUARANTINE);
    fs::create_dir_all(&qdir)?;
    let base = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact")
        .to_string();
    let mut dest = qdir.join(&base);
    let mut n = 1u32;
    while dest.exists() {
        dest = qdir.join(format!("{base}.{n}"));
        n += 1;
    }
    fs::rename(path, &dest)?;
    sync_dir(&qdir);
    sync_dir(dir);
    Ok(dest)
}

/// Deletes every `*.tmp` leftover in `dir` (a crash mid-write strands one).
pub fn sweep_tmp(dir: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(())
}

/// All artifact versions present in `dir`, ascending.
pub fn list_versions(dir: &Path) -> io::Result<Vec<u64>> {
    let mut versions = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(v) = entry
            .file_name()
            .to_str()
            .and_then(parse_artifact_name)
            .filter(|_| entry.path().is_file())
        {
            versions.push(v);
        }
    }
    versions.sort_unstable();
    Ok(versions)
}

/// Reads the `CURRENT` pointer: the version it names, if the file exists,
/// is readable and parses. Any torn, empty or garbage pointer is `None` —
/// the recovery scan then re-derives and rewrites it.
pub fn read_current(dir: &Path) -> Option<u64> {
    let text = fs::read_to_string(dir.join(CURRENT)).ok()?;
    parse_artifact_name(text.trim())
}

/// Atomically points `CURRENT` at `version`.
pub fn write_current(dir: &Path, version: u64) -> io::Result<()> {
    let body = format!("{}\n", artifact_name(version));
    write_atomic(
        dir,
        CURRENT,
        body.as_bytes(),
        "registry.write",
        "registry.rename",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_validate() {
        assert!(valid_name("iris"));
        assert!(valid_name("model-v2.1_final"));
        assert!(!valid_name(""));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn artifact_names_round_trip() {
        assert_eq!(artifact_name(7), "000007.dfpm");
        assert_eq!(parse_artifact_name("000007.dfpm"), Some(7));
        assert_eq!(parse_artifact_name("1234567.dfpm"), Some(1_234_567));
        assert_eq!(parse_artifact_name("CURRENT"), None);
        assert_eq!(parse_artifact_name("x.dfpm"), None);
        assert_eq!(parse_artifact_name(".dfpm"), None);
        assert_eq!(parse_artifact_name("000007.dfpm.tmp"), None);
    }

    #[test]
    fn atomic_write_round_trips_and_sweeps() {
        let dir = std::env::temp_dir().join(format!("dfp-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        write_atomic(&dir, "a.bin", b"hello", "t.none", "t.none").unwrap();
        assert_eq!(fs::read(dir.join("a.bin")).unwrap(), b"hello");
        fs::write(dir.join("b.bin.tmp"), b"torn").unwrap();
        sweep_tmp(&dir).unwrap();
        assert!(!dir.join("b.bin.tmp").exists());
        assert!(dir.join("a.bin").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn current_pointer_round_trips_and_rejects_torn() {
        let dir = std::env::temp_dir().join(format!("dfp-store-cur-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_current(&dir), None);
        write_current(&dir, 3).unwrap();
        assert_eq!(read_current(&dir), Some(3));
        fs::write(dir.join(CURRENT), b"0000").unwrap(); // torn
        assert_eq!(read_current(&dir), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
