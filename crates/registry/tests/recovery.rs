//! Crash-recovery property: whatever single corruption hits the on-disk
//! state — the newest artifact or the `CURRENT` pointer, truncated,
//! byte-flipped or deleted, at any offset — reopening the registry yields a
//! serving model that is bit-identically the **old or the new version**,
//! and prediction through the recovered snapshot never errors. This is the
//! SIGKILL-at-any-byte-offset invariant, driven deterministically instead
//! of by an actual kill (the chaos suite in dfp-serve does the real kills).

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_registry::{store, ModelRegistry, RegistryConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!(
        "dfp-registry-recovery-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; `flip` swaps the labels so
/// versions 1 and 2 answer the canonical row differently.
fn confusable(flip: bool) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, mut label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        if flip {
            label = 1 - label;
        }
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

/// Artifact bytes for versions 1 (predicts c0) and 2 (predicts c1), fitted
/// once and reused across every generated case.
fn artifacts() -> &'static (Vec<u8>, Vec<u8>) {
    static BOTH: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    BOTH.get_or_init(|| {
        let v1 = PatternClassifier::fit(&confusable(false), &FrameworkConfig::pat_fs()).unwrap();
        let v2 = PatternClassifier::fit(&confusable(true), &FrameworkConfig::pat_fs()).unwrap();
        (dfp_model::to_bytes(&v1), dfp_model::to_bytes(&v2))
    })
}

/// The recovered model's answer to the canonical row.
fn predict_one(reg: &ModelRegistry) -> u32 {
    let version = reg.model("m").expect("slot").current().expect("ready");
    version
        .model
        .predict(&confusable(false))
        .expect("recovered model must predict")[0]
        .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_corruption_recovers_to_old_or_new(
        target in 0u8..2,   // 0 = newest artifact, 1 = CURRENT pointer
        mode in 0u8..3,     // 0 = truncate at offset, 1 = flip byte, 2 = delete
        frac in 0u64..10_000,
    ) {
        let root = scratch();
        let (v1, v2) = artifacts();
        {
            let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
            reg.publish_bytes("m", v1, None).unwrap();
            reg.publish_bytes("m", v2, None).unwrap();
        }
        let dir = root.join("m");
        let victim = match target {
            0 => dir.join(store::artifact_name(2)),
            _ => dir.join(store::CURRENT),
        };
        let bytes = fs::read(&victim).unwrap();
        let offset = (frac as usize * bytes.len()) / 10_000;
        match mode {
            0 => {
                let mut torn = bytes;
                torn.truncate(offset);
                fs::write(&victim, &torn).unwrap();
            }
            1 => {
                let mut flipped = bytes;
                if !flipped.is_empty() {
                    let i = offset.min(flipped.len() - 1);
                    flipped[i] ^= 0xFF;
                }
                fs::write(&victim, &flipped).unwrap();
            }
            _ => fs::remove_file(&victim).unwrap(),
        }

        // First restart after the "crash".
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        let chosen = reg.recovery().models[0].1.chosen;
        prop_assert!(
            chosen == Some(1) || chosen == Some(2),
            "recovery chose {chosen:?} (target {target}, mode {mode}, offset {offset})"
        );
        // Once the slot reports ready, prediction must succeed and the
        // answer must be exactly the chosen version's — old or new, never
        // torn.
        let answer = predict_one(&reg);
        let expected = if chosen == Some(1) { 0 } else { 1 };
        prop_assert_eq!(
            answer, expected,
            "version {:?} must answer {} (target {}, mode {}, offset {})",
            chosen, expected, target, mode, offset
        );
        drop(reg);

        // A second restart finds the repaired state and makes the same
        // choice: recovery is idempotent.
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        prop_assert_eq!(reg.recovery().models[0].1.chosen, chosen);
        prop_assert_eq!(predict_one(&reg), expected);
        prop_assert_eq!(reg.recovery().models[0].1.quarantined.len(), 0);

        fs::remove_dir_all(&root).ok();
    }
}
