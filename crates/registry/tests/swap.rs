//! Atomic hot-swap protocol: validation gates the pointer flip, every
//! failure mode rolls back to the previous version, and boot-time recovery
//! restores a valid serving state from arbitrary on-disk damage.

use dfp_core::{FrameworkConfig, PatternClassifier};
use dfp_data::dataset::{categorical_dataset, Dataset};
use dfp_registry::{store, ModelRegistry, RegistryConfig, SwapError};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint state is process-global; every test that arms one serialises.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dfp_fault::disarm_all();
    guard
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dfp-registry-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// (a0=v1, a1=v1) → c0 and (a0=v1, a1=v2) → c1; a2 is noise. `flip` swaps
/// the labels so the two fitted models are distinguishable by prediction.
fn confusable(flip: bool) -> Dataset {
    let mut rows: Vec<(Vec<u32>, u32)> = Vec::new();
    for i in 0..60u32 {
        let (vals, mut label) = if i % 2 == 0 {
            (vec![1, 1, i % 3], 0)
        } else {
            (vec![1, 2, i % 3], 1)
        };
        if flip {
            label = 1 - label;
        }
        rows.push((vals, label));
    }
    let borrowed: Vec<(&[u32], u32)> = rows.iter().map(|(v, l)| (&v[..], *l)).collect();
    categorical_dataset(&[3, 3, 3], 2, &borrowed)
}

fn fit(flip: bool) -> PatternClassifier {
    PatternClassifier::fit(&confusable(flip), &FrameworkConfig::pat_fs()).expect("fit")
}

/// Prediction for the first canonical row (a0=v1, a1=v1): class 0 from the
/// unflipped model, class 1 from the flipped one.
fn predict_one(reg: &ModelRegistry, name: &str) -> u32 {
    let slot = reg.model(name).expect("slot");
    let version = slot.current().expect("current");
    version.model.predict(&confusable(false)).expect("predict")[0].0
}

#[test]
fn publish_swaps_and_versions_are_monotonic() {
    let _g = lock_faults();
    let root = scratch("swap");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    let a = reg.publish_model("iris", &fit(false), None).unwrap();
    assert_eq!(a.version, 1);
    assert_eq!(a.previous, None);
    assert!(a.drained);
    let before = predict_one(&reg, "iris");

    let b = reg.publish_model("iris", &fit(true), None).unwrap();
    assert_eq!(b.version, 2);
    assert_eq!(b.previous, Some(1));
    let after = predict_one(&reg, "iris");
    assert_ne!(
        before, after,
        "flipped-label model must predict differently"
    );
    assert_eq!(store::read_current(&root.join("iris")), Some(2));
    assert_eq!(reg.names(), vec!["iris".to_string()]);
}

#[test]
fn in_flight_snapshot_survives_a_swap() {
    let _g = lock_faults();
    let root = scratch("inflight");
    let reg = ModelRegistry::open(
        RegistryConfig::new(&root).with_drain_timeout(Duration::from_millis(50)),
    )
    .unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();
    let held = reg.model("m").unwrap().current().unwrap(); // in-flight request
    let report = reg.publish_model("m", &fit(true), None).unwrap();
    assert!(!report.drained, "held snapshot must block full drain");
    // The old snapshot still answers — bit-identical to before the swap.
    assert_eq!(held.model.predict(&confusable(false)).unwrap()[0].0, 0);
    assert_eq!(held.version, 1);
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 2);
}

#[test]
fn garbage_bytes_are_rejected_before_any_disk_mutation() {
    let _g = lock_faults();
    let root = scratch("garbage");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();

    // Flip one payload byte: CRC catches it, nothing lands on disk.
    let mut bytes = dfp_model::to_bytes(&fit(true));
    bytes[10] ^= 0xFF;
    match reg.publish_bytes("m", &bytes, None) {
        Err(SwapError::InvalidArtifact(_)) => {}
        other => panic!("expected InvalidArtifact, got {other:?}"),
    }
    assert_eq!(store::list_versions(&root.join("m")).unwrap(), vec![1]);
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 1);
}

#[test]
fn validation_failure_quarantines_and_rolls_back() {
    let _g = lock_faults();
    let root = scratch("reject");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();

    for action in [dfp_fault::Action::Err, dfp_fault::Action::Panic] {
        dfp_fault::arm_times("registry.validate", action, Some(1));
        match reg.publish_model("m", &fit(true), None) {
            Err(SwapError::Rejected(_)) => {}
            other => panic!("expected Rejected under {action:?}, got {other:?}"),
        }
    }
    dfp_fault::disarm_all();

    let dir = root.join("m");
    assert_eq!(store::read_current(&dir), Some(1), "pointer must not flip");
    assert_eq!(store::list_versions(&dir).unwrap(), vec![1]);
    assert_eq!(
        fs::read_dir(dir.join(store::QUARANTINE)).unwrap().count(),
        2,
        "both rejected artifacts quarantined"
    );
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 1);
    // And the next clean publish still works, with a fresh version number.
    let report = reg.publish_model("m", &fit(true), None).unwrap();
    assert!(report.version > 1);

    let mut metrics = String::new();
    reg.render_metrics_into(&mut metrics);
    assert!(metrics.contains("dfp_registry_swap_failures_total{model=\"m\"} 2"));
    assert!(metrics.contains("dfp_registry_swaps_total{model=\"m\"} 2"));
}

#[test]
fn torn_write_fails_crc_and_rolls_back() {
    let _g = lock_faults();
    let root = scratch("torn");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();

    dfp_fault::arm_times("registry.write", dfp_fault::Action::Trunc, Some(1));
    match reg.publish_model("m", &fit(true), None) {
        Err(SwapError::Rejected(_)) => {}
        other => panic!("expected Rejected for torn artifact, got {other:?}"),
    }
    dfp_fault::disarm_all();
    assert_eq!(store::read_current(&root.join("m")), Some(1));
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 1);
}

#[test]
fn rename_failure_leaves_no_tmp_and_rolls_back() {
    let _g = lock_faults();
    let root = scratch("rename");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();

    dfp_fault::arm_times("registry.rename", dfp_fault::Action::Err, Some(1));
    match reg.publish_model("m", &fit(true), None) {
        Err(SwapError::Io(_)) => {}
        other => panic!("expected Io, got {other:?}"),
    }
    dfp_fault::disarm_all();
    let dir = root.join("m");
    let tmps = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
        })
        .count();
    assert_eq!(tmps, 0, "failed swap must sweep its tmp file");
    assert_eq!(store::read_current(&dir), Some(1));
}

#[test]
fn concurrent_swap_is_busy() {
    let _g = lock_faults();
    let root = scratch("busy");
    let reg = std::sync::Arc::new(ModelRegistry::open(RegistryConfig::new(&root)).unwrap());
    reg.publish_model("m", &fit(false), None).unwrap();

    // First swap stalls inside canary validation (holding the swap lock)
    // via the failpoint — drain no longer runs under the lock, so
    // validation is the widest window a competing swap can observe. The
    // second swap must answer Busy, not block.
    dfp_fault::arm_times("registry.validate", dfp_fault::Action::Sleep(400), Some(1));
    let bg = {
        let reg = std::sync::Arc::clone(&reg);
        let bytes = dfp_model::to_bytes(&fit(true));
        std::thread::spawn(move || reg.publish_bytes("m", &bytes, None))
    };
    std::thread::sleep(Duration::from_millis(100));
    match reg.publish_model("m", &fit(false), None) {
        Err(SwapError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    bg.join().unwrap().unwrap();
    dfp_fault::disarm_all();
}

#[test]
fn prune_keeps_the_newest_versions() {
    let _g = lock_faults();
    let root = scratch("prune");
    let reg = ModelRegistry::open(RegistryConfig::new(&root).with_keep_versions(2)).unwrap();
    let model = fit(false);
    for _ in 0..5 {
        reg.publish_model("m", &model, None).unwrap();
    }
    assert_eq!(store::list_versions(&root.join("m")).unwrap(), vec![4, 5]);
    // Version numbers never recycle even past pruned history.
    assert_eq!(reg.publish_model("m", &model, None).unwrap().version, 6);
}

#[test]
fn recovery_quarantines_corrupt_and_resolves_torn_pointer() {
    let _g = lock_faults();
    let root = scratch("recover");
    {
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        reg.publish_model("m", &fit(false), None).unwrap();
        reg.publish_model("m", &fit(true), None).unwrap();
    }
    let dir = root.join("m");
    // Corrupt the newest artifact and tear the pointer that names it.
    let newest = dir.join(store::artifact_name(2));
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&newest, &bytes).unwrap();
    fs::write(dir.join(store::CURRENT), b"0000").unwrap();
    fs::write(dir.join("junk.tmp"), b"leftover").unwrap();

    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    let slot = reg.model("m").expect("model survives");
    assert_eq!(slot.current().unwrap().version, 1, "falls back to valid v1");
    assert_eq!(store::read_current(&dir), Some(1), "pointer rewritten");
    assert!(!dir.join("junk.tmp").exists(), "tmp swept");
    assert!(dir
        .join(store::QUARANTINE)
        .join(store::artifact_name(2))
        .exists());
    let (_, m) = &reg.recovery().models[0];
    assert_eq!(m.chosen, Some(1));
    assert!(m.pointer_rewritten);
    assert_eq!(m.quarantined.len(), 1);
    // Predictions from the recovered model are the old model's.
    assert_eq!(predict_one(&reg, "m"), 0);
}

#[test]
fn recovery_with_everything_corrupt_leaves_model_not_ready() {
    let _g = lock_faults();
    let root = scratch("allbad");
    {
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        reg.publish_model("m", &fit(false), None).unwrap();
    }
    let dir = root.join("m");
    fs::write(dir.join(store::artifact_name(1)), b"DFPMgarbage").unwrap();

    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    let slot = reg.model("m").expect("slot still registered");
    assert!(slot.current().is_none(), "nothing valid to serve");
    assert_eq!(reg.recovery().total_quarantined(), 1);
}

#[test]
fn probe_row_is_stored_and_survives_swaps() {
    let _g = lock_faults();
    let root = scratch("probe");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    reg.publish_model("m", &fit(false), Some("v1,v1,v0"))
        .unwrap();
    assert_eq!(
        fs::read_to_string(root.join("m").join(store::PROBE)).unwrap(),
        "v1,v1,v0\n"
    );
    // A probe-less republish keeps the stored row.
    reg.publish_model("m", &fit(true), None).unwrap();
    assert_eq!(
        fs::read_to_string(root.join("m").join(store::PROBE)).unwrap(),
        "v1,v1,v0\n"
    );
}

#[test]
fn rejected_swap_leaves_stored_probe_intact() {
    let _g = lock_faults();
    let root = scratch("probekeep");
    // A validator that accepts the stored probe but refuses the poisoned
    // replacement a bad publish carries.
    let validator: dfp_registry::Validator = std::sync::Arc::new(|_m, probe| match probe {
        Some("poison") => Err("poisoned probe".to_string()),
        _ => Ok(()),
    });
    let reg = ModelRegistry::open_with_validator(
        RegistryConfig::new(&root),
        Some(std::sync::Arc::clone(&validator)),
    )
    .unwrap();
    reg.publish_model("m", &fit(false), Some("good")).unwrap();

    match reg.publish_model("m", &fit(true), Some("poison")) {
        Err(SwapError::Rejected(_)) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(
        fs::read_to_string(root.join("m").join(store::PROBE)).unwrap(),
        "good\n",
        "a rolled-back publish must never overwrite the stored PROBE"
    );
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 1);
    drop(reg);

    // A restart finds the healthy probe: v1 keeps serving, nothing new is
    // quarantined. (Before the fix, the poisoned probe survived rollback
    // and boot recovery then failed — and destroyed — every version.)
    let reg =
        ModelRegistry::open_with_validator(RegistryConfig::new(&root), Some(validator)).unwrap();
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 1);
    let (_, m) = &reg.recovery().models[0];
    assert_eq!(m.chosen, Some(1));
    assert!(m.quarantined.is_empty());
    assert!(m.skipped.is_empty());
}

#[test]
fn rejected_first_publish_registers_no_phantom_model() {
    let _g = lock_faults();
    let root = scratch("phantom");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    match reg.publish_bytes("ghost", b"DFPMnot-really-an-artifact", None) {
        Err(SwapError::InvalidArtifact(_)) => {}
        other => panic!("expected InvalidArtifact, got {other:?}"),
    }
    assert!(reg.names().is_empty(), "phantom model registered");
    assert!(reg.model("ghost").is_none());
    assert!(!root.join("ghost").exists(), "phantom directory created");
    let mut metrics = String::new();
    reg.render_metrics_into(&mut metrics);
    assert!(
        !metrics.contains("ghost"),
        "phantom metrics label:\n{metrics}"
    );
}

#[test]
fn poisoned_probe_at_boot_is_quarantined_not_the_artifacts() {
    let _g = lock_faults();
    let root = scratch("staleprobe");
    {
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        reg.publish_model("m", &fit(false), None).unwrap();
        reg.publish_model("m", &fit(true), None).unwrap();
    }
    let dir = root.join("m");
    // Poison the stored probe, then boot with a validator that chokes on
    // it (the serving validator does exactly this on a schema mismatch).
    fs::write(dir.join(store::PROBE), b"poison\n").unwrap();
    let validator: dfp_registry::Validator = std::sync::Arc::new(|_m, probe| match probe {
        Some("poison") => Err("probe rejected by schema".to_string()),
        _ => Ok(()),
    });
    let reg =
        ModelRegistry::open_with_validator(RegistryConfig::new(&root), Some(validator)).unwrap();

    // Both artifacts survive on disk and the newest serves; the probe —
    // not the artifacts — was quarantined.
    assert_eq!(store::list_versions(&dir).unwrap(), vec![1, 2]);
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 2);
    assert!(!dir.join(store::PROBE).exists());
    assert!(dir.join(store::QUARANTINE).join(store::PROBE).exists());
    let (_, m) = &reg.recovery().models[0];
    assert_eq!(m.chosen, Some(2));
    assert!(m.skipped.is_empty());
    assert_eq!(m.quarantined.len(), 1);
    assert_eq!(m.quarantined[0].0, store::PROBE);
    // Publishing with a fresh probe works normally afterwards.
    reg.publish_model("m", &fit(false), Some("fresh")).unwrap();
}

#[test]
fn canary_failure_at_boot_skips_without_destroying_artifacts() {
    let _g = lock_faults();
    let root = scratch("envfail");
    {
        let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
        reg.publish_model("m", &fit(false), None).unwrap();
        reg.publish_model("m", &fit(true), None).unwrap();
    }
    let dir = root.join("m");
    // A broken validator hook fails every candidate with no probe in play:
    // purely environmental, so nothing may be quarantined.
    let broken: dfp_registry::Validator =
        std::sync::Arc::new(|_m, _p| Err("validator hook is broken".to_string()));
    let reg = ModelRegistry::open_with_validator(RegistryConfig::new(&root), Some(broken)).unwrap();
    assert!(reg.model("m").unwrap().current().is_none(), "not servable");
    let (_, m) = &reg.recovery().models[0];
    assert_eq!(m.chosen, None);
    assert_eq!(m.skipped.len(), 2, "both versions skipped in place");
    assert!(m.quarantined.is_empty(), "evidence must not be destroyed");
    assert_eq!(
        store::list_versions(&dir).unwrap(),
        vec![1, 2],
        "artifacts must survive an environmental canary failure"
    );
    drop(reg);

    // A later boot with a healthy environment serves the newest again.
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    assert_eq!(reg.model("m").unwrap().current().unwrap().version, 2);
}

#[test]
fn swap_returns_at_flip_without_waiting_for_drain() {
    let _g = lock_faults();
    let root = scratch("bgdrain");
    let reg =
        ModelRegistry::open(RegistryConfig::new(&root).with_drain_timeout(Duration::from_secs(5)))
            .unwrap();
    reg.publish_model("m", &fit(false), None).unwrap();
    let held = reg.model("m").unwrap().current().unwrap(); // in-flight request
    let start = std::time::Instant::now();
    let report = reg.publish_model("m", &fit(true), None).unwrap();
    assert!(!report.drained, "held snapshot cannot have drained already");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "publish must return at the pointer flip, not wait out the 5s drain budget"
    );
    // The swap lock is free immediately: a follow-up swap succeeds while
    // the old version still drains in the background.
    let report = reg.publish_model("m", &fit(false), None).unwrap();
    assert_eq!(report.version, 3);
    assert_eq!(held.model.predict(&confusable(false)).unwrap()[0].0, 0);
    drop(held);
}

#[test]
fn invalid_names_are_refused() {
    let _g = lock_faults();
    let root = scratch("names");
    let reg = ModelRegistry::open(RegistryConfig::new(&root)).unwrap();
    for bad in ["", "../up", "a/b", ".hidden", "a b"] {
        match reg.publish_model(bad, &fit(false), None) {
            Err(SwapError::InvalidName(_)) => {}
            other => panic!("expected InvalidName for {bad:?}, got {other:?}"),
        }
    }
}
