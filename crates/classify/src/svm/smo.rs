//! Kernel C-SVC trained by SMO (Platt 1998) with maximal-violating-pair
//! working-set selection (Keerthi et al. / LIBSVM's first-order rule).
//! One-vs-rest for multiclass; kernel rows are memoised in a bounded cache.

use super::Kernel;
use crate::Classifier;
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// Kernel SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSvmParams {
    /// Regularisation constant `C`.
    pub c: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT-violation stopping tolerance (LIBSVM default 1e-3).
    pub eps: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
    /// Maximum number of cached kernel rows.
    pub cache_rows: usize,
}

impl Default for KernelSvmParams {
    fn default() -> Self {
        KernelSvmParams {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.5 },
            eps: 1e-3,
            max_iter: 100_000,
            cache_rows: 512,
        }
    }
}

impl KernelSvmParams {
    /// RBF parameters with the given `C` and `γ`.
    pub fn rbf(c: f64, gamma: f64) -> Self {
        KernelSvmParams {
            c,
            kernel: Kernel::Rbf { gamma },
            ..KernelSvmParams::default()
        }
    }
}

/// One trained binary sub-problem: support vectors with coefficients.
/// Fields are public so the model can be serialized and reconstructed.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryModel {
    /// Support-vector rows (sorted active feature ids).
    pub sv_rows: Vec<Vec<u32>>,
    /// Per-support-vector coefficient `α_i y_i`.
    pub sv_coef: Vec<f64>,
    /// Bias term.
    pub b: f64,
}

impl BinaryModel {
    fn decision(&self, kernel: &Kernel, row: &[u32]) -> f64 {
        let mut v = self.b;
        for (sv, &coef) in self.sv_rows.iter().zip(&self.sv_coef) {
            v += coef * kernel.eval(sv, row);
        }
        v
    }
}

/// A trained kernel SVM (one-vs-rest).
#[derive(Debug, Clone)]
pub struct KernelSvm {
    models: Vec<BinaryModel>,
    kernel: Kernel,
}

impl KernelSvm {
    /// Trains on a labelled sparse binary matrix.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &SparseBinaryMatrix, params: &KernelSvmParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty matrix");
        let models = (0..data.n_classes)
            .map(|c| {
                let y: Vec<f64> = data
                    .labels
                    .iter()
                    .map(|l| if l.index() == c { 1.0 } else { -1.0 })
                    .collect();
                smo_binary(&data.rows, &y, params)
            })
            .collect();
        KernelSvm {
            models,
            kernel: params.kernel,
        }
    }

    /// Decision value for class `c`.
    pub fn decision(&self, row: &[u32], c: usize) -> f64 {
        self.models[c].decision(&self.kernel, row)
    }

    /// Total number of support vectors across sub-problems.
    pub fn n_support_vectors(&self) -> usize {
        self.models.iter().map(|m| m.sv_rows.len()).sum()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The per-class binary sub-models — the complete trained state, for
    /// model serialization.
    pub fn binary_models(&self) -> &[BinaryModel] {
        &self.models
    }

    /// Reconstructs a model from serialized state.
    ///
    /// # Panics
    /// Panics if `models` is empty or any sub-model has mismatched
    /// rows/coefficients lengths.
    pub fn from_parts(kernel: Kernel, models: Vec<BinaryModel>) -> Self {
        assert!(!models.is_empty(), "need at least one binary sub-model");
        for (c, m) in models.iter().enumerate() {
            assert_eq!(
                m.sv_rows.len(),
                m.sv_coef.len(),
                "class {c}: support vectors and coefficients differ in length"
            );
        }
        KernelSvm { models, kernel }
    }
}

impl Classifier for KernelSvm {
    fn predict(&self, row: &[u32]) -> ClassId {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for c in 0..self.models.len() {
            let v = self.decision(row, c);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        ClassId(best as u32)
    }
}

/// Bounded memo of kernel rows, evicting in insertion order.
struct RowCache {
    rows: Vec<Option<Vec<f64>>>,
    order: std::collections::VecDeque<usize>,
    cap: usize,
}

impl RowCache {
    fn new(n: usize, cap: usize) -> Self {
        RowCache {
            rows: vec![None; n],
            order: std::collections::VecDeque::new(),
            cap: cap.max(2),
        }
    }

    fn get<'a>(&'a mut self, i: usize, data: &[Vec<u32>], kernel: &Kernel) -> &'a [f64] {
        if self.rows[i].is_none() {
            if self.order.len() >= self.cap {
                if let Some(evict) = self.order.pop_front() {
                    self.rows[evict] = None;
                }
            }
            let row: Vec<f64> = data.iter().map(|x| kernel.eval(&data[i], x)).collect();
            self.rows[i] = Some(row);
            self.order.push_back(i);
        }
        self.rows[i].as_deref().expect("row just inserted")
    }
}

/// SMO on one binary problem. Returns the support-vector model.
fn smo_binary(rows: &[Vec<u32>], y: &[f64], params: &KernelSvmParams) -> BinaryModel {
    let n = rows.len();
    let c = params.c;
    let mut alpha = vec![0.0f64; n];
    // Gradient of the dual objective: G_i = y_i Σ_j α_j y_j K_ij − 1.
    let mut grad = vec![-1.0f64; n];
    let mut cache = RowCache::new(n, params.cache_rows);
    let tau = 1e-12;

    for _iter in 0..params.max_iter {
        // Maximal violating pair.
        let (mut i, mut m_up) = (usize::MAX, f64::NEG_INFINITY);
        let (mut j, mut m_low) = (usize::MAX, f64::INFINITY);
        for t in 0..n {
            let v = -y[t] * grad[t];
            let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c);
            if in_up && v > m_up {
                m_up = v;
                i = t;
            }
            if in_low && v < m_low {
                m_low = v;
                j = t;
            }
        }
        if i == usize::MAX || j == usize::MAX || m_up - m_low < params.eps {
            break;
        }

        let ki = cache.get(i, rows, &params.kernel).to_vec();
        let kj = cache.get(j, rows, &params.kernel).to_vec();
        let (old_ai, old_aj) = (alpha[i], alpha[j]);

        if y[i] != y[j] {
            let quad = (ki[i] + kj[j] + 2.0 * ki[j]).max(tau);
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
                if alpha[i] > c {
                    alpha[i] = c;
                    alpha[j] = c - diff;
                }
            } else {
                if alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = -diff;
                }
                if alpha[j] > c {
                    alpha[j] = c;
                    alpha[i] = c + diff;
                }
            }
        } else {
            let quad = (ki[i] + kj[j] - 2.0 * ki[j]).max(tau);
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if alpha[i] > c {
                alpha[i] = c;
                alpha[j] = sum - c;
            } else if alpha[j] > c {
                alpha[j] = c;
                alpha[i] = sum - c;
            }
        }

        let (di, dj) = (alpha[i] - old_ai, alpha[j] - old_aj);
        if di.abs() < 1e-15 && dj.abs() < 1e-15 {
            break; // numerically stuck
        }
        for t in 0..n {
            grad[t] += y[t] * (ki[t] * y[i] * di + kj[t] * y[j] * dj);
        }
    }

    // Bias: average −y_t G_t over free vectors, or the midpoint of the
    // violating-pair bounds if none are free.
    let mut free_sum = 0.0;
    let mut free_cnt = 0usize;
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    for t in 0..n {
        let v = -y[t] * grad[t];
        let in_up = (y[t] > 0.0 && alpha[t] < c) || (y[t] < 0.0 && alpha[t] > 0.0);
        let in_low = (y[t] > 0.0 && alpha[t] > 0.0) || (y[t] < 0.0 && alpha[t] < c);
        if alpha[t] > 0.0 && alpha[t] < c {
            free_sum += v;
            free_cnt += 1;
        }
        if in_up {
            lb = lb.max(v);
        }
        if in_low {
            ub = ub.min(v);
        }
    }
    let b = if free_cnt > 0 {
        free_sum / free_cnt as f64
    } else if lb.is_finite() && ub.is_finite() {
        (lb + ub) / 2.0
    } else {
        0.0
    };

    let mut sv_rows = Vec::new();
    let mut sv_coef = Vec::new();
    for t in 0..n {
        if alpha[t] > 1e-12 {
            sv_rows.push(rows[t].clone());
            sv_coef.push(alpha[t] * y[t]);
        }
    }
    BinaryModel {
        sv_rows,
        sv_coef,
        b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(
        rows: Vec<Vec<u32>>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(
            n_features,
            rows,
            labels.into_iter().map(ClassId).collect(),
            n_classes,
        )
    }

    #[test]
    fn linear_kernel_separable() {
        let m = matrix(
            vec![vec![0], vec![0, 2], vec![0], vec![1], vec![1, 2], vec![1]],
            vec![0, 0, 0, 1, 1, 1],
            3,
            2,
        );
        let svm = KernelSvm::fit(
            &m,
            &KernelSvmParams {
                kernel: Kernel::Linear,
                ..KernelSvmParams::default()
            },
        );
        assert_eq!(svm.accuracy(&m), 1.0);
        assert!(svm.n_support_vectors() > 0);
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR over features {0, 1}: class 1 iff exactly one of the two
        // marker features is present — not linearly separable in B².
        // Rows encode (a, b) as: a present → feature 0, b present → feature 1.
        let rows = [
            vec![],     // (0,0) → class 0
            vec![0, 1], // (1,1) → class 0
            vec![0],    // (1,0) → class 1
            vec![1],    // (0,1) → class 1
        ];
        let m = matrix(
            rows.iter().cycle().take(16).cloned().collect(),
            (0..16).map(|i| [0u32, 0, 1, 1][i % 4]).collect(),
            2,
            2,
        );
        // Linear kernel cannot get XOR fully right…
        let lin = KernelSvm::fit(
            &m,
            &KernelSvmParams {
                kernel: Kernel::Linear,
                c: 10.0,
                ..KernelSvmParams::default()
            },
        );
        assert!(lin.accuracy(&m) < 1.0);
        // …but RBF can.
        let rbf = KernelSvm::fit(&m, &KernelSvmParams::rbf(10.0, 1.0));
        assert_eq!(rbf.accuracy(&m), 1.0);
    }

    #[test]
    fn alphas_respect_box_constraint_via_decision_sanity() {
        // With a tiny C, decision values are bounded: |f(x)| ≤ Σα·K + |b|
        // ≤ n·C + |b|. Indirect check that training respects the box.
        let m = matrix(
            vec![vec![0], vec![0], vec![1], vec![1]],
            vec![0, 0, 1, 1],
            2,
            2,
        );
        let svm = KernelSvm::fit(&m, &KernelSvmParams::rbf(0.01, 0.5));
        let v = svm.decision(&[0], 0);
        assert!(v.abs() < 4.0 * 0.01 + 1.5, "decision {v} out of bound");
    }

    #[test]
    fn multiclass_rbf() {
        let m = matrix(
            vec![
                vec![0],
                vec![0],
                vec![0],
                vec![1],
                vec![1],
                vec![1],
                vec![2],
                vec![2],
                vec![2],
            ],
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
            3,
            3,
        );
        let svm = KernelSvm::fit(&m, &KernelSvmParams::rbf(10.0, 0.5));
        assert_eq!(svm.accuracy(&m), 1.0);
    }

    #[test]
    fn agrees_with_linear_cd_on_separable_data() {
        use super::super::{LinearSvm, LinearSvmParams};
        let m = matrix(
            vec![
                vec![0, 2],
                vec![0],
                vec![0, 3],
                vec![1, 2],
                vec![1],
                vec![1, 3],
            ],
            vec![0, 0, 0, 1, 1, 1],
            4,
            2,
        );
        let smo = KernelSvm::fit(
            &m,
            &KernelSvmParams {
                kernel: Kernel::Linear,
                c: 1.0,
                ..KernelSvmParams::default()
            },
        );
        let cd = LinearSvm::fit(&m, &LinearSvmParams::default());
        for row in &m.rows {
            assert_eq!(smo.predict(row), cd.predict(row), "row {row:?}");
        }
    }

    #[test]
    fn deterministic() {
        let m = matrix(
            vec![vec![0], vec![0, 1], vec![1], vec![2]],
            vec![0, 0, 1, 1],
            3,
            2,
        );
        let a = KernelSvm::fit(&m, &KernelSvmParams::default());
        let b = KernelSvm::fit(&m, &KernelSvmParams::default());
        assert_eq!(a.decision(&[0], 0), b.decision(&[0], 0));
    }
}
