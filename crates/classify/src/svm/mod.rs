//! Support vector machines: linear (dual coordinate descent) and kernelised
//! (SMO). The paper's SVM experiments use LIBSVM with a linear kernel for
//! Item_All / Item_FS / Pat_All / Pat_FS and an RBF kernel for Item_RBF;
//! these implementations solve the same C-SVC dual problems.

mod kernel;
mod linear;
mod smo;

pub use kernel::Kernel;
pub use linear::{dual_objective, LinearSvm, LinearSvmParams};
pub use smo::{BinaryModel, KernelSvm, KernelSvmParams};
