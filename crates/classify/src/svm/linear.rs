//! Linear C-SVC via dual coordinate descent (Hsieh et al., ICML 2008 — the
//! LIBLINEAR algorithm), L1 (hinge) loss, bias handled as an augmented
//! constant feature. One-vs-rest for multiclass.
//!
//! Dual: `min_α ½ αᵀ Q̄ α − eᵀα` s.t. `0 ≤ α_i ≤ C`,
//! `Q̄_ij = y_i y_j x_iᵀ x_j`. Each coordinate step is
//! `α_i ← clip(α_i − G_i / Q_ii, [0, C])` with
//! `G_i = y_i wᵀx_i − 1` and the primal vector `w = Σ α_i y_i x_i`
//! maintained incrementally — O(nnz) per step.

use crate::{sparse_dot, Classifier};
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Linear SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvmParams {
    /// Regularisation constant `C`.
    pub c: f64,
    /// Stop when the largest projected-gradient violation in an epoch falls
    /// below this tolerance.
    pub tol: f64,
    /// Maximum number of passes over the data.
    pub max_epochs: usize,
    /// Shuffle seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams {
            c: 1.0,
            tol: 1e-4,
            max_epochs: 1000,
            seed: 0x5eed,
        }
    }
}

impl LinearSvmParams {
    /// Parameters with the given `C`, defaults otherwise.
    pub fn with_c(c: f64) -> Self {
        LinearSvmParams {
            c,
            ..LinearSvmParams::default()
        }
    }
}

/// A trained linear SVM (one weight vector per class, one-vs-rest).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// `weights[c]` has `n_features + 1` entries; the last is the bias.
    weights: Vec<Vec<f64>>,
    n_features: usize,
}

impl LinearSvm {
    /// Trains on a labelled sparse binary matrix.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &SparseBinaryMatrix, params: &LinearSvmParams) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty matrix");
        let weights = (0..data.n_classes)
            .map(|c| {
                let y: Vec<f64> = data
                    .labels
                    .iter()
                    .map(|l| if l.index() == c { 1.0 } else { -1.0 })
                    .collect();
                train_binary(&data.rows, &y, data.n_features, params)
            })
            .collect();
        LinearSvm {
            weights,
            n_features: data.n_features,
        }
    }

    /// Decision value `wᵀx + b` for class `c`.
    pub fn decision(&self, row: &[u32], c: usize) -> f64 {
        let w = &self.weights[c];
        let mut v = w[self.n_features]; // bias
        for &f in row {
            v += w[f as usize];
        }
        v
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.weights.len()
    }

    /// The learned weight of `feature` in class `c`'s one-vs-rest problem.
    pub fn weight(&self, c: usize, feature: usize) -> f64 {
        self.weights[c][feature]
    }

    /// The bias term of class `c`.
    pub fn bias(&self, c: usize) -> f64 {
        self.weights[c][self.n_features]
    }

    /// Number of (non-bias) features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The full per-class augmented weight vectors (bias last) — the
    /// complete trained state, for model serialization.
    pub fn weight_vectors(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Reconstructs a model from serialized state: one augmented weight
    /// vector (`n_features + 1` entries, bias last) per class.
    ///
    /// # Panics
    /// Panics if `weights` is empty or any vector has the wrong length.
    pub fn from_parts(weights: Vec<Vec<f64>>, n_features: usize) -> Self {
        assert!(!weights.is_empty(), "need at least one class weight vector");
        for (c, w) in weights.iter().enumerate() {
            assert_eq!(
                w.len(),
                n_features + 1,
                "class {c} weight vector has wrong length"
            );
        }
        LinearSvm {
            weights,
            n_features,
        }
    }
}

impl Classifier for LinearSvm {
    fn predict(&self, row: &[u32]) -> ClassId {
        let mut best = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for c in 0..self.weights.len() {
            let v = self.decision(row, c);
            if v > best_v {
                best_v = v;
                best = c;
            }
        }
        ClassId(best as u32)
    }
}

/// Dual coordinate descent for one binary problem; returns the augmented
/// weight vector (bias last).
fn train_binary(
    rows: &[Vec<u32>],
    y: &[f64],
    n_features: usize,
    params: &LinearSvmParams,
) -> Vec<f64> {
    let n = rows.len();
    let mut w = vec![0.0f64; n_features + 1];
    let mut alpha = vec![0.0f64; n];
    // Q_ii = ‖x_i‖² + 1 (bias feature).
    let qii: Vec<f64> = rows.iter().map(|r| r.len() as f64 + 1.0).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);

    for _epoch in 0..params.max_epochs {
        order.shuffle(&mut rng);
        let mut max_violation = 0.0f64;
        for &i in &order {
            let xi = &rows[i];
            let mut wx = w[n_features];
            for &f in xi {
                wx += w[f as usize];
            }
            let g = y[i] * wx - 1.0;
            // Projected gradient for the box constraint.
            let pg = if alpha[i] <= 0.0 {
                g.min(0.0)
            } else if alpha[i] >= params.c {
                g.max(0.0)
            } else {
                g
            };
            if pg.abs() > max_violation {
                max_violation = pg.abs();
            }
            if pg.abs() > 1e-12 {
                let new_alpha = (alpha[i] - g / qii[i]).clamp(0.0, params.c);
                let d = (new_alpha - alpha[i]) * y[i];
                alpha[i] = new_alpha;
                if d != 0.0 {
                    for &f in xi {
                        w[f as usize] += d;
                    }
                    w[n_features] += d;
                }
            }
        }
        if max_violation < params.tol {
            break;
        }
    }
    w
}

/// Dual objective value `½αᵀQ̄α − eᵀα` — exposed for tests verifying the
/// optimiser actually decreases the dual.
#[doc(hidden)]
pub fn dual_objective(rows: &[Vec<u32>], y: &[f64], alpha: &[f64]) -> f64 {
    let n = rows.len();
    let mut obj = 0.0;
    for i in 0..n {
        for j in 0..n {
            let q = y[i] * y[j] * (sparse_dot(&rows[i], &rows[j]) as f64 + 1.0);
            obj += 0.5 * alpha[i] * alpha[j] * q;
        }
        obj -= alpha[i];
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(
        rows: Vec<Vec<u32>>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(
            n_features,
            rows,
            labels.into_iter().map(ClassId).collect(),
            n_classes,
        )
    }

    #[test]
    fn separable_binary_problem() {
        // Feature 0 marks class 0, feature 1 marks class 1.
        let m = matrix(
            vec![vec![0], vec![0, 2], vec![0], vec![1], vec![1, 2], vec![1]],
            vec![0, 0, 0, 1, 1, 1],
            3,
            2,
        );
        let svm = LinearSvm::fit(&m, &LinearSvmParams::default());
        assert_eq!(svm.accuracy(&m), 1.0);
        assert_eq!(svm.predict(&[0, 2]), ClassId(0));
        assert_eq!(svm.predict(&[1]), ClassId(1));
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let m = matrix(
            vec![vec![0], vec![0], vec![1], vec![1], vec![2], vec![2]],
            vec![0, 0, 1, 1, 2, 2],
            3,
            3,
        );
        let svm = LinearSvm::fit(&m, &LinearSvmParams::default());
        assert_eq!(svm.n_classes(), 3);
        assert_eq!(svm.accuracy(&m), 1.0);
    }

    #[test]
    fn majority_on_uninformative_features() {
        // All rows identical; labels skewed 3:1 → must predict majority.
        let m = matrix(vec![vec![0]; 4], vec![0, 0, 0, 1], 1, 2);
        let svm = LinearSvm::fit(&m, &LinearSvmParams::default());
        assert_eq!(svm.predict(&[0]), ClassId(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = matrix(
            vec![
                vec![0, 1],
                vec![0],
                vec![1],
                vec![2],
                vec![1, 2],
                vec![2, 3],
            ],
            vec![0, 0, 0, 1, 1, 1],
            4,
            2,
        );
        let a = LinearSvm::fit(&m, &LinearSvmParams::default());
        let b = LinearSvm::fit(&m, &LinearSvmParams::default());
        assert_eq!(a.decision(&[0, 1], 0), b.decision(&[0, 1], 0));
    }

    #[test]
    fn dual_feasibility_and_progress() {
        // Train a tiny problem manually and verify the optimiser beats α = 0
        // and a perturbed feasible point.
        let rows = vec![vec![0u32], vec![0, 1], vec![1], vec![2]];
        let y = vec![1.0, 1.0, -1.0, -1.0];
        let params = LinearSvmParams::default();
        // Re-run the internal trainer to recover alphas implicitly via w:
        // instead check the model separates the data, which for L1-SVM on
        // separable data implies a dual objective below 0.
        let m = matrix(rows.clone(), vec![0, 0, 1, 1], 3, 2);
        let svm = LinearSvm::fit(&m, &params);
        assert_eq!(svm.accuracy(&m), 1.0);
        // α = 0 has objective 0; any optimum must be ≤ 0.
        assert!(dual_objective(&rows, &y, &[0.0; 4]) == 0.0);
    }

    #[test]
    fn small_c_underfits_large_c_fits() {
        // One mislabeled point: large C should chase it less gracefully than
        // tiny C (which underfits toward the majority side).
        let m = matrix(
            vec![vec![0], vec![0], vec![0], vec![1], vec![1], vec![0]],
            vec![0, 0, 0, 1, 1, 1],
            2,
            2,
        );
        let loose = LinearSvm::fit(&m, &LinearSvmParams::with_c(0.01));
        let tight = LinearSvm::fit(&m, &LinearSvmParams::with_c(100.0));
        // Both should get at least the 5 consistent points right.
        assert!(loose.accuracy(&m) >= 5.0 / 6.0 - 1e-9);
        assert!(tight.accuracy(&m) >= 5.0 / 6.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_matrix_panics() {
        let m = matrix(vec![], vec![], 2, 2);
        LinearSvm::fit(&m, &LinearSvmParams::default());
    }
}
