//! Kernel functions over sparse binary rows.

use crate::sparse_dot;

/// A kernel over sparse binary feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(x, y) = x·y` (intersection size for binary vectors).
    Linear,
    /// `K(x, y) = exp(−γ‖x−y‖²)`; for binary vectors
    /// `‖x−y‖² = |x| + |y| − 2 x·y`.
    Rbf {
        /// The RBF width γ. Larger γ ⇒ higher effective combined-feature
        /// degree (paper §4.1's discussion of Item_RBF).
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two rows.
    pub fn eval(&self, a: &[u32], b: &[u32]) -> f64 {
        let dot = sparse_dot(a, b) as f64;
        match *self {
            Kernel::Linear => dot,
            Kernel::Rbf { gamma } => {
                let d2 = a.len() as f64 + b.len() as f64 - 2.0 * dot;
                (-gamma * d2).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_intersection() {
        assert_eq!(Kernel::Linear.eval(&[0, 2, 4], &[2, 4, 6]), 2.0);
        assert_eq!(Kernel::Linear.eval(&[], &[1]), 0.0);
    }

    #[test]
    fn rbf_self_similarity_is_one() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert!((k.eval(&[1, 2, 3], &[1, 2, 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::Rbf { gamma: 0.5 };
        let near = k.eval(&[1, 2, 3], &[1, 2, 4]); // distance² = 2
        let far = k.eval(&[1, 2, 3], &[4, 5, 6]); // distance² = 6
        assert!(near > far);
        assert!((near - (-1.0f64).exp()).abs() < 1e-12);
        assert!((far - (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn rbf_symmetric() {
        let k = Kernel::Rbf { gamma: 0.1 };
        assert_eq!(k.eval(&[1, 5], &[2, 5, 9]), k.eval(&[2, 5, 9], &[1, 5]));
    }
}
