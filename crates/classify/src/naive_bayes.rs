//! Bernoulli naive Bayes over binary features, with Laplace smoothing.
//!
//! Not used in the paper's tables, but the framework explicitly allows "any
//! learning algorithm" (§5); NB is the cheapest sanity-check model and is
//! exercised in the extension examples.

use crate::Classifier;
use dfp_data::features::SparseBinaryMatrix;
use dfp_data::schema::ClassId;

/// A trained Bernoulli naive Bayes model.
#[derive(Debug, Clone)]
pub struct BernoulliNb {
    /// `log P(c)` per class.
    log_prior: Vec<f64>,
    /// `log P(x_f = 1 | c)` per class × feature.
    log_p: Vec<Vec<f64>>,
    /// `log P(x_f = 0 | c)` per class × feature.
    log_q: Vec<Vec<f64>>,
    /// Per-class `Σ_f log P(x_f = 0 | c)` so prediction touches only the
    /// active features of a row.
    base: Vec<f64>,
}

impl BernoulliNb {
    /// Trains with Laplace (+1) smoothing.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(data: &SparseBinaryMatrix) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty matrix");
        let n_classes = data.n_classes;
        let d = data.n_features;
        let counts = data.class_counts();
        let n = data.len() as f64;

        let mut present = vec![vec![0u32; d]; n_classes];
        for (row, label) in data.rows.iter().zip(&data.labels) {
            let c = label.index();
            for &f in row {
                present[c][f as usize] += 1;
            }
        }

        let mut log_prior = Vec::with_capacity(n_classes);
        let mut log_p = Vec::with_capacity(n_classes);
        let mut log_q = Vec::with_capacity(n_classes);
        let mut base = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            log_prior.push(((counts[c] as f64 + 1.0) / (n + n_classes as f64)).ln());
            let nc = counts[c] as f64;
            let mut lp = Vec::with_capacity(d);
            let mut lq = Vec::with_capacity(d);
            let mut b = 0.0;
            for &cnt in present[c].iter().take(d) {
                let p1 = (cnt as f64 + 1.0) / (nc + 2.0);
                lp.push(p1.ln());
                let q = (1.0 - p1).ln();
                lq.push(q);
                b += q;
            }
            log_p.push(lp);
            log_q.push(lq);
            base.push(b);
        }
        BernoulliNb {
            log_prior,
            log_p,
            log_q,
            base,
        }
    }

    /// Per-class `log P(c)` — the complete prior state, for serialization.
    pub fn log_priors(&self) -> &[f64] {
        &self.log_prior
    }

    /// Per-class × feature `log P(x_f = 1 | c)`, for serialization.
    pub fn log_present(&self) -> &[Vec<f64>] {
        &self.log_p
    }

    /// Per-class × feature `log P(x_f = 0 | c)`, for serialization.
    pub fn log_absent(&self) -> &[Vec<f64>] {
        &self.log_q
    }

    /// Reconstructs a model from serialized state (the cached per-class base
    /// scores are recomputed from `log_q`).
    ///
    /// # Panics
    /// Panics if the class/feature dimensions of the three tables disagree.
    pub fn from_parts(log_prior: Vec<f64>, log_p: Vec<Vec<f64>>, log_q: Vec<Vec<f64>>) -> Self {
        let n_classes = log_prior.len();
        assert!(n_classes > 0, "need at least one class");
        assert_eq!(log_p.len(), n_classes, "log_p class dimension mismatch");
        assert_eq!(log_q.len(), n_classes, "log_q class dimension mismatch");
        for c in 0..n_classes {
            assert_eq!(
                log_p[c].len(),
                log_q[c].len(),
                "class {c} feature dimension mismatch"
            );
        }
        let base = log_q.iter().map(|lq| lq.iter().sum()).collect();
        BernoulliNb {
            log_prior,
            log_p,
            log_q,
            base,
        }
    }

    /// Log joint score `log P(c) + Σ_f log P(x_f | c)`.
    pub fn log_score(&self, row: &[u32], c: usize) -> f64 {
        let mut s = self.log_prior[c] + self.base[c];
        for &f in row {
            s += self.log_p[c][f as usize] - self.log_q[c][f as usize];
        }
        s
    }
}

impl Classifier for BernoulliNb {
    fn predict(&self, row: &[u32]) -> ClassId {
        let mut best = 0usize;
        let mut best_s = f64::NEG_INFINITY;
        for c in 0..self.log_prior.len() {
            let s = self.log_score(row, c);
            if s > best_s {
                best_s = s;
                best = c;
            }
        }
        ClassId(best as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<u32>>, labels: Vec<u32>, d: usize, m: usize) -> SparseBinaryMatrix {
        SparseBinaryMatrix::new(d, rows, labels.into_iter().map(ClassId).collect(), m)
    }

    #[test]
    fn learns_marker_features() {
        let m = matrix(
            vec![vec![0], vec![0], vec![0, 2], vec![1], vec![1, 2], vec![1]],
            vec![0, 0, 0, 1, 1, 1],
            3,
            2,
        );
        let nb = BernoulliNb::fit(&m);
        assert_eq!(nb.accuracy(&m), 1.0);
        assert_eq!(nb.predict(&[0, 2]), ClassId(0));
    }

    #[test]
    fn prior_dominates_without_evidence() {
        let m = matrix(vec![vec![]; 10], vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1], 1, 2);
        let nb = BernoulliNb::fit(&m);
        assert_eq!(nb.predict(&[]), ClassId(0));
    }

    #[test]
    fn smoothing_handles_unseen_feature() {
        let m = matrix(vec![vec![0], vec![1]], vec![0, 1], 3, 2);
        let nb = BernoulliNb::fit(&m);
        // feature 2 never seen — prediction must not NaN/panic
        let s = nb.log_score(&[2], 0);
        assert!(s.is_finite());
    }

    #[test]
    fn multiclass() {
        let m = matrix(
            vec![vec![0], vec![0], vec![1], vec![1], vec![2], vec![2]],
            vec![0, 0, 1, 1, 2, 2],
            3,
            3,
        );
        let nb = BernoulliNb::fit(&m);
        assert_eq!(nb.accuracy(&m), 1.0);
    }
}
