//! Evaluation metrics: accuracy, confusion matrix, macro-F1.

use dfp_data::schema::ClassId;

/// Fraction of positions where `pred == truth`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn accuracy(pred: &[ClassId], truth: &[ClassId]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Index of the largest count (ties toward the smaller class id).
pub fn majority_class(counts: &[u32]) -> ClassId {
    let mut best = 0usize;
    for (c, &v) in counts.iter().enumerate() {
        if v > counts[best] {
            best = c;
        }
    }
    ClassId(best as u32)
}

/// A confusion matrix: `counts[truth][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// `counts[t][p]` = instances of true class `t` predicted as `p`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from predictions and labels.
    ///
    /// # Panics
    /// Panics if lengths differ or any class id `>= n_classes`.
    pub fn new(pred: &[ClassId], truth: &[ClassId], n_classes: usize) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (p, t) in pred.iter().zip(truth) {
            counts[t.index()][p.index()] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.counts.len()).map(|c| self.counts[c][c]).sum();
        diag as f64 / total as f64
    }

    /// Per-class precision (`NaN`-free: 0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: usize = self.counts.iter().map(|row| row[c]).sum();
        if predicted == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / predicted as f64
    }

    /// Per-class recall (0 when the class has no instances).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            return 0.0;
        }
        self.counts[c][c] as f64 / actual as f64
    }

    /// Macro-averaged F1 over classes that appear in the data.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut classes = 0usize;
        for c in 0..self.counts.len() {
            let actual: usize = self.counts[c].iter().sum();
            if actual == 0 {
                continue;
            }
            classes += 1;
            let p = self.precision(c);
            let r = self.recall(c);
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        if classes == 0 {
            0.0
        } else {
            sum / classes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ClassId> {
        v.iter().map(|&c| ClassId(c)).collect()
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&ids(&[0, 1, 1]), &ids(&[0, 1, 0])), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&ids(&[1]), &ids(&[1])), 1.0);
    }

    #[test]
    fn majority_ties_to_lowest() {
        assert_eq!(majority_class(&[3, 3, 1]), ClassId(0));
        assert_eq!(majority_class(&[1, 4, 2]), ClassId(1));
    }

    #[test]
    fn confusion_matrix_counts() {
        let cm = ConfusionMatrix::new(&ids(&[0, 1, 1, 0]), &ids(&[0, 1, 0, 1]), 2);
        assert_eq!(cm.counts, vec![vec![1, 1], vec![1, 1]]);
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn precision_recall_f1() {
        // truth: 0 0 1 1 1 ; pred: 0 1 1 1 0
        let cm = ConfusionMatrix::new(&ids(&[0, 1, 1, 1, 0]), &ids(&[0, 0, 1, 1, 1]), 2);
        assert!((cm.precision(0) - 0.5).abs() < 1e-12);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        let f1 = cm.macro_f1();
        assert!((f1 - (0.5 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        // class 2 never appears and is never predicted
        let cm = ConfusionMatrix::new(&ids(&[0, 0]), &ids(&[0, 1]), 3);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&ids(&[0]), &ids(&[0, 1]));
    }
}
