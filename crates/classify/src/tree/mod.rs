//! C4.5-style decision tree (Quinlan 1993) over binary feature spaces.

mod c45;

pub use c45::{C45Params, FlatNode, C45};
